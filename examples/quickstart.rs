//! Quickstart: the paper's Figure 1, end to end.
//!
//! Builds the three-thread program from the paper, records one execution
//! trace, generates match pairs, builds the SMT problem, and enumerates
//! every send/receive pairing the formula admits — recovering exactly the
//! two pairings of the paper's Figure 4, where MCC and the Elwakil&Yang
//! encoding (reproduced by the `ZeroDelay` option) see only one.
//!
//! Run with: `cargo run --example quickstart`

use mcapi::types::DeliveryModel;
use symbolic::checker::{enumerate_matchings, generate_trace, CheckConfig, MatchGen};
use symbolic::encode::{encode, EncodeOptions};
use symbolic::matchpairs::precise_match_pairs;
use workloads::fig1;

fn main() {
    let program = fig1();
    println!("== Program (paper Fig. 1) ==");
    println!("Thread t0  |  Thread t1   |  Thread t2");
    println!("recv(A)    |  recv(C)     |  send(Y):t0");
    println!("recv(B)    |  send(X):t0  |  send(Z):t1");
    println!();

    // 1. One arbitrary execution trace.
    let cfg = CheckConfig::default();
    let trace = generate_trace(&program, &cfg);
    println!("== Recorded trace ({} events) ==", trace.events.len());
    print!("{}", trace.render());
    println!();

    // 2. Trace analysis: MatchPairs + getSends (precise DFS).
    let pairs = precise_match_pairs(&program, &trace, DeliveryModel::Unordered);
    println!(
        "== Match pairs (precise DFS, {} states explored) ==",
        pairs.states_explored
    );
    for (recv, sends) in &pairs.sends_for {
        println!("  getSends({recv:?}) = {sends:?}");
    }
    println!();

    // 3. The SMT problem P = POrder /\ PMatchPairs /\ PUnique /\ PEvents.
    let enc = encode(
        &program,
        &trace,
        &pairs,
        EncodeOptions {
            delivery: DeliveryModel::Unordered,
            negate_props: false,
            ..Default::default()
        },
    );
    println!("== SMT problem ==");
    println!(
        "  {} SAT variables, {} clauses, {} difference atoms",
        enc.stats.sat_vars, enc.stats.sat_clauses, enc.stats.theory_atoms
    );
    println!(
        "  match disjuncts: {}, uniqueness pairs: {}, order constraints: {}",
        enc.stats.match_disjuncts, enc.stats.unique_pairs, enc.stats.order_constraints
    );
    println!();

    // 4. All-SAT over the receive identifiers = all possible pairings.
    println!("== All pairings under arbitrary transit delays (the paper's model) ==");
    let en = enumerate_matchings(&program, &trace, &cfg, 100);
    for (i, m) in en.matchings.iter().enumerate() {
        println!("  pairing {}:", i + 1);
        for (recv, msg) in m {
            println!("    {recv:?}  <-  {msg:?}");
        }
    }
    println!("  ({} pairings — Fig. 4a and Fig. 4b)", en.matchings.len());
    println!();

    // 5. The same query under the MCC / zero-delay network model.
    let zd = CheckConfig {
        delivery: DeliveryModel::ZeroDelay,
        matchgen: MatchGen::OverApprox,
        ..CheckConfig::default()
    };
    let trace_zd = generate_trace(&program, &zd);
    let en_zd = enumerate_matchings(&program, &trace_zd, &zd, 100);
    println!("== All pairings under instant delivery (MCC / Elwakil&Yang) ==");
    for m in &en_zd.matchings {
        for (recv, msg) in m {
            println!("    {recv:?}  <-  {msg:?}");
        }
    }
    println!(
        "  ({} pairing — the delayed behaviour of Fig. 4b is missed)",
        en_zd.matchings.len()
    );
}
