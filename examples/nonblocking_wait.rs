//! Non-blocking receives and waits: how `recv_i`/`wait` are modelled.
//!
//! The paper's rule: for a non-blocking receive, `match(recv, send)`
//! orders the send before the **wait** associated with the receive — not
//! before the `recv_i` call itself. This example shows why that matters: a
//! send issued *after* the `recv_i` but *before* the `wait` is a legal
//! match, so the set of behaviours is larger than a recv-time rule would
//! admit.
//!
//! Run with: `cargo run --example nonblocking_wait`

use mcapi::builder::ProgramBuilder;
use mcapi::program::Program;
use mcapi::types::DeliveryModel;
use symbolic::checker::{enumerate_matchings, generate_trace, CheckConfig};
use symbolic::matchpairs::precise_match_pairs;

fn build() -> Program {
    let mut b = ProgramBuilder::new("nonblocking-wait");
    let t0 = b.thread("t0");
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    // t0 posts a non-blocking receive, then blocks on a gate message
    // (port 1) before waiting on the posted receive.
    let (_v, req) = b.recv_i(t0, 0);
    b.port(t0, 1);
    let _gate = b.recv(t0, 1);
    b.wait(t0, req);
    // t1 sends its payload early.
    b.send_const(t1, t0, 0, 1);
    // t2 first opens the gate, *then* sends its payload: the payload send
    // happens after recv_i but (possibly) before the wait completes.
    b.send_const(t2, t0, 1, 9);
    b.send_const(t2, t0, 0, 2);
    b.build().unwrap()
}

fn main() {
    let program = build();
    println!("program `{}`:", program.name);
    println!("  t0: recv_i(port0, req) ; recv(port1 gate) ; wait(req)");
    println!("  t1: send(1) -> t0:port0");
    println!("  t2: send(9) -> t0:port1 ; send(2) -> t0:port0");
    println!();

    let cfg = CheckConfig::default();
    let trace = generate_trace(&program, &cfg);
    let pairs = precise_match_pairs(&program, &trace, DeliveryModel::Unordered);
    println!("match pairs (the wait-clock rule in action):");
    for (recv, sends) in &pairs.sends_for {
        println!("  getSends({recv:?}) = {sends:?}");
    }
    println!();

    let en = enumerate_matchings(&program, &trace, &cfg, 100);
    println!("distinct behaviours: {}", en.matchings.len());
    for (i, m) in en.matchings.iter().enumerate() {
        println!("  behaviour {}:", i + 1);
        for (r, s) in m {
            println!("    {r:?} <- {s:?}");
        }
    }
    println!();
    println!(
        "t2's payload (m2.1, sent after the recv_i was posted) is a legal match\n\
         for the posted receive because the paper orders sends against the WAIT\n\
         clock. A recv-issue-time rule would wrongly exclude it."
    );
}
