//! Offline trace debugging: serialise a trace to JSON, reload it, re-check
//! it symbolically, and pretty-print the erroneous execution — the
//! workflow the paper's tool supports (its input *is* a trace).
//!
//! Run with: `cargo run --example trace_debugger`

use mcapi::runtime::execute_random;
use mcapi::trace::Trace;
use mcapi::types::DeliveryModel;
use symbolic::checker::{check_trace, CheckConfig, MatchGen, Verdict};
use workloads::race::race_with_winner_assert;

fn main() {
    let program = race_with_winner_assert(3);

    // Phase 1 (e.g. on the embedded target): record a passing trace.
    let trace = (0..500)
        .map(|seed| execute_random(&program, DeliveryModel::Unordered, seed))
        .find(|o| o.trace.is_complete() && o.violation().is_none())
        .expect("some seed passes")
        .trace;
    let json = trace.to_json();
    println!(
        "recorded a passing trace: {} events, {} bytes of JSON\n",
        trace.events.len(),
        json.len()
    );

    // Phase 2 (offline): reload and analyse.
    let reloaded = Trace::from_json(&json).expect("round-trip");
    assert_eq!(reloaded, trace);
    println!("reloaded trace:\n{}", reloaded.render());

    let cfg = CheckConfig {
        matchgen: MatchGen::OverApprox,
        ..CheckConfig::default()
    };
    let report = check_trace(&program, &reloaded, &cfg);
    match &report.verdict {
        Verdict::Violation(cv) => {
            println!("analysis: the recorded execution PASSED, but a sibling execution");
            println!("(same branch outcomes, different match/delay choices) FAILS:");
            for m in &cv.violated_props {
                println!("  - {m}");
            }
            println!("\nerroneous execution (event order from the SMT model clocks):");
            for &idx in &cv.witness.event_order {
                let e = &reloaded.events[idx];
                println!(
                    "  clk={:<4} t{} pc{:<3} {:?}",
                    cv.witness.clocks[idx], e.thread, e.pc, e.kind
                );
            }
            println!("\nreceive bindings:");
            for (r, m) in &cv.witness.matching {
                println!("  {r:?} <- {m:?}");
            }
            if let Some(v) = &cv.violation {
                println!("\nreplayed on the concrete runtime: {v}");
            }
        }
        other => println!("analysis verdict: {other:?}"),
    }
}
