//! A racing-senders bug hunt: find an assertion violation that only
//! manifests under message-transit delays, produce the erroneous
//! execution, and show the MCC-style baseline missing it.
//!
//! Run with: `cargo run --example message_race`

use explicit::{ground_truth_check, mcc_check};
use mcapi::types::DeliveryModel;
use symbolic::checker::{check_program, CheckConfig, MatchGen, Verdict};
use workloads::race::delay_gap;

fn main() {
    // The delay-gap program: the "early" producer sends payload 2 to the
    // consumer and then causally triggers a chain that ends with payload 1.
    // In *send order* 2 always precedes 1; only an in-transit delay of 2
    // lets 1 overtake it. The assertion claims the consumer sees 2 first.
    let program = delay_gap(1);
    println!(
        "checking `{}` — a bug reachable only via transit delays\n",
        program.name
    );

    // Symbolic check under the paper's arbitrary-delay model.
    let cfg = CheckConfig {
        delivery: DeliveryModel::Unordered,
        matchgen: MatchGen::OverApprox,
        ..CheckConfig::default()
    };
    let report = check_program(&program, &cfg);
    match &report.verdict {
        Verdict::Violation(cv) => {
            println!("SYMBOLIC (arbitrary delays): VIOLATION FOUND");
            for msg in &cv.violated_props {
                println!("  violated property: {msg}");
            }
            if let Some(v) = &cv.violation {
                println!("  confirmed by replay: {v}");
            }
            println!("  matching of the erroneous execution:");
            for (recv, msg) in &cv.witness.matching {
                println!("    {recv:?} <- {msg:?}");
            }
            println!(
                "  ({} spurious models refined away, {} match pairs considered)",
                report.refinements, report.matchgen_pairs
            );
        }
        other => println!("SYMBOLIC: unexpected verdict {other:?}"),
    }
    println!();

    // Same query with zero-delay (MCC-equivalent) encoding: safe.
    let zd = CheckConfig {
        delivery: DeliveryModel::ZeroDelay,
        ..cfg
    };
    let report_zd = check_program(&program, &zd);
    println!(
        "SYMBOLIC (zero-delay encoding, Elwakil&Yang model): {:?}",
        match report_zd.verdict {
            Verdict::Safe => "SAFE — the delayed behaviour is invisible",
            Verdict::Violation(_) => "violation (unexpected!)",
            Verdict::Unknown(_) => "unknown",
        }
    );
    println!();

    // Explicit-state cross-check.
    let mcc = mcc_check(&program);
    let truth = ground_truth_check(&program);
    println!("EXPLICIT MCC baseline (instant delivery):");
    println!(
        "  {} states, {} behaviours, violations: {}",
        mcc.states,
        mcc.matchings.len(),
        if mcc.found_violation() {
            "FOUND"
        } else {
            "none — the bug is missed"
        }
    );
    println!("EXPLICIT ground truth (arbitrary delays):");
    println!(
        "  {} states, {} behaviours, violations: {}",
        truth.states,
        truth.matchings.len(),
        if truth.found_violation() {
            "FOUND"
        } else {
            "none"
        }
    );
}
