//! An embedded DSP-style pipeline — MCAPI's motivating domain — checked
//! for reordering bugs under the three delivery models.
//!
//! A sample stream flows source → filter → sink. The sink asserts samples
//! arrive in order. Under MCAPI's pairwise-FIFO guarantee the pipeline is
//! correct; under an (hypothetical) unordered transport the same code
//! reorders — and the symbolic checker proves both facts from one trace.
//!
//! Run with: `cargo run --example pipeline_dsp`

use mcapi::types::DeliveryModel;
use symbolic::checker::{check_program, CheckConfig, MatchGen, Verdict};
use workloads::pipeline;

fn main() {
    // 3 stages, 3 samples.
    let program = pipeline(3, 3);
    println!(
        "checking `{}` (source -> filter -> sink, 3 samples)\n",
        program.name
    );

    for delivery in [DeliveryModel::PairwiseFifo, DeliveryModel::Unordered] {
        let cfg = CheckConfig {
            delivery,
            matchgen: MatchGen::OverApprox,
            ..CheckConfig::default()
        };
        let report = check_program(&program, &cfg);
        println!("delivery model: {delivery}");
        println!(
            "  encoding: {} vars / {} clauses / {} atoms, {} match disjuncts",
            report.encode_stats.sat_vars,
            report.encode_stats.sat_clauses,
            report.encode_stats.theory_atoms,
            report.encode_stats.match_disjuncts,
        );
        match &report.verdict {
            Verdict::Safe => {
                println!("  verdict: SAFE — samples cannot reorder under this transport\n")
            }
            Verdict::Violation(cv) => {
                println!("  verdict: VIOLATION — {}", cv.violated_props.join("; "));
                if let Some(v) = &cv.violation {
                    println!("  replayed to a concrete failure: {v}");
                }
                println!(
                    "  erroneous matching: {:?}\n",
                    cv.witness
                        .matching
                        .iter()
                        .map(|(r, m)| format!("{r:?}<-{m:?}"))
                        .collect::<Vec<_>>()
                );
            }
            Verdict::Unknown(why) => println!("  verdict: UNKNOWN ({why})\n"),
        }
    }

    println!(
        "Conclusion: the pipeline relies on MCAPI's per-pair ordering; port the\n\
         same code to an unordered transport and the sink assertion is violable.\n\
         Both verdicts come from the same recorded trace — only the delivery\n\
         axioms in POrder changed."
    );
}
