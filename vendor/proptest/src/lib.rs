//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, range and tuple strategies, `Just`, `any::<bool>()`,
//! `prop::collection::vec`, the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` macros, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: generation is derived from a
//! deterministic per-test seed (so failures are reproducible run to run),
//! and there is **no shrinking** — a failing case reports its inputs via
//! the assertion message only.

pub mod test_runner {
    use std::fmt;

    /// Per-test deterministic RNG (splitmix64 over a name-derived seed).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive a stream from the test path and the case index, so every
        /// test function and every case sees distinct but stable data.
        pub fn deterministic(name: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// A failed property (returned through the generated test body).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Mirror of proptest's run configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u64,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u64) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values. Unlike real proptest there is no value tree:
    /// `generate` directly produces one value.
    pub trait Strategy: Clone {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + Clone,
        {
            FlatMap { inner: self, f }
        }

        /// Build recursive structures: each level either recurses through
        /// `f` or falls back to the base strategy, bottoming out after
        /// `depth` levels. `_desired_size` and `_expected_branch_size` are
        /// accepted for source compatibility and ignored.
        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let base = self.boxed();
            let mut level = base.clone();
            for _ in 0..depth {
                let recursed = f(level).boxed();
                level = Union::new(vec![base.clone(), recursed]).boxed();
            }
            level
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
            }
        }
    }

    /// Type-erased strategy (cheaply cloneable).
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    debug_assert!(lo < hi, "empty range strategy");
                    (lo + (rng.below((hi - lo) as u64) as i128)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128 + 1;
                    debug_assert!(lo < hi, "empty range strategy");
                    (lo + (rng.below((hi - lo) as u64) as i128)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    /// `any::<T>()` support for the primitive types the tests draw.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size arguments for [`vec()`](fn@vec).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("proptest {} case {}/{} failed: {}",
                               stringify!($name), __case, __cfg.cases, __e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Skip the current case when its inputs don't meet a precondition. The
/// real crate re-draws a replacement input; this stub just passes the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i64..5, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn oneof_and_recursive_compose(
            n in prop_oneof![Just(1usize), Just(2usize)],
            f in (0u8..3).prop_recursive(2, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| a.wrapping_add(b))
            })
        ) {
            prop_assert!(n == 1 || n == 2);
            let _ = f;
        }
    }
}
