//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_with_input`, `bench_function`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple measurement loop: a short
//! warm-up, then a fixed number of timed iterations whose mean is printed.
//! No statistics, plotting, or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the timed closure.
pub struct Bencher {
    samples: u64,
    /// Mean wall-clock time per iteration, filled by `iter`.
    mean: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up round (also primes caches the way criterion's does).
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples.max(1) as u32;
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: u64,
}

impl BenchmarkGroup<'_> {
    /// Criterion's statistical sample count; here it directly sets the
    /// number of timed iterations (clamped to keep stub runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).clamp(1, 1000);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {}/{}: {:?}/iter ({} iters)",
            self.name, id, b.mean, self.samples
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        println!(
            "bench {}/{}: {:?}/iter ({} iters)",
            self.name, id, b.mean, self.samples
        );
        self
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Top-level driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("default", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u64;
        g.sample_size(3)
            .bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &x| {
                b.iter(|| {
                    runs += x as u64;
                })
            });
        g.finish();
        assert!(runs >= 3);
    }
}
