//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the minimal surface the workspace needs: a JSON-shaped [`Value`] tree,
//! [`Serialize`]/[`Deserialize`] traits that convert to and from it, and
//! re-exported derive macros (see `vendor/serde_derive`). The companion
//! `vendor/serde_json` crate handles text parsing and printing.
//!
//! This is intentionally *not* the real serde data model (no visitors, no
//! zero-copy); it trades generality for being small and dependency-free
//! while keeping call sites source-compatible with the real crates.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A JSON-shaped value tree. Object keys keep insertion order so output is
/// stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the entries when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow the elements when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Deserialization error. `vendor/serde_json` re-exports this as `Error`.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` in {ty}"))
    }

    pub fn unknown_variant(ty: &str, variant: &str) -> DeError {
        DeError(format!("unknown variant `{variant}` of {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize out of the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- helpers used by the derive-generated code ----

/// Linear-scan field lookup in an object body.
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// An externally-tagged variant: a single-entry object `{tag: inner}`.
pub fn as_variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(o) if o.len() == 1 => Some((o[0].0.as_str(), &o[0].1)),
        _ => None,
    }
}

/// An array of exactly `n` elements.
pub fn as_array_n(v: &Value, n: usize) -> Option<&[Value]> {
    match v {
        Value::Array(a) if a.len() == n => Some(a),
        _ => None,
    }
}

// ---- primitive impls ----

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

// u64 round-trips through the i64 payload bit-exactly (values above
// i64::MAX print as negative numbers, which this workspace never relies on
// for human consumption — seeds and counters stay small).
impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => Ok(*i as u64),
            _ => Err(DeError::expected("integer", "u64")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "BTreeSet")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = [$(stringify!($n)),+].len();
                let a = as_array_n(v, N).ok_or_else(|| DeError::expected("tuple array", "tuple"))?;
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
