//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal serde data model (see `vendor/serde`) and
//! this proc-macro derives its `Serialize`/`Deserialize` traits. The derive
//! hand-parses the type definition from the raw token stream (no `syn`):
//! it supports exactly the shapes this workspace uses — non-generic named
//! structs, tuple structs, and enums with unit/tuple/struct variants — plus
//! the `#[serde(default)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Does an attribute group (the `[...]` part) spell `serde(default)`?
fn is_serde_default(group: &TokenTree) -> bool {
    let TokenTree::Group(g) = group else {
        return false;
    };
    let mut it = g.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(args))) if i.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| t.to_string() == "default")
        }
        _ => false,
    }
}

/// Skip attributes, returning whether any was `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], pos: &mut usize) -> bool {
    let mut default = false;
    while *pos + 1 < toks.len() {
        match &toks[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if is_serde_default(&toks[*pos + 1]) {
                    default = true;
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    default
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
fn skip_vis(toks: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = toks.get(*pos) {
        if i.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Count the top-level comma-separated items of a type list, tracking
/// `<...>` nesting (parenthesised/bracketed groups arrive pre-balanced as
/// single `Group` trees and hide their own commas).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut fields = 1usize;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for (i, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if i + 1 == toks.len() {
                        trailing_comma = true;
                    } else {
                        fields += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    fields
}

/// Parse `name: Type` named fields from a brace-group stream.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < toks.len() {
        let default = skip_attrs(&toks, &mut pos);
        skip_vis(&toks, &mut pos);
        let Some(TokenTree::Ident(name)) = toks.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1;
        // Expect ':'; then consume the type up to the next top-level ','.
        pos += 1;
        let mut angle = 0i32;
        while pos < toks.len() {
            if let TokenTree::Punct(p) = &toks[pos] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < toks.len() {
        skip_attrs(&toks, &mut pos);
        let Some(TokenTree::Ident(name)) = toks.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1;
        let kind = match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to (and past) the separating comma.
        while pos < toks.len() {
            if let TokenTree::Punct(p) = &toks[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    skip_attrs(&toks, &mut pos);
    skip_vis(&toks, &mut pos);
    let kw = match toks.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    pos += 1;
    let name = match toks.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    pos += 1;
    // Generic parameters are not supported (and not used in this workspace);
    // skip a balanced <...> defensively so the error surfaces in codegen.
    if let Some(TokenTree::Punct(p)) = toks.get(pos) {
        if p.as_char() == '<' {
            let mut angle = 0i32;
            while pos < toks.len() {
                if let TokenTree::Punct(p) = &toks[pos] {
                    match p.as_char() {
                        '<' => angle += 1,
                        '>' => {
                            angle -= 1;
                            if angle == 0 {
                                pos += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                pos += 1;
            }
        }
    }
    match kw.as_str() {
        "struct" => match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive stub: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__o.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __o: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__o)\n}}\n}}\n"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n}}\n"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Array(vec![{}]) }}\n}}\n",
                items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn named_field_reads(type_name: &str, fields: &[Field], obj: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        if f.default {
            out.push_str(&format!(
                "{fname}: match ::serde::obj_get({obj}, \"{fname}\") {{\n\
                 Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                 None => ::core::default::Default::default(),\n}},\n"
            ));
        } else {
            out.push_str(&format!(
                "{fname}: match ::serde::obj_get({obj}, \"{fname}\") {{\n\
                 Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                 None => return Err(::serde::DeError::missing_field(\"{type_name}\", \"{fname}\")),\n}},\n"
            ));
        }
    }
    out
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let reads = named_field_reads(name, fields, "__o");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let __o = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 Ok({name} {{\n{reads}}})\n}}\n}}\n"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             Ok({name}(::serde::Deserialize::from_value(__v)?))\n}}\n}}\n"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let __a = ::serde::as_array_n(__v, {arity}).ok_or_else(|| ::serde::DeError::expected(\"array[{arity}]\", \"{name}\"))?;\n\
                 Ok({name}({}))\n}}\n}}\n",
                items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = ::serde::as_array_n(__inner, {n}).ok_or_else(|| ::serde::DeError::expected(\"array[{n}]\", \"{name}::{vn}\"))?;\n\
                             Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let reads = named_field_reads(&format!("{name}::{vn}"), fields, "__o");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __o = __inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}::{vn}\"))?;\n\
                             Ok({name}::{vn} {{\n{reads}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n}},\n\
                 __val => {{\n\
                 let (__tag, __inner) = ::serde::as_variant(__val).ok_or_else(|| ::serde::DeError::expected(\"variant object\", \"{name}\"))?;\n\
                 match __tag {{\n\
                 {data_arms}\
                 __other => Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n}}\n}}\n}}\n}}\n}}\n"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
