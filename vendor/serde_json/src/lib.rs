//! Offline stand-in for `serde_json`: prints and parses JSON text against
//! the vendored `serde` crate's [`Value`] tree.

pub use serde::Value;

/// Error type shared with the vendored `serde` crate.
pub type Error = serde::DeError;

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

// ---- printing ----

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep a decimal point so the value re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Int(1), Value::Int(-2)]),
            ),
            ("s".into(), Value::Str("he\"llo\n".into())),
            ("n".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
            ("f".into(), Value::Float(1.5)),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = parse_value(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        let v = parse_value(r#""A😀""#).unwrap();
        assert_eq!(v, Value::Str("A😀".into()));
    }
}
