//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's unpoisonable `lock()` signature.

use std::sync::{self, PoisonError};

/// A mutex whose `lock()` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
