//! Offline stand-in for `crossbeam`, implementing the `thread::scope` API
//! this workspace uses on top of `std::thread::scope` (stable since Rust
//! 1.63, which postdates crossbeam's scoped-thread design).

pub mod thread {
    use std::any::Any;

    /// Wrapper matching crossbeam's `Scope`: `spawn` passes the scope back
    /// into the closure so nested spawns are possible.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            inner.spawn(move || f(&Scope(inner)))
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Matches crossbeam's `Result`-returning signature
    /// (`Err` only if the closure's own panics escape, which std's scope
    /// turns into a propagated panic instead — so this always returns `Ok`
    /// or unwinds).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 20);
    }
}
