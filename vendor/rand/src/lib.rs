//! Offline stand-in for `rand`, covering the subset this workspace uses:
//! `SmallRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool`. The generator is xoshiro256** seeded via splitmix64 —
//! deterministic for a given seed, which is all the callers rely on.

use std::ops::{Range, RangeInclusive};

/// Construction from a seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in(rng: &mut dyn RngCore, lo: Self, hi_exclusive: Self) -> Self;
}

/// Raw 64-bit generation, object-safe so `SampleUniform` can dispatch.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(rng: &mut dyn RngCore, lo: Self, hi_exclusive: Self) -> Self {
                debug_assert!(lo < hi_exclusive, "gen_range on empty range");
                let span = (hi_exclusive as $wide).wrapping_sub(lo as $wide) as u64;
                let off = rng.next_u64() % span;
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
             i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

/// The user-facing sampling trait.
pub trait Rng: RngCore {
    /// Sample uniformly from a `lo..hi` or `lo..=hi` integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoSampleRange<T>,
        Self: Sized,
    {
        let (lo, hi_exclusive) = range.into_bounds();
        T::sample_in(self, lo, hi_exclusive)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait IntoSampleRange<T> {
    /// Return `(lo, hi_exclusive)`.
    fn into_bounds(self) -> (T, T);
}

impl<T: SampleUniform> IntoSampleRange<T> for Range<T> {
    fn into_bounds(self) -> (T, T) {
        (self.start, self.end)
    }
}

macro_rules! impl_inclusive {
    ($($t:ty),*) => {$(
        impl IntoSampleRange<$t> for RangeInclusive<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), self.end().wrapping_add(1))
            }
        }
    )*};
}

impl_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::Rng for SmallRng {}
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: usize = a.gen_range(0..7);
            assert!(x < 7);
            assert_eq!(x, b.gen_range(0..7));
        }
        let mut c = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let v: i64 = c.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
    }
}
