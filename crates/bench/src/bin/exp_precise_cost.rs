//! E2: the cost of precise match-pair generation ("prohibitively
//! expensive") vs the over-approximation, as the race widens.
//!
//! Run: `cargo run --release -p bench --bin exp_precise_cost`

use mcapi::types::DeliveryModel;
use std::time::Instant;
use symbolic::checker::{generate_trace, CheckConfig};
use symbolic::matchpairs::{overapprox_match_pairs, precise_match_pairs};
use workloads::race::race;
use workloads::scatter;

fn main() {
    println!("# E2: precise DFS vs over-approximation cost\n");
    println!(
        "{}",
        bench::header(&[
            "workload",
            "precise states",
            "precise time",
            "overapprox time",
            "pairs (precise)",
            "pairs (over)",
            "spurious pairs",
        ])
    );

    let mut programs = Vec::new();
    for n in 2..=7 {
        programs.push((format!("race({n})"), race(n)));
    }
    for w in 2..=4 {
        programs.push((format!("scatter({w})"), scatter(w)));
    }

    for (name, program) in &programs {
        let cfg = CheckConfig::default();
        let trace = generate_trace(program, &cfg);

        let t0 = Instant::now();
        let precise = precise_match_pairs(program, &trace, DeliveryModel::Unordered);
        let precise_time = t0.elapsed();

        let t1 = Instant::now();
        let over = overapprox_match_pairs(program, &trace);
        let over_time = t1.elapsed();

        let spurious = over.num_pairs() - precise.num_pairs();
        println!(
            "{}",
            bench::row(&[
                name.clone(),
                precise.states_explored.to_string(),
                format!("{precise_time:?}"),
                format!("{over_time:?}"),
                precise.num_pairs().to_string(),
                over.num_pairs().to_string(),
                spurious.to_string(),
            ])
        );
    }

    println!("\nReading: precise DFS state counts grow exponentially with race width");
    println!("(the paper's motivation for the over-approximation future work), while");
    println!("the endpoint over-approximation is O(sends + recvs) and loses little");
    println!("precision on racy endpoints (and none at all on fully-racy ones).");
}
