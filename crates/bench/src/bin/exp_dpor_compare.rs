//! E5: wall-clock comparison — symbolic check vs explicit-state search
//! (naive, sleep-set-reduced, MCC-model, parallel) as races widen.
//!
//! Run: `cargo run --release -p bench --bin exp_dpor_compare`

use explicit::sleepset::SleepConfig;
use explicit::{ExploreConfig, GraphExplorer, ParallelExplorer, SleepSetExplorer};
use mcapi::types::DeliveryModel;
use std::time::Instant;
use symbolic::checker::{check_program, CheckConfig, MatchGen};
use workloads::race::race_with_winner_assert;

fn main() {
    println!("# E5: checker runtimes as the race widens (violation search)\n");
    println!(
        "{}",
        bench::header(&[
            "workload",
            "symbolic (overapprox)",
            "graph search",
            "graph states",
            "stateless naive",
            "naive execs",
            "stateless + sleep sets",
            "sleep execs",
            "parallel graph (4 workers)",
        ])
    );

    for n in 2..=6 {
        let program = race_with_winner_assert(n);

        let t = Instant::now();
        let sym = check_program(
            &program,
            &CheckConfig {
                matchgen: MatchGen::OverApprox,
                ..CheckConfig::default()
            },
        );
        let sym_time = t.elapsed();
        assert!(matches!(
            sym.verdict,
            symbolic::checker::Verdict::Violation(_)
        ));

        let cfg = ExploreConfig::with_model(DeliveryModel::Unordered);
        let t = Instant::now();
        let graph = GraphExplorer::new(&program, cfg).explore();
        let graph_time = t.elapsed();

        let t = Instant::now();
        let naive = SleepSetExplorer::new(
            &program,
            SleepConfig {
                use_sleep_sets: false,
                ..SleepConfig::default()
            },
        )
        .explore();
        let naive_time = t.elapsed();

        let t = Instant::now();
        let sleep = SleepSetExplorer::new(&program, SleepConfig::default()).explore();
        let sleep_time = t.elapsed();

        let t = Instant::now();
        let par = ParallelExplorer::new(&program, cfg, 4).explore();
        let par_time = t.elapsed();
        assert_eq!(par.matchings.len(), graph.matchings.len());

        println!(
            "{}",
            bench::row(&[
                format!("race-assert({n})"),
                format!("{sym_time:?}"),
                format!("{graph_time:?}"),
                graph.states.to_string(),
                format!("{naive_time:?}"),
                naive.complete_terminals.to_string(),
                format!("{sleep_time:?}"),
                sleep.complete_terminals.to_string(),
                format!("{par_time:?}"),
            ])
        );
    }

    println!("\nReading: explicit enumeration explodes factorially with race width;");
    println!("sleep sets cut the execution count but not the asymptote; the symbolic");
    println!("check defers the case split to CDCL and scales much further — the");
    println!("Fusion-vs-Inspect shape the paper cites as motivation.");
}
