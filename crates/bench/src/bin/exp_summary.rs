//! One-shot consolidated experiment table (F4 + E1..E5 at small scale) —
//! the source of the paper-vs-measured records in EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p bench --bin exp_summary`

use explicit::{ground_truth_check, mcc_check};
use mcapi::types::DeliveryModel;
use std::time::Instant;
use symbolic::checker::{
    check_program, enumerate_matchings, generate_trace, CheckConfig, MatchGen, Verdict,
};
use symbolic::matchpairs::{overapprox_match_pairs, precise_match_pairs};
use workloads::fig1::{fig1, fig1_with_assert};
use workloads::race::{delay_gap, race, race_with_winner_assert};

fn main() {
    let t_start = Instant::now();
    println!("# Consolidated reproduction summary\n");

    // --- F4 ---
    println!("## F4: Fig. 1 pairings per technique");
    let p = fig1();
    let cfg = CheckConfig::default();
    let trace = generate_trace(&p, &cfg);
    let sym = enumerate_matchings(&p, &trace, &cfg, 100);
    let zd_cfg = CheckConfig {
        delivery: DeliveryModel::ZeroDelay,
        matchgen: MatchGen::OverApprox,
        ..CheckConfig::default()
    };
    let trace_zd = generate_trace(&p, &zd_cfg);
    let sym_zd = enumerate_matchings(&p, &trace_zd, &zd_cfg, 100);
    let truth = ground_truth_check(&p);
    let mcc = mcc_check(&p);
    println!("{}", bench::header(&["technique", "pairings"]));
    println!(
        "{}",
        bench::row(&[
            "ground truth (exhaustive, delays)".into(),
            truth.matchings.len().to_string()
        ])
    );
    println!(
        "{}",
        bench::row(&[
            "THIS PAPER (symbolic, delays)".into(),
            sym.matchings.len().to_string()
        ])
    );
    println!(
        "{}",
        bench::row(&[
            "MCC stand-in (instant delivery)".into(),
            mcc.matchings.len().to_string()
        ])
    );
    println!(
        "{}",
        bench::row(&[
            "Elwakil&Yang-style (symbolic, no delays)".into(),
            sym_zd.matchings.len().to_string()
        ])
    );

    // --- E1 ---
    println!("\n## E1: delay-only violation (delay-gap family)");
    println!(
        "{}",
        bench::header(&[
            "workload",
            "ground truth",
            "MCC model",
            "symbolic delays",
            "symbolic zero-delay"
        ])
    );
    for chain in 1..=2 {
        let p = delay_gap(chain);
        let gt = ground_truth_check(&p).found_violation();
        let mc = mcc_check(&p).found_violation();
        let s1 = matches!(
            check_program(&p, &CheckConfig::default()).verdict,
            Verdict::Violation(_)
        );
        let s2 = matches!(
            check_program(
                &p,
                &CheckConfig {
                    delivery: DeliveryModel::ZeroDelay,
                    ..Default::default()
                }
            )
            .verdict,
            Verdict::Violation(_)
        );
        let fmt = |b: bool| if b { "VIOLATION" } else { "safe" };
        println!(
            "{}",
            bench::row(&[
                format!("delay-gap({chain})"),
                fmt(gt).into(),
                fmt(mc).into(),
                fmt(s1).into(),
                fmt(s2).into(),
            ])
        );
    }

    // --- E2 ---
    println!("\n## E2: precise match-pair DFS cost (states explored)");
    println!(
        "{}",
        bench::header(&[
            "race width",
            "precise states",
            "precise pairs",
            "overapprox pairs"
        ])
    );
    for n in 2..=6 {
        let p = race(n);
        let trace = generate_trace(&p, &CheckConfig::default());
        let precise = precise_match_pairs(&p, &trace, DeliveryModel::Unordered);
        let over = overapprox_match_pairs(&p, &trace);
        println!(
            "{}",
            bench::row(&[
                n.to_string(),
                precise.states_explored.to_string(),
                precise.num_pairs().to_string(),
                over.num_pairs().to_string(),
            ])
        );
    }

    // --- E3 ---
    println!("\n## E3: refinement loop (overapprox) verdict parity");
    println!(
        "{}",
        bench::header(&["workload", "precise", "overapprox", "refinements"])
    );
    for (name, p) in [
        ("fig1+assert".to_string(), fig1_with_assert()),
        ("race-assert(3)".to_string(), race_with_winner_assert(3)),
        ("delay-gap(1)".to_string(), delay_gap(1)),
    ] {
        let pr = check_program(&p, &CheckConfig::with_matchgen(MatchGen::Precise));
        let ov = check_program(&p, &CheckConfig::with_matchgen(MatchGen::OverApprox));
        let fmt = |v: &Verdict| match v {
            Verdict::Violation(_) => "VIOLATION",
            Verdict::Safe => "safe",
            Verdict::Unknown(_) => "unknown",
        };
        println!(
            "{}",
            bench::row(&[
                name,
                fmt(&pr.verdict).into(),
                fmt(&ov.verdict).into(),
                ov.refinements.to_string(),
            ])
        );
    }

    // --- E4 ---
    println!("\n## E4: symbolic vs exhaustive behaviour parity (race family)");
    println!(
        "{}",
        bench::header(&[
            "workload",
            "explicit behaviours",
            "symbolic behaviours",
            "agree"
        ])
    );
    for n in 2..=4 {
        let p = race(n);
        let truth = ground_truth_check(&p);
        let trace = generate_trace(&p, &CheckConfig::default());
        let en = enumerate_matchings(&p, &trace, &CheckConfig::default(), 100_000);
        println!(
            "{}",
            bench::row(&[
                format!("race({n})"),
                truth.matchings.len().to_string(),
                en.matchings.len().to_string(),
                (truth.matchings == en.matchings).to_string(),
            ])
        );
    }

    // --- E5 ---
    println!("\n## E5: runtime shape (symbolic vs explicit), violation search");
    println!(
        "{}",
        bench::header(&["race width", "symbolic", "explicit graph"])
    );
    for n in [3usize, 5] {
        let p = race_with_winner_assert(n);
        let t = Instant::now();
        let _ = check_program(&p, &CheckConfig::with_matchgen(MatchGen::OverApprox));
        let sym_t = t.elapsed();
        let t = Instant::now();
        let _ = ground_truth_check(&p);
        let exp_t = t.elapsed();
        println!(
            "{}",
            bench::row(&[n.to_string(), format!("{sym_t:?}"), format!("{exp_t:?}")])
        );
    }

    println!("\n(total runtime {:?})", t_start.elapsed());
}
