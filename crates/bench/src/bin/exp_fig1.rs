//! F1/F2/F3: the paper's Figure 1 program, its trace, and the generated
//! SMT problem — with `--show-smt` printing the Fig. 2 / Fig. 3 conjuncts.
//!
//! Run: `cargo run --release -p bench --bin exp_fig1 [-- --show-smt]`

use mcapi::types::DeliveryModel;
use symbolic::checker::{generate_trace, CheckConfig};
use symbolic::encode::{encode, EncodeOptions};
use symbolic::matchpairs::precise_match_pairs;
use workloads::fig1;

fn main() {
    let show_smt = std::env::args().any(|a| a == "--show-smt");
    let program = fig1();
    let cfg = CheckConfig::default();
    let trace = generate_trace(&program, &cfg);

    println!("# F1: paper Figure 1");
    println!(
        "program `{}`: {} threads, {} sends, {} recvs",
        program.name,
        program.threads.len(),
        program.num_static_sends(),
        program.num_static_recvs()
    );
    println!("\ntrace ({} events):", trace.events.len());
    print!("{}", trace.render());

    let pairs = precise_match_pairs(&program, &trace, DeliveryModel::Unordered);
    println!("\n# trace analysis: MatchPairs / getSends");
    for (r, s) in &pairs.sends_for {
        println!("getSends({r:?}) = {s:?}");
    }

    let enc = encode(
        &program,
        &trace,
        &pairs,
        EncodeOptions {
            delivery: DeliveryModel::Unordered,
            negate_props: false,
            ..Default::default()
        },
    );
    println!("\n# F2/F3: generated SMT problem");
    println!("{}", bench::header(&["conjunct", "size"]));
    println!(
        "{}",
        bench::row(&[
            "PMatchPairs disjuncts (Fig. 2)".into(),
            enc.stats.match_disjuncts.to_string()
        ])
    );
    println!(
        "{}",
        bench::row(&[
            "PUnique pairs (Fig. 3)".into(),
            enc.stats.unique_pairs.to_string()
        ])
    );
    println!(
        "{}",
        bench::row(&[
            "POrder constraints".into(),
            enc.stats.order_constraints.to_string()
        ])
    );
    println!(
        "{}",
        bench::row(&["SAT variables".into(), enc.stats.sat_vars.to_string()])
    );
    println!(
        "{}",
        bench::row(&["SAT clauses".into(), enc.stats.sat_clauses.to_string()])
    );
    println!(
        "{}",
        bench::row(&[
            "difference atoms".into(),
            enc.stats.theory_atoms.to_string()
        ])
    );

    if show_smt {
        println!("\n# match / uniqueness terms (s-expressions)");
        let pool = enc.solver.pool();
        for r in &enc.recvs {
            println!(
                "; receive {:?}: id variable {}",
                r.key,
                pool.display(r.id_term)
            );
        }
        for s in &enc.sends {
            println!(
                "; send {:?}: id constant {}, clock {}",
                s.msg,
                s.id,
                pool.display(s.clock)
            );
        }
    }
}
