//! E3: the validate-and-refine loop on over-approximate match pairs —
//! verdict parity with precise pairs, plus refinement counts.
//!
//! Run: `cargo run --release -p bench --bin exp_overapprox_refine`

use mcapi::program::Program;
use std::time::Instant;
use symbolic::checker::{check_program, CheckConfig, MatchGen, Verdict};
use workloads::race::{delay_gap, race_with_winner_assert};
use workloads::{fig1::fig1_with_assert, pipeline, scatter};

fn verdict(v: &Verdict) -> String {
    match v {
        Verdict::Violation(_) => "VIOLATION".into(),
        Verdict::Safe => "safe".into(),
        Verdict::Unknown(w) => format!("unknown({w})"),
    }
}

fn main() {
    println!("# E3: over-approximation + refinement vs precise generation\n");
    println!(
        "{}",
        bench::header(&[
            "workload",
            "precise verdict",
            "precise total time",
            "overapprox verdict",
            "overapprox total time",
            "refinements",
        ])
    );

    let programs: Vec<(String, Program)> = vec![
        ("fig1+assert".into(), fig1_with_assert()),
        ("race-assert(3)".into(), race_with_winner_assert(3)),
        ("race-assert(4)".into(), race_with_winner_assert(4)),
        ("delay-gap(2)".into(), delay_gap(2)),
        ("pipeline(3,3)".into(), pipeline(3, 3)),
        ("scatter(3)".into(), scatter(3)),
    ];

    for (name, program) in &programs {
        let t0 = Instant::now();
        let pr = check_program(program, &CheckConfig::with_matchgen(MatchGen::Precise));
        let precise_time = t0.elapsed();
        let t1 = Instant::now();
        let ov = check_program(program, &CheckConfig::with_matchgen(MatchGen::OverApprox));
        let over_time = t1.elapsed();
        println!(
            "{}",
            bench::row(&[
                name.clone(),
                verdict(&pr.verdict),
                format!("{precise_time:?}"),
                verdict(&ov.verdict),
                format!("{over_time:?}"),
                ov.refinements.to_string(),
            ])
        );
    }

    println!("\nReading: verdicts always agree (the refinement loop makes the cheap");
    println!("over-approximation sound); refinement counts stay small because spurious");
    println!("models are blocked per matching, not per linearisation.");
}
