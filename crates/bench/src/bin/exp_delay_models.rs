//! E1: the coverage gap of delay-free models, quantified. For each
//! workload: behaviours and violation verdicts under the three delivery
//! models, explicit vs symbolic.
//!
//! Run: `cargo run --release -p bench --bin exp_delay_models`

use explicit::{ExploreConfig, GraphExplorer};
use mcapi::program::Program;
use mcapi::types::DeliveryModel;
use symbolic::checker::{check_program, CheckConfig, MatchGen, Verdict};
use workloads::race::{delay_gap, race_with_winner_assert};
use workloads::{fig1::fig1_with_assert, pipeline};

fn verdict(v: &Verdict) -> &'static str {
    match v {
        Verdict::Violation(_) => "VIOLATION",
        Verdict::Safe => "safe",
        Verdict::Unknown(_) => "unknown",
    }
}

fn main() {
    println!("# E1: behaviours and verdicts per delivery model\n");
    println!(
        "{}",
        bench::header(&[
            "workload",
            "model",
            "behaviours (explicit)",
            "violation (explicit)",
            "violation (symbolic)",
        ])
    );

    let workloads: Vec<(String, Program)> = vec![
        ("fig1+assert".into(), fig1_with_assert()),
        ("race-assert(2)".into(), race_with_winner_assert(2)),
        ("race-assert(3)".into(), race_with_winner_assert(3)),
        ("delay-gap(1)".into(), delay_gap(1)),
        ("delay-gap(2)".into(), delay_gap(2)),
        ("pipeline(3,2)".into(), pipeline(3, 2)),
    ];

    for (name, program) in &workloads {
        for model in DeliveryModel::ALL {
            let truth = GraphExplorer::new(program, ExploreConfig::with_model(model)).explore();
            let cfg = CheckConfig {
                delivery: model,
                matchgen: MatchGen::OverApprox,
                ..CheckConfig::default()
            };
            let report = check_program(program, &cfg);
            println!(
                "{}",
                bench::row(&[
                    name.clone(),
                    model.to_string(),
                    truth.matchings.len().to_string(),
                    if truth.found_violation() {
                        "VIOLATION".into()
                    } else {
                        "safe".into()
                    },
                    verdict(&report.verdict).into(),
                ])
            );
        }
        println!(
            "{}",
            bench::row(&["".into(), "".into(), "".into(), "".into(), "".into()])
        );
    }

    println!("\nReading: the delay-gap family is the paper's Fig. 4b phenomenon —");
    println!("violations exist under `unordered`/`pairwise-fifo` but are invisible");
    println!("under `zero-delay` (the MCC / Elwakil&Yang network model).");
}
