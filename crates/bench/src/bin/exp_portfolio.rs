//! E7: portfolio throughput — the same scenario grid on 1 worker vs N
//! workers, sweep and race modes. On a single-core host the N-thread rows
//! measure scheduling overhead only; on multi-core hardware they show the
//! fan-out speedup the driver exists for.
//!
//! Run: `cargo run --release -p bench --bin exp_portfolio [scale] [threads]`

use driver::prelude::*;
use mcapi::types::DeliveryModel;
use std::time::Instant;

fn run_once(scenarios: &[Scenario], threads: usize, mode: Mode) -> (u64, PortfolioReport) {
    let cfg = PortfolioConfig { threads, mode, ..PortfolioConfig::default() };
    let start = Instant::now();
    let report = run_portfolio(scenarios, &cfg);
    (start.elapsed().as_millis() as u64, report)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(2);
    let max_threads: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));

    let scenarios = cross(&default_grid(scale), &DeliveryModel::ALL, &Engine::ALL);
    println!(
        "# E7: portfolio wall clock, {} scenarios (scale {scale})\n",
        scenarios.len()
    );
    println!("{}", bench::header(&["mode", "threads", "wall ms", "verdict counts"]));

    let mut threads = 1usize;
    while threads <= max_threads {
        for mode in [Mode::Sweep, Mode::Race] {
            let (ms, report) = run_once(&scenarios, threads, mode);
            println!(
                "{}",
                bench::row(&[
                    mode.tag().to_string(),
                    threads.to_string(),
                    ms.to_string(),
                    format!(
                        "{} safe / {} violation / {} unknown / {} skipped",
                        report.safe, report.violations, report.unknown, report.skipped
                    ),
                ])
            );
        }
        threads *= 2;
    }
}
