//! E7: portfolio throughput, plus the CI performance gate.
//!
//! Modes:
//!
//! * `exp_portfolio [scale] [threads]` — the wall-clock table: the same
//!   scenario grid on 1..N workers, sweep and race modes. On a single-core
//!   host the N-thread rows measure scheduling overhead only.
//! * `exp_portfolio --json PATH [--check BASELINE]` — the CI perf gate:
//!   run the pinned grid (every family at scale 1 × all delivery models ×
//!   all engines, 1 thread, sweep) twice — with shared solver sessions and
//!   with from-scratch re-encoding — and write the counters as JSON.
//!   With `--check`, compare the *deterministic* counters (SAT checks and
//!   conflicts; wall clock is recorded but never gated) against a
//!   committed baseline and exit non-zero if any regresses by more than
//!   20%, or if session reuse stops saving at least 20% of
//!   conflicts + propagations.
//! * `exp_portfolio --trend PATH` — run the pinned grid once (shared
//!   sessions, 1 thread, sweep) and append one schema-versioned JSON line
//!   (git rev, UTC date, deterministic counters, wall clock) to the
//!   `BENCH_trend.jsonl` ledger at PATH. Append-only, so CI can chart the
//!   counters across commits.
//! * `exp_portfolio --trend-table PATH [--last N]` — render the ledger's
//!   last N records (default 10) as a markdown table on stdout, for
//!   `$GITHUB_STEP_SUMMARY`.
//! * `exp_portfolio --trace-out PATH` — the tracing-neutrality gate: run
//!   the pinned grid untraced, then again with hierarchical tracing
//!   enabled, write the Chrome trace-event JSON of the traced run to
//!   PATH (load it in Perfetto), and exit non-zero if tracing changed
//!   any verdict or deterministic counter. Runs alone (not combined with
//!   `--json`).
//!
//! Run: `cargo run --release -p bench --bin exp_portfolio [args]`

use driver::prelude::*;
use mcapi::types::DeliveryModel;
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Instant;

/// Regression tolerance for the deterministic counters (fraction).
const TOLERANCE: f64 = 0.20;
/// Minimum conflicts+propagations saving session reuse must deliver (%).
const MIN_REDUCTION_PCT: i64 = 20;
/// Minimum drop in directed-search transitions that Mazurkiewicz
/// normal-form pruning must deliver on the branchy paths grid (%).
const MIN_CANONICAL_REDUCTION_PCT: i64 = 40;

fn run_once(scenarios: &[Scenario], threads: usize, mode: Mode) -> (u64, PortfolioReport) {
    let cfg = PortfolioConfig {
        threads,
        mode,
        ..PortfolioConfig::default()
    };
    let start = Instant::now();
    let report = run_portfolio(scenarios, &cfg);
    (start.elapsed().as_millis() as u64, report)
}

/// Deterministic per-scenario counters kept in `BENCH_portfolio.json`.
#[derive(Serialize, Deserialize)]
struct ScenarioCounters {
    scenario: String,
    wall_ms: u64,
    sat_checks: usize,
    conflicts: u64,
    propagations: u64,
    reused_encoding: bool,
    #[serde(default)]
    paths_explored: usize,
    #[serde(default)]
    paths_pruned: usize,
    #[serde(default)]
    directed_transitions: u64,
    #[serde(default)]
    canonical_skipped: u64,
}

/// Aggregate counters of one pinned-grid run.
#[derive(Serialize, Deserialize)]
struct RunCounters {
    wall_ms: u64,
    encodings_built: usize,
    sat_checks: usize,
    conflicts: u64,
    propagations: u64,
    #[serde(default)]
    paths_explored: usize,
    #[serde(default)]
    paths_pruned: usize,
    /// Transitions applied by directed schedule searches (symbolic-paths).
    #[serde(default)]
    directed_transitions: u64,
    /// Schedule extensions pruned by the Mazurkiewicz normal-form test.
    #[serde(default)]
    canonical_skipped: u64,
    per_scenario: Vec<ScenarioCounters>,
}

impl RunCounters {
    fn from_report(wall_ms: u64, report: &PortfolioReport) -> RunCounters {
        RunCounters {
            wall_ms,
            encodings_built: report.encodings_built,
            sat_checks: report.total_sat_checks,
            conflicts: report.total_conflicts,
            propagations: report.total_propagations,
            paths_explored: report.total_paths_explored,
            paths_pruned: report.total_paths_pruned,
            directed_transitions: report.total_directed_transitions,
            canonical_skipped: report.total_canonical_skipped,
            per_scenario: report
                .outcomes
                .iter()
                .map(|o| ScenarioCounters {
                    scenario: o.scenario.clone(),
                    wall_ms: o.wall_ms,
                    sat_checks: o.sat_checks,
                    conflicts: o.conflicts,
                    propagations: o.propagations,
                    reused_encoding: o.reused_encoding,
                    paths_explored: o.paths_explored,
                    paths_pruned: o.paths_pruned,
                    directed_transitions: o.directed_transitions,
                    canonical_skipped: o.canonical_skipped,
                })
                .collect(),
        }
    }
}

/// The perf-gate artifact: both runs plus the headline saving, and the
/// path-exploration gate (sibling paths sharing one encoded core vs a
/// fresh encoding per path).
#[derive(Serialize, Deserialize)]
struct PerfGateReport {
    grid: String,
    scenarios: usize,
    /// Total flattened (loop-unrolled) instructions across the pinned
    /// grid's distinct programs — tracks how much code the `repeat`
    /// unroller feeds the engines.
    #[serde(default)]
    unrolled_instrs: usize,
    /// Same counter for the paths-gate grid (the branch-in-loop
    /// workloads whose sibling paths share sessions).
    #[serde(default)]
    paths_unrolled_instrs: usize,
    /// Batched grid points sharing incremental solver sessions.
    reuse: RunCounters,
    /// Every scenario re-encoded from scratch (the PR-1 shape).
    no_reuse: RunCounters,
    /// Whole-percent saving of conflicts+propagations from session reuse.
    reduction_pct_conflicts_plus_propagations: i64,
    /// The branch-sensitive grid under `symbolic-paths` with sibling-path
    /// session sharing.
    paths_reuse: RunCounters,
    /// The same grid with a fresh encoding per path.
    paths_no_reuse: RunCounters,
    /// Whole-percent saving of conflicts+propagations from sharing cores
    /// across sibling paths.
    paths_reduction_pct_conflicts_plus_propagations: i64,
    /// The paths grid swept with canonical (Mazurkiewicz normal-form)
    /// pruning disabled — every directed search sweeps every
    /// interleaving, the `--no-canonical` shape. Compare `paths_reuse`.
    paths_no_canonical: RunCounters,
    /// Whole-percent drop in directed-search transitions from canonical
    /// pruning on the paths grid.
    canonical_reduction_pct_directed_transitions: i64,
    /// Canonical and full sweeps returned identical per-scenario
    /// verdicts — pruning must be invisible to everything but work.
    canonical_verdicts_match: bool,
}

fn run_full(
    scenarios: &[Scenario],
    session_reuse: bool,
    canonical: bool,
    static_triage: bool,
) -> (RunCounters, PortfolioReport) {
    let cfg = PortfolioConfig {
        threads: 1,
        mode: Mode::Sweep,
        session_reuse,
        canonical,
        static_triage,
        ..PortfolioConfig::default()
    };
    let start = Instant::now();
    let report = run_portfolio(scenarios, &cfg);
    let counters = RunCounters::from_report(start.elapsed().as_millis() as u64, &report);
    (counters, report)
}

fn run_counters(scenarios: &[Scenario], session_reuse: bool) -> RunCounters {
    run_full(scenarios, session_reuse, true, true).0
}

fn reduction_pct(reuse: &RunCounters, no_reuse: &RunCounters) -> i64 {
    let work = |r: &RunCounters| r.conflicts + r.propagations;
    if work(no_reuse) == 0 {
        0
    } else {
        (100.0 * (1.0 - work(reuse) as f64 / work(no_reuse) as f64)).round() as i64
    }
}

/// Total flattened (loop-unrolled) instruction count of a set of grid
/// points — the size the engines actually consume after `repeat`
/// expansion.
fn unrolled_instrs(specs: &[workloads::FamilySpec]) -> usize {
    specs.iter().map(|s| s.build().code_size()).sum()
}

fn pinned_grid_report() -> PerfGateReport {
    let grid = default_grid(1);
    let scenarios = cross(&grid, &DeliveryModel::ALL, &Engine::ALL);
    let reuse = run_counters(&scenarios, true);
    let no_reuse = run_counters(&scenarios, false);
    // The path gate: branch-heavy programs — including the loop families,
    // whose unrolled bodies multiply branch sites — one delivery, paths
    // engine only, so the saving measured is exactly the sibling-path
    // sharing. The storm family anchors the canonicalization half of the
    // gate: its producer ticks independently of the consumer, so its
    // schedule spaces are dominated by commuting interleavings (branchy
    // and credit-window funnel everything into one endpoint and leave
    // the normal-form test far less to prune).
    let mut paths_points = family_grid("branchy", 3);
    paths_points.extend(family_grid("credit-window", 3));
    paths_points.extend(family_grid("storm", 3));
    let paths_scenarios = cross(
        &paths_points,
        &[DeliveryModel::Unordered],
        &[Engine::SymbolicPaths],
    );
    // The paths and canonical gates run with the static triage pre-pass
    // off: they are A/B measurements of *engine* layers (sibling-path
    // session sharing, Mazurkiewicz pruning), and triage settling the
    // assert-free points engine-free would shrink the measured work on
    // both sides until the ratios stop meaning anything. The main pinned
    // grid above keeps the default (triage on), so the trend ledger
    // tracks how many scenarios settle statically.
    let (paths_reuse, paths_report) = run_full(&paths_scenarios, true, true, false);
    let paths_no_reuse = run_full(&paths_scenarios, false, true, false).0;
    // The canonicalization gate: the same grid with the normal-form
    // pruning off. The verdicts must be identical; the directed-search
    // transition count must not be.
    let (paths_no_canonical, no_canon_report) = run_full(&paths_scenarios, true, false, false);
    let canonical_verdicts_match = paths_report
        .outcomes
        .iter()
        .zip(&no_canon_report.outcomes)
        .all(|(a, b)| a.scenario == b.scenario && a.verdict == b.verdict);
    let canonical_reduction = if paths_no_canonical.directed_transitions == 0 {
        0
    } else {
        (100.0
            * (1.0
                - paths_reuse.directed_transitions as f64
                    / paths_no_canonical.directed_transitions as f64))
            .round() as i64
    };
    PerfGateReport {
        grid: "default_grid(1) x all deliveries x all engines, 1 thread, sweep; \
               paths gate: branchy(scale 3) + credit-window(scale 3) + \
               storm(scale 3) x unordered x symbolic-paths, static triage off"
            .into(),
        scenarios: scenarios.len(),
        unrolled_instrs: unrolled_instrs(&grid),
        paths_unrolled_instrs: unrolled_instrs(&paths_points),
        reduction_pct_conflicts_plus_propagations: reduction_pct(&reuse, &no_reuse),
        reuse,
        no_reuse,
        paths_reduction_pct_conflicts_plus_propagations: reduction_pct(
            &paths_reuse,
            &paths_no_reuse,
        ),
        paths_reuse,
        paths_no_reuse,
        paths_no_canonical,
        canonical_reduction_pct_directed_transitions: canonical_reduction,
        canonical_verdicts_match,
    }
}

/// The command that refreshes the committed baseline after an
/// *intentional* perf change; printed with every gate failure so the fix
/// never has to be dug out of CI config.
const REGEN_CMD: &str =
    "cargo run --release -p bench --bin exp_portfolio -- --json BENCH_portfolio.json";

/// Percentage change of `current` relative to `baseline` (`+25.0` means a
/// quarter more work than the baseline recorded).
fn delta_pct(current: u64, baseline: u64) -> f64 {
    if baseline == 0 {
        if current == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (current as f64 - baseline as f64) / baseline as f64
    }
}

/// One counter comparison against the baseline; returns whether it passes.
fn within_tolerance(name: &str, current: u64, baseline: u64) -> bool {
    let limit = (baseline as f64 * (1.0 + TOLERANCE)).ceil() as u64;
    if current > limit {
        eprintln!(
            "PERF REGRESSION: {name}: {current} vs baseline {baseline} ({:+.1}%, tolerance +{:.0}%, limit {limit})",
            delta_pct(current, baseline),
            TOLERANCE * 100.0
        );
        false
    } else {
        println!(
            "ok: {name}: {current} (baseline {baseline}, {:+.1}%, limit {limit})",
            delta_pct(current, baseline)
        );
        true
    }
}

fn perf_gate(json_path: &str, baseline_path: Option<&str>) -> ExitCode {
    let report = pinned_grid_report();
    let json = serde_json::to_string_pretty(&report).expect("perf report serialises");
    if let Err(e) = std::fs::write(json_path, &json) {
        eprintln!("cannot write {json_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "pinned grid: {} scenarios, {} unrolled instrs (paths gate: {}) | reuse: {} encodings, {} sat checks, {} conflicts, {} propagations | no-reuse: {} encodings, {} sat checks, {} conflicts, {} propagations | reduction {}%",
        report.scenarios,
        report.unrolled_instrs,
        report.paths_unrolled_instrs,
        report.reuse.encodings_built,
        report.reuse.sat_checks,
        report.reuse.conflicts,
        report.reuse.propagations,
        report.no_reuse.encodings_built,
        report.no_reuse.sat_checks,
        report.no_reuse.conflicts,
        report.no_reuse.propagations,
        report.reduction_pct_conflicts_plus_propagations,
    );
    println!(
        "paths gate: reuse {} encodings / {} paths ({} pruned), {} conflicts, {} propagations | per-path {} encodings, {} conflicts, {} propagations | reduction {}%",
        report.paths_reuse.encodings_built,
        report.paths_reuse.paths_explored,
        report.paths_reuse.paths_pruned,
        report.paths_reuse.conflicts,
        report.paths_reuse.propagations,
        report.paths_no_reuse.encodings_built,
        report.paths_no_reuse.conflicts,
        report.paths_no_reuse.propagations,
        report.paths_reduction_pct_conflicts_plus_propagations,
    );
    println!(
        "canonical gate: {} directed transitions ({} skipped by the normal-form test) vs {} without pruning | reduction {}% | verdicts match: {}",
        report.paths_reuse.directed_transitions,
        report.paths_reuse.canonical_skipped,
        report.paths_no_canonical.directed_transitions,
        report.canonical_reduction_pct_directed_transitions,
        report.canonical_verdicts_match,
    );

    let Some(baseline_path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let baseline: PerfGateReport = match std::fs::read_to_string(baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot load baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut ok = true;
    ok &= within_tolerance(
        "reuse.sat_checks",
        report.reuse.sat_checks as u64,
        baseline.reuse.sat_checks as u64,
    );
    ok &= within_tolerance(
        "reuse.conflicts",
        report.reuse.conflicts,
        baseline.reuse.conflicts,
    );
    ok &= within_tolerance(
        "no_reuse.sat_checks",
        report.no_reuse.sat_checks as u64,
        baseline.no_reuse.sat_checks as u64,
    );
    ok &= within_tolerance(
        "no_reuse.conflicts",
        report.no_reuse.conflicts,
        baseline.no_reuse.conflicts,
    );
    ok &= within_tolerance(
        "paths_reuse.sat_checks",
        report.paths_reuse.sat_checks as u64,
        baseline.paths_reuse.sat_checks as u64,
    );
    ok &= within_tolerance(
        "paths_reuse.conflicts",
        report.paths_reuse.conflicts,
        baseline.paths_reuse.conflicts,
    );
    // Combined search-effort gates: conflicts alone can stay flat while
    // propagation work balloons (or vice versa), so the branchy/loop paths
    // grid and the main reuse grid are each also held to the *sum*.
    ok &= within_tolerance(
        "reuse.conflicts+propagations",
        report.reuse.conflicts + report.reuse.propagations,
        baseline.reuse.conflicts + baseline.reuse.propagations,
    );
    ok &= within_tolerance(
        "paths_reuse.conflicts+propagations",
        report.paths_reuse.conflicts + report.paths_reuse.propagations,
        baseline.paths_reuse.conflicts + baseline.paths_reuse.propagations,
    );
    if report.reduction_pct_conflicts_plus_propagations < MIN_REDUCTION_PCT {
        eprintln!(
            "PERF REGRESSION: session reuse saves only {}% of conflicts+propagations (< {MIN_REDUCTION_PCT}%)",
            report.reduction_pct_conflicts_plus_propagations,
        );
        ok = false;
    } else {
        println!(
            "ok: session reuse saves {}% of conflicts+propagations (>= {MIN_REDUCTION_PCT}%)",
            report.reduction_pct_conflicts_plus_propagations,
        );
    }
    if report.paths_reduction_pct_conflicts_plus_propagations < MIN_REDUCTION_PCT {
        eprintln!(
            "PERF REGRESSION: sibling-path session reuse saves only {}% of conflicts+propagations (< {MIN_REDUCTION_PCT}%)",
            report.paths_reduction_pct_conflicts_plus_propagations,
        );
        ok = false;
    } else {
        println!(
            "ok: sibling-path session reuse saves {}% of conflicts+propagations (>= {MIN_REDUCTION_PCT}%)",
            report.paths_reduction_pct_conflicts_plus_propagations,
        );
    }
    // The canonicalization gate: the pruned search must not drift upward
    // relative to the committed baseline, the pruning must keep paying
    // for itself, and it must never change a verdict.
    ok &= within_tolerance(
        "paths_reuse.directed_transitions",
        report.paths_reuse.directed_transitions,
        baseline.paths_reuse.directed_transitions,
    );
    if report.canonical_reduction_pct_directed_transitions < MIN_CANONICAL_REDUCTION_PCT {
        eprintln!(
            "PERF REGRESSION: canonical pruning drops only {}% of directed-search transitions (< {MIN_CANONICAL_REDUCTION_PCT}%)",
            report.canonical_reduction_pct_directed_transitions,
        );
        ok = false;
    } else {
        println!(
            "ok: canonical pruning drops {}% of directed-search transitions (>= {MIN_CANONICAL_REDUCTION_PCT}%)",
            report.canonical_reduction_pct_directed_transitions,
        );
    }
    if !report.canonical_verdicts_match {
        eprintln!("SOUNDNESS: canonical and full sweeps disagreed on a verdict");
        ok = false;
    } else {
        println!("ok: canonical and full sweeps returned identical verdicts");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("if the change is intentional, refresh the baseline and commit it:");
        eprintln!("  {REGEN_CMD}");
        ExitCode::from(1)
    }
}

/// `--trace-out PATH`: run the pinned grid untraced and then traced,
/// write the traced run's Chrome trace, and fail if tracing changed any
/// verdict or deterministic counter — tracing must be observation only.
fn traced_grid_gate(path: &str) -> ExitCode {
    let grid = default_grid(1);
    let scenarios = cross(&grid, &DeliveryModel::ALL, &Engine::ALL);
    let cfg = PortfolioConfig {
        threads: 1,
        mode: Mode::Sweep,
        session_reuse: true,
        ..PortfolioConfig::default()
    };
    let untraced = run_portfolio(&scenarios, &cfg);
    let tracer = trace::Tracer::new();
    let traced = run_portfolio_traced(&scenarios, &cfg, Some(&tracer));
    if let Err(e) = std::fs::write(path, tracer.chrome_trace()) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for (u, t) in untraced.outcomes.iter().zip(&traced.outcomes) {
        let same = u.scenario == t.scenario
            && u.verdict == t.verdict
            && u.sat_checks == t.sat_checks
            && u.conflicts == t.conflicts
            && u.propagations == t.propagations
            && u.paths_explored == t.paths_explored
            && u.paths_pruned == t.paths_pruned
            && u.states == t.states
            && u.reused_encoding == t.reused_encoding;
        if !same {
            eprintln!(
                "TRACING DRIFT: {}: traced run disagrees with untraced \
                 (verdict {:?} vs {:?}, sat checks {} vs {}, conflicts {} vs {})",
                u.scenario,
                t.verdict,
                u.verdict,
                t.sat_checks,
                u.sat_checks,
                t.conflicts,
                u.conflicts,
            );
            ok = false;
        }
    }
    println!(
        "traced pinned grid: {} scenarios, {} spans recorded ({} dropped) -> {path}",
        traced.outcomes.len(),
        tracer.span_count(),
        tracer.dropped_count(),
    );
    if ok {
        println!("ok: tracing changed no verdict or deterministic counter");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// `--trend PATH`: run the pinned grid once and append one trend record.
fn trend_append(path: &str) -> ExitCode {
    const GRID_DESC: &str =
        "default_grid(1) x all deliveries x all engines, 1 thread, sweep, session reuse";
    let grid = default_grid(1);
    let scenarios = cross(&grid, &DeliveryModel::ALL, &Engine::ALL);
    let cfg = PortfolioConfig {
        threads: 1,
        mode: Mode::Sweep,
        session_reuse: true,
        ..PortfolioConfig::default()
    };
    let report = run_portfolio(&scenarios, &cfg);
    let record = driver::trend::TrendRecord::from_report(&report, GRID_DESC);
    if let Err(e) = driver::trend::append_record(std::path::Path::new(path), &record) {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    println!(
        "appended trend record to {path}: rev {} date {} | {} scenarios, {} ms, {} sat checks, {} conflicts, {} propagations",
        record.git_rev,
        record.date,
        record.scenarios,
        record.wall_ms,
        record.sat_checks,
        record.conflicts,
        record.propagations,
    );
    ExitCode::SUCCESS
}

/// `--trend-table PATH [--last N]`: markdown table of the newest records.
fn trend_table(path: &str, last: usize) -> ExitCode {
    match driver::trend::load_records(std::path::Path::new(path)) {
        Ok(records) => {
            print!("{}", driver::trend::render_markdown(&records, last));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(path) = flag_value(&args, "--trace-out") {
        return traced_grid_gate(path);
    }
    if let Some(path) = flag_value(&args, "--trend") {
        return trend_append(path);
    }
    if let Some(path) = flag_value(&args, "--trend-table") {
        let last = flag_value(&args, "--last")
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        return trend_table(path, last);
    }
    if let Some(json_path) = flag_value(&args, "--json") {
        return perf_gate(json_path, flag_value(&args, "--check"));
    }
    if args.iter().any(|a| a == "--check") {
        eprintln!("--check requires --json PATH");
        return ExitCode::from(2);
    }

    let scale: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(2);
    let max_threads: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });

    let scenarios = cross(&default_grid(scale), &DeliveryModel::ALL, &Engine::ALL);
    println!(
        "# E7: portfolio wall clock, {} scenarios (scale {scale})\n",
        scenarios.len()
    );
    println!(
        "{}",
        bench::header(&["mode", "threads", "wall ms", "verdict counts"])
    );

    let mut threads = 1usize;
    while threads <= max_threads {
        for mode in [Mode::Sweep, Mode::Race] {
            let (ms, report) = run_once(&scenarios, threads, mode);
            println!(
                "{}",
                bench::row(&[
                    mode.tag().to_string(),
                    threads.to_string(),
                    ms.to_string(),
                    format!(
                        "{} safe / {} violation / {} unknown / {} skipped",
                        report.safe, report.violations, report.unknown, report.skipped
                    ),
                ])
            );
        }
        threads *= 2;
    }
    ExitCode::SUCCESS
}
