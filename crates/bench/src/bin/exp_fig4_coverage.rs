//! F4: behaviour coverage on the paper's Figure 1 — which technique finds
//! which of the two pairings (Fig. 4a, Fig. 4b).
//!
//! Run: `cargo run --release -p bench --bin exp_fig4_coverage`

use explicit::sleepset::SleepConfig;
use explicit::{ground_truth_check, mcc_check, SleepSetExplorer};
use mcapi::types::DeliveryModel;
use symbolic::checker::{enumerate_matchings, generate_trace, CheckConfig, MatchGen};
use workloads::fig1;

fn main() {
    let program = fig1();
    println!("# F4: pairings of the paper's Fig. 1 found per technique\n");
    println!(
        "{}",
        bench::header(&[
            "technique",
            "network model",
            "pairings found",
            "states/checks"
        ])
    );

    // Ground truth (exhaustive, arbitrary delays).
    let truth = ground_truth_check(&program);
    println!(
        "{}",
        bench::row(&[
            "explicit exhaustive (ground truth)".into(),
            "arbitrary delays".into(),
            truth.matchings.len().to_string(),
            format!("{} states", truth.states),
        ])
    );

    // MCC stand-in.
    let mcc = mcc_check(&program);
    println!(
        "{}",
        bench::row(&[
            "MCC stand-in [5]".into(),
            "instant delivery".into(),
            mcc.matchings.len().to_string(),
            format!("{} states", mcc.states),
        ])
    );

    // Sleep-set stateless search.
    let ss = SleepSetExplorer::new(&program, SleepConfig::default()).explore();
    println!(
        "{}",
        bench::row(&[
            "sleep-set stateless (Inspect-style [7])".into(),
            "arbitrary delays".into(),
            ss.matchings.len().to_string(),
            format!("{} executions", ss.complete_terminals),
        ])
    );

    // This paper: symbolic, arbitrary delays.
    let cfg = CheckConfig {
        matchgen: MatchGen::Precise,
        ..CheckConfig::default()
    };
    let trace = generate_trace(&program, &cfg);
    let sym = enumerate_matchings(&program, &trace, &cfg, 100);
    println!(
        "{}",
        bench::row(&[
            "THIS PAPER: symbolic SMT".into(),
            "arbitrary delays".into(),
            sym.matchings.len().to_string(),
            format!("{} SMT checks", sym.sat_checks),
        ])
    );

    // Elwakil&Yang-style: symbolic with zero-delay axioms.
    let zd = CheckConfig {
        delivery: DeliveryModel::ZeroDelay,
        matchgen: MatchGen::OverApprox,
        ..CheckConfig::default()
    };
    let trace_zd = generate_trace(&program, &zd);
    let ey = enumerate_matchings(&program, &trace_zd, &zd, 100);
    println!(
        "{}",
        bench::row(&[
            "Elwakil&Yang-style [2] (symbolic, no delays)".into(),
            "instant delivery".into(),
            ey.matchings.len().to_string(),
            format!("{} SMT checks", ey.sat_checks),
        ])
    );

    println!("\npairings detail (ground truth):");
    print!("{}", truth.render_matchings());
    println!("\nExpected (paper): delay-aware techniques find 2 pairings (Fig. 4a + 4b);");
    println!("MCC and the zero-delay encoding find only 1 (Fig. 4a).");
}
