//! Experiment harness crate: criterion benches live in `benches/`, the
//! per-figure experiment binaries in `src/bin/` (`exp_*`). See
//! `EXPERIMENTS.md` at the workspace root for the experiment index.

/// Format a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Format a markdown table header with separator.
pub fn header(cells: &[&str]) -> String {
    let head = format!("| {} |", cells.join(" | "));
    let sep = format!("|{}", "---|".repeat(cells.len()));
    format!("{head}\n{sep}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
        let h = header(&["x", "y"]);
        assert!(h.contains("| x | y |"));
        assert!(h.contains("|---|---|"));
    }
}
