//! E7 (solve side): SMT solving time for violation queries — SAT instances
//! (violation exists) and UNSAT instances (race-free pipelines/rings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcapi::types::DeliveryModel;
use smt::SatResult;
use symbolic::checker::{generate_trace, CheckConfig};
use symbolic::encode::{encode, EncodeOptions};
use symbolic::matchpairs::overapprox_match_pairs;
use workloads::race::race_with_winner_assert;
use workloads::{pipeline, ring};

fn solve_sat_race(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve/sat-race");
    for n in [3usize, 6, 10] {
        let program = race_with_winner_assert(n);
        let trace = generate_trace(&program, &CheckConfig::default());
        let pairs = overapprox_match_pairs(&program, &trace);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut enc = encode(
                    &program,
                    &trace,
                    &pairs,
                    EncodeOptions {
                        delivery: DeliveryModel::Unordered,
                        negate_props: true,
                        ..Default::default()
                    },
                );
                assert_eq!(enc.solver.check(), SatResult::Sat);
            })
        });
    }
    g.finish();
}

fn solve_unsat_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve/unsat-pipeline");
    for (stages, items) in [(3usize, 2usize), (4, 3), (5, 4)] {
        let program = pipeline(stages, items);
        let trace = generate_trace(&program, &CheckConfig::default());
        let pairs = overapprox_match_pairs(&program, &trace);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{stages}x{items}")),
            &(stages, items),
            |b, _| {
                b.iter(|| {
                    let mut enc = encode(
                        &program,
                        &trace,
                        &pairs,
                        EncodeOptions {
                            delivery: DeliveryModel::PairwiseFifo,
                            negate_props: true,
                            ..Default::default()
                        },
                    );
                    assert_eq!(enc.solver.check(), SatResult::Unsat);
                })
            },
        );
    }
    g.finish();
}

fn solve_unsat_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve/unsat-ring");
    for (n, laps) in [(3usize, 2usize), (4, 3), (5, 4)] {
        let program = ring(n, laps);
        let trace = generate_trace(&program, &CheckConfig::default());
        let pairs = overapprox_match_pairs(&program, &trace);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{laps}")),
            &(n, laps),
            |b, _| {
                b.iter(|| {
                    let mut enc = encode(
                        &program,
                        &trace,
                        &pairs,
                        EncodeOptions {
                            delivery: DeliveryModel::Unordered,
                            negate_props: true,
                            ..Default::default()
                        },
                    );
                    assert_eq!(enc.solver.check(), SatResult::Unsat);
                })
            },
        );
    }
    g.finish();
}

fn allsat_enumeration(c: &mut Criterion) {
    // Enumerating all n! matchings of a race via blocking clauses.
    let mut g = c.benchmark_group("solve/allsat-race");
    for n in [3usize, 4] {
        let program = workloads::race::race(n);
        let trace = generate_trace(&program, &CheckConfig::default());
        let pairs = overapprox_match_pairs(&program, &trace);
        let expect = (1..=n).product::<usize>();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut enc = encode(
                    &program,
                    &trace,
                    &pairs,
                    EncodeOptions {
                        delivery: DeliveryModel::Unordered,
                        negate_props: false,
                        ..Default::default()
                    },
                );
                let ids = enc.id_terms();
                let models = enc.solver.enumerate_models(&ids, 100_000);
                assert_eq!(models.len(), expect);
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    solve_sat_race,
    solve_unsat_pipeline,
    solve_unsat_ring,
    allsat_enumeration
);
criterion_main!(benches);
