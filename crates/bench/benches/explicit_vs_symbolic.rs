//! E5 (criterion form): end-to-end violation search — symbolic SMT check
//! vs explicit-state exploration, as the interleaving space grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use explicit::sleepset::SleepConfig;
use explicit::{ExploreConfig, GraphExplorer, SleepSetExplorer};
use mcapi::types::DeliveryModel;
use symbolic::checker::{check_program, CheckConfig, MatchGen, Verdict};
use workloads::race::race_with_winner_assert;

fn symbolic_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e/symbolic");
    g.sample_size(10);
    for n in [3usize, 5, 7] {
        let program = race_with_winner_assert(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = check_program(
                    &program,
                    &CheckConfig {
                        matchgen: MatchGen::OverApprox,
                        ..CheckConfig::default()
                    },
                );
                assert!(matches!(r.verdict, Verdict::Violation(_)));
            })
        });
    }
    g.finish();
}

fn explicit_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e/explicit-graph");
    g.sample_size(10);
    for n in [3usize, 5] {
        let program = race_with_winner_assert(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = GraphExplorer::new(
                    &program,
                    ExploreConfig::with_model(DeliveryModel::Unordered),
                )
                .explore();
                assert!(r.found_violation());
            })
        });
    }
    g.finish();
}

fn explicit_sleepset(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e/explicit-sleepset");
    g.sample_size(10);
    for n in [3usize, 5] {
        let program = race_with_winner_assert(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = SleepSetExplorer::new(&program, SleepConfig::default()).explore();
                assert!(r.found_violation());
            })
        });
    }
    g.finish();
}

fn explicit_first_violation(c: &mut Criterion) {
    // Explicit search that stops at the first violation (bug hunting mode,
    // the favourable case for explicit checkers).
    let mut g = c.benchmark_group("e2e/explicit-first-violation");
    g.sample_size(10);
    for n in [3usize, 5, 7] {
        let program = race_with_winner_assert(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cfg = ExploreConfig::with_model(DeliveryModel::Unordered);
                cfg.stop_at_first_violation = true;
                cfg.track_matchings = false;
                let r = GraphExplorer::new(&program, cfg).explore();
                assert!(r.found_violation());
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    symbolic_check,
    explicit_graph,
    explicit_sleepset,
    explicit_first_violation
);
criterion_main!(benches);
