//! E7 (encode side): formula construction cost and size vs trace length,
//! across the workload families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcapi::types::DeliveryModel;
use symbolic::checker::{generate_trace, CheckConfig};
use symbolic::encode::{encode, EncodeOptions};
use symbolic::matchpairs::overapprox_match_pairs;
use workloads::race::race;
use workloads::{pipeline, ring, scatter};

fn encode_race(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode/race");
    for n in [2usize, 4, 8, 12] {
        let program = race(n);
        let trace = generate_trace(&program, &CheckConfig::default());
        let pairs = overapprox_match_pairs(&program, &trace);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                encode(
                    &program,
                    &trace,
                    &pairs,
                    EncodeOptions {
                        delivery: DeliveryModel::Unordered,
                        negate_props: false,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

fn encode_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode/pipeline");
    for (stages, items) in [(3usize, 2usize), (4, 4), (6, 6)] {
        let program = pipeline(stages, items);
        let trace = generate_trace(&program, &CheckConfig::default());
        let pairs = overapprox_match_pairs(&program, &trace);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{stages}x{items}")),
            &(stages, items),
            |b, _| {
                b.iter(|| {
                    encode(
                        &program,
                        &trace,
                        &pairs,
                        EncodeOptions {
                            delivery: DeliveryModel::PairwiseFifo,
                            negate_props: true,
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    g.finish();
}

fn encode_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode/ring");
    for (n, laps) in [(3usize, 2usize), (4, 4), (6, 5)] {
        let program = ring(n, laps);
        let trace = generate_trace(&program, &CheckConfig::default());
        let pairs = overapprox_match_pairs(&program, &trace);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{laps}")),
            &(n, laps),
            |b, _| {
                b.iter(|| {
                    encode(
                        &program,
                        &trace,
                        &pairs,
                        EncodeOptions {
                            delivery: DeliveryModel::Unordered,
                            negate_props: true,
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    g.finish();
}

fn encode_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode/scatter");
    for w in [2usize, 4, 8] {
        let program = scatter(w);
        let trace = generate_trace(&program, &CheckConfig::default());
        let pairs = overapprox_match_pairs(&program, &trace);
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| {
                encode(
                    &program,
                    &trace,
                    &pairs,
                    EncodeOptions {
                        delivery: DeliveryModel::Unordered,
                        negate_props: true,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    encode_race,
    encode_pipeline,
    encode_ring,
    encode_scatter
);
criterion_main!(benches);
