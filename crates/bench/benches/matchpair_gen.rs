//! E2 (criterion form): precise DFS vs endpoint over-approximation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcapi::types::DeliveryModel;
use symbolic::checker::{generate_trace, CheckConfig};
use symbolic::matchpairs::{overapprox_match_pairs, precise_match_pairs};
use workloads::race::race;
use workloads::scatter;

fn precise_race(c: &mut Criterion) {
    let mut g = c.benchmark_group("matchpairs/precise-race");
    g.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        let program = race(n);
        let trace = generate_trace(&program, &CheckConfig::default());
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| precise_match_pairs(&program, &trace, DeliveryModel::Unordered))
        });
    }
    g.finish();
}

fn overapprox_race(c: &mut Criterion) {
    let mut g = c.benchmark_group("matchpairs/overapprox-race");
    for n in [2usize, 5, 10, 20] {
        let program = race(n);
        let trace = generate_trace(&program, &CheckConfig::default());
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| overapprox_match_pairs(&program, &trace))
        });
    }
    g.finish();
}

fn precise_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("matchpairs/precise-scatter");
    g.sample_size(10);
    for w in [2usize, 3] {
        let program = scatter(w);
        let trace = generate_trace(&program, &CheckConfig::default());
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| precise_match_pairs(&program, &trace, DeliveryModel::Unordered))
        });
    }
    g.finish();
}

criterion_group!(benches, precise_race, overapprox_race, precise_scatter);
criterion_main!(benches);
