//! E6: SMT-core microbenchmarks — the solver substrate that stands in for
//! Yices. Pigeonhole CNF (hard UNSAT), difference-logic chains/diamonds,
//! and scheduling lattices shaped like the encoder's output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smt::sat::{SatSolver, SolveResult};
use smt::{SatResult, SmtSolver};

fn pigeonhole(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt/pigeonhole");
    for n in [5usize, 6, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = SatSolver::new_pure();
                let holes = n - 1;
                let x: Vec<Vec<_>> = (0..n)
                    .map(|_| (0..holes).map(|_| s.new_var()).collect())
                    .collect();
                for row in &x {
                    let clause: Vec<_> = row.iter().map(|v| v.pos()).collect();
                    s.add_clause(&clause);
                }
                for (i, row_a) in x.iter().enumerate() {
                    for row_b in &x[i + 1..] {
                        for (a, b) in row_a.iter().zip(row_b) {
                            s.add_clause(&[a.neg(), b.neg()]);
                        }
                    }
                }
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
    }
    g.finish();
}

fn idl_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt/idl-chain");
    for n in [50usize, 200, 800] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                // x0 < x1 < ... < x_{n-1}, then close the cycle: UNSAT.
                let mut s = SmtSolver::new();
                let vars: Vec<_> = (0..n).map(|i| s.int_var(format!("x{i}"))).collect();
                for w in vars.windows(2) {
                    let t = s.lt(w[0], w[1]);
                    s.assert_term(t);
                }
                assert_eq!(s.check(), SatResult::Sat);
                let t = s.lt(vars[n - 1], vars[0]);
                s.assert_term(t);
                assert_eq!(s.check(), SatResult::Unsat);
            })
        });
    }
    g.finish();
}

fn idl_diamonds(c: &mut Criterion) {
    // Stacked diamonds with a disjunctive choice per layer: classic
    // DPLL(T) stress (Boolean search interleaved with theory checks).
    let mut g = c.benchmark_group("smt/idl-diamonds");
    for n in [10usize, 20, 40] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = SmtSolver::new();
                let mut prev = s.int_var("v0");
                for i in 0..n {
                    let left = s.int_var(format!("l{i}"));
                    let right = s.int_var(format!("r{i}"));
                    let next = s.int_var(format!("v{}", i + 1));
                    // prev < left < next  OR  prev < right < next
                    let a1 = s.lt(prev, left);
                    let a2 = s.lt(left, next);
                    let left_path = s.and2(a1, a2);
                    let b1 = s.lt(prev, right);
                    let b2 = s.lt(right, next);
                    let right_path = s.and2(b1, b2);
                    let t = s.or2(left_path, right_path);
                    s.assert_term(t);
                    prev = next;
                }
                assert_eq!(s.check(), SatResult::Sat);
            })
        });
    }
    g.finish();
}

fn scheduling_lattice(c: &mut Criterion) {
    // The encoder's shape: k racing "sends" matched by k "recvs" with
    // uniqueness — the SMT core must count permutations implicitly.
    let mut g = c.benchmark_group("smt/match-lattice");
    for k in [3usize, 5, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut s = SmtSolver::new();
                let send_clk: Vec<_> = (0..k).map(|i| s.int_var(format!("s{i}"))).collect();
                let recv_clk: Vec<_> = (0..k).map(|i| s.int_var(format!("r{i}"))).collect();
                let ids: Vec<_> = (0..k).map(|i| s.int_var(format!("id{i}"))).collect();
                for r in 0..k {
                    let mut opts = Vec::new();
                    for (snd, &sc) in send_clk.iter().enumerate() {
                        let before = s.lt(sc, recv_clk[r]);
                        let bind = s.eq_const(ids[r], snd as i64);
                        opts.push(s.and2(before, bind));
                    }
                    let any = s.or(opts);
                    s.assert_term(any);
                }
                for i in 0..k {
                    for j in (i + 1)..k {
                        let d = s.ne(ids[i], ids[j]);
                        s.assert_term(d);
                    }
                }
                assert_eq!(s.check(), SatResult::Sat);
            })
        });
    }
    g.finish();
}

fn idl_ablation(c: &mut Criterion) {
    // DESIGN.md §6.1 ablation: incremental potential maintenance
    // (Cotton–Maler style) vs eager Bellman–Ford re-check per assertion.
    use smt::atom::DiffAtom;
    use smt::idl::Idl;
    use smt::idl_naive::NaiveIdl;
    use smt::lit::Var;
    use smt::sat::Theory;

    let mut g = c.benchmark_group("smt/idl-ablation");
    for n in [100usize, 400] {
        // A long consistent chain x0 < x1 < … < xn asserted edge by edge.
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = Idl::new();
                for i in 0..n as u32 {
                    let atom = DiffAtom {
                        x: i + 2,
                        y: i + 1,
                        c: -1,
                    };
                    t.register_atom(Var(i), atom);
                    t.assert_true(Var(i).pos()).unwrap();
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("naive-bellman-ford", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = NaiveIdl::new();
                for i in 0..n as u32 {
                    let atom = DiffAtom {
                        x: i + 2,
                        y: i + 1,
                        c: -1,
                    };
                    t.register_atom(Var(i), atom);
                    t.assert_true(Var(i).pos()).unwrap();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    pigeonhole,
    idl_chain,
    idl_diamonds,
    scheduling_lattice,
    idl_ablation
);
criterion_main!(benches);
