//! Counters reported by the SAT core and theory solver.

/// Search statistics, cheap to copy and print.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Decisions made.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Conflicts encountered (Boolean + theory).
    pub conflicts: u64,
    /// Conflicts reported by the theory solver.
    pub theory_conflicts: u64,
    /// Literals asserted into the theory solver.
    pub theory_assertions: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses currently in the database.
    pub learnt_clauses: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Literals removed by conflict-clause minimisation.
    pub minimized_lits: u64,
    /// Problem clauses added.
    pub clauses_added: u64,
    /// `solve` calls answered (SAT checks).
    pub solves: u64,
}

impl Stats {
    /// Merge counters from another run (used by portfolio mode).
    pub fn merge(&mut self, other: &Stats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.theory_conflicts += other.theory_conflicts;
        self.theory_assertions += other.theory_assertions;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.deleted_clauses += other.deleted_clauses;
        self.minimized_lits += other.minimized_lits;
        self.clauses_added += other.clauses_added;
        self.solves += other.solves;
    }

    /// Counters accumulated since `baseline` was snapshotted (solver stats
    /// are monotone, so this is a per-phase delta for session reuse
    /// reporting). Saturates rather than underflows if the snapshots are
    /// swapped.
    pub fn delta(&self, baseline: &Stats) -> Stats {
        Stats {
            decisions: self.decisions.saturating_sub(baseline.decisions),
            propagations: self.propagations.saturating_sub(baseline.propagations),
            conflicts: self.conflicts.saturating_sub(baseline.conflicts),
            theory_conflicts: self
                .theory_conflicts
                .saturating_sub(baseline.theory_conflicts),
            theory_assertions: self
                .theory_assertions
                .saturating_sub(baseline.theory_assertions),
            restarts: self.restarts.saturating_sub(baseline.restarts),
            learnt_clauses: self.learnt_clauses.saturating_sub(baseline.learnt_clauses),
            deleted_clauses: self
                .deleted_clauses
                .saturating_sub(baseline.deleted_clauses),
            minimized_lits: self.minimized_lits.saturating_sub(baseline.minimized_lits),
            clauses_added: self.clauses_added.saturating_sub(baseline.clauses_added),
            solves: self.solves.saturating_sub(baseline.solves),
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} (theory {}) restarts={} learnt={} deleted={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.theory_conflicts,
            self.restarts,
            self.learnt_clauses,
            self.deleted_clauses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Stats {
            decisions: 1,
            conflicts: 2,
            ..Default::default()
        };
        let b = Stats {
            decisions: 10,
            conflicts: 20,
            restarts: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.decisions, 11);
        assert_eq!(a.conflicts, 22);
        assert_eq!(a.restarts, 3);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = Stats {
            decisions: 5,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("decisions=5"));
        assert!(text.contains("conflicts="));
    }
}
