//! Counters reported by the SAT core and theory solver.

use serde::{Deserialize, Serialize};

/// Search statistics, cheap to copy and print.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Stats {
    /// Decisions made.
    #[serde(default)]
    pub decisions: u64,
    /// Unit propagations performed.
    #[serde(default)]
    pub propagations: u64,
    /// Conflicts encountered (Boolean + theory).
    #[serde(default)]
    pub conflicts: u64,
    /// Conflicts reported by the theory solver.
    #[serde(default)]
    pub theory_conflicts: u64,
    /// Literals asserted into the theory solver.
    #[serde(default)]
    pub theory_assertions: u64,
    /// Restarts performed.
    #[serde(default)]
    pub restarts: u64,
    /// Restarts suppressed by the trail-growth blocker.
    #[serde(default)]
    pub blocked_restarts: u64,
    /// Learned-clause database reductions performed.
    #[serde(default)]
    pub reduces: u64,
    /// Learned clauses currently in the database.
    #[serde(default)]
    pub learnt_clauses: u64,
    /// Learned clauses produced over the solver's lifetime.
    #[serde(default)]
    pub learned_total: u64,
    /// Sum of learned-clause LBDs (so `sum_lbd / learned_total` is the
    /// slow glue average the restart policy compares against).
    #[serde(default)]
    pub sum_lbd: u64,
    /// Learned clauses deleted by database reduction.
    #[serde(default)]
    pub deleted_clauses: u64,
    /// Literals removed by conflict-clause minimisation.
    #[serde(default)]
    pub minimized_lits: u64,
    /// Problem clauses added.
    #[serde(default)]
    pub clauses_added: u64,
    /// `solve` calls answered (SAT checks).
    #[serde(default)]
    pub solves: u64,
    /// Assumption scopes pushed (session reuse opens one per query).
    #[serde(default)]
    pub scope_pushes: u64,
}

impl Stats {
    /// Merge counters from another run (used by portfolio mode).
    pub fn merge(&mut self, other: &Stats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.theory_conflicts += other.theory_conflicts;
        self.theory_assertions += other.theory_assertions;
        self.restarts += other.restarts;
        self.blocked_restarts += other.blocked_restarts;
        self.reduces += other.reduces;
        self.learnt_clauses += other.learnt_clauses;
        self.learned_total += other.learned_total;
        self.sum_lbd += other.sum_lbd;
        self.deleted_clauses += other.deleted_clauses;
        self.minimized_lits += other.minimized_lits;
        self.clauses_added += other.clauses_added;
        self.solves += other.solves;
        self.scope_pushes += other.scope_pushes;
    }

    /// Counters accumulated since `baseline` was snapshotted (solver stats
    /// are monotone, so this is a per-phase delta for session reuse
    /// reporting). Saturates rather than underflows if the snapshots are
    /// swapped.
    pub fn delta(&self, baseline: &Stats) -> Stats {
        Stats {
            decisions: self.decisions.saturating_sub(baseline.decisions),
            propagations: self.propagations.saturating_sub(baseline.propagations),
            conflicts: self.conflicts.saturating_sub(baseline.conflicts),
            theory_conflicts: self
                .theory_conflicts
                .saturating_sub(baseline.theory_conflicts),
            theory_assertions: self
                .theory_assertions
                .saturating_sub(baseline.theory_assertions),
            restarts: self.restarts.saturating_sub(baseline.restarts),
            blocked_restarts: self
                .blocked_restarts
                .saturating_sub(baseline.blocked_restarts),
            reduces: self.reduces.saturating_sub(baseline.reduces),
            learnt_clauses: self.learnt_clauses.saturating_sub(baseline.learnt_clauses),
            learned_total: self.learned_total.saturating_sub(baseline.learned_total),
            sum_lbd: self.sum_lbd.saturating_sub(baseline.sum_lbd),
            deleted_clauses: self
                .deleted_clauses
                .saturating_sub(baseline.deleted_clauses),
            minimized_lits: self.minimized_lits.saturating_sub(baseline.minimized_lits),
            clauses_added: self.clauses_added.saturating_sub(baseline.clauses_added),
            solves: self.solves.saturating_sub(baseline.solves),
            scope_pushes: self.scope_pushes.saturating_sub(baseline.scope_pushes),
        }
    }

    /// Report every counter into `reg` under the crate's stable metric
    /// names (`mcapi_smt_*_total`), tagged with `labels`. The SMT layer
    /// owns these names: renaming one here is an observability API change,
    /// not format drift.
    pub fn record(&self, reg: &mut metrics::Registry, labels: &[(&str, &str)]) {
        let mut c = |name: &str, help: &str, v: u64| reg.counter_add(name, help, labels, v);
        c(
            "mcapi_smt_decisions_total",
            "SAT decisions made",
            self.decisions,
        );
        c(
            "mcapi_smt_propagations_total",
            "Unit propagations performed",
            self.propagations,
        );
        c(
            "mcapi_smt_conflicts_total",
            "Conflicts encountered (Boolean + theory)",
            self.conflicts,
        );
        c(
            "mcapi_smt_theory_conflicts_total",
            "Conflicts reported by the theory solver",
            self.theory_conflicts,
        );
        c(
            "mcapi_smt_theory_assertions_total",
            "Literals asserted into the theory solver",
            self.theory_assertions,
        );
        c(
            "mcapi_smt_restarts_total",
            "Restarts performed",
            self.restarts,
        );
        c(
            "mcapi_smt_blocked_restarts_total",
            "Restarts suppressed by the trail-growth blocker",
            self.blocked_restarts,
        );
        c(
            "mcapi_smt_reduces_total",
            "Learned-clause database reductions",
            self.reduces,
        );
        c(
            "mcapi_smt_learned_clauses_total",
            "Learned clauses produced",
            self.learned_total,
        );
        c(
            "mcapi_smt_deleted_clauses_total",
            "Learned clauses deleted by database reduction",
            self.deleted_clauses,
        );
        c(
            "mcapi_smt_minimized_literals_total",
            "Literals removed by conflict-clause minimisation",
            self.minimized_lits,
        );
        c(
            "mcapi_smt_clauses_added_total",
            "Problem clauses added",
            self.clauses_added,
        );
        c(
            "mcapi_smt_solves_total",
            "solve calls answered (SAT checks)",
            self.solves,
        );
        c(
            "mcapi_smt_scope_pushes_total",
            "Assumption scopes pushed",
            self.scope_pushes,
        );
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} (theory {}) restarts={} (blocked {}) learnt={} deleted={} reduces={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.theory_conflicts,
            self.restarts,
            self.blocked_restarts,
            self.learnt_clauses,
            self.deleted_clauses,
            self.reduces,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Stats {
            decisions: 1,
            conflicts: 2,
            ..Default::default()
        };
        let b = Stats {
            decisions: 10,
            conflicts: 20,
            restarts: 3,
            scope_pushes: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.decisions, 11);
        assert_eq!(a.conflicts, 22);
        assert_eq!(a.restarts, 3);
        assert_eq!(a.scope_pushes, 4);
    }

    #[test]
    fn delta_covers_restart_and_reduction_counters() {
        let base = Stats {
            restarts: 2,
            blocked_restarts: 1,
            reduces: 1,
            learned_total: 10,
            sum_lbd: 30,
            scope_pushes: 5,
            ..Default::default()
        };
        let now = Stats {
            restarts: 5,
            blocked_restarts: 4,
            reduces: 2,
            learned_total: 25,
            sum_lbd: 80,
            scope_pushes: 9,
            ..Default::default()
        };
        let d = now.delta(&base);
        assert_eq!(d.restarts, 3);
        assert_eq!(d.blocked_restarts, 3);
        assert_eq!(d.reduces, 1);
        assert_eq!(d.learned_total, 15);
        assert_eq!(d.sum_lbd, 50);
        assert_eq!(d.scope_pushes, 4);
        // Swapped snapshots saturate instead of underflowing.
        assert_eq!(base.delta(&now).sum_lbd, 0);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = Stats {
            decisions: 5,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("decisions=5"));
        assert!(text.contains("conflicts="));
    }

    #[test]
    fn json_roundtrip_preserves_counters() {
        let s = Stats {
            conflicts: 7,
            propagations: 11,
            scope_pushes: 3,
            ..Default::default()
        };
        let v = serde::Serialize::to_value(&s);
        let back: Stats = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back.conflicts, 7);
        assert_eq!(back.propagations, 11);
        assert_eq!(back.scope_pushes, 3);
    }

    #[test]
    fn record_reports_stable_metric_names() {
        let s = Stats {
            conflicts: 2,
            propagations: 6,
            scope_pushes: 1,
            ..Default::default()
        };
        let mut reg = metrics::Registry::new();
        s.record(&mut reg, &[("engine", "symbolic")]);
        s.record(&mut reg, &[("engine", "symbolic")]);
        assert_eq!(
            reg.counter_value("mcapi_smt_conflicts_total", &[("engine", "symbolic")]),
            Some(4)
        );
        assert_eq!(
            reg.counter_value("mcapi_smt_scope_pushes_total", &[("engine", "symbolic")]),
            Some(2)
        );
    }
}
