//! Indexed max-heap ordered by VSIDS activity, used for decision selection.
//!
//! Supports `O(log n)` insert/remove-max and, crucially, `O(log n)`
//! *increase-key* when a variable's activity is bumped while it sits in the
//! heap — the operation a plain `BinaryHeap` cannot do.

use crate::lit::Var;

/// Max-heap over variables keyed by an external activity array.
#[derive(Default)]
pub struct VarHeap {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `NOT_IN` if absent.
    pos: Vec<u32>,
}

const NOT_IN: u32 = u32::MAX;

impl VarHeap {
    pub fn new() -> Self {
        VarHeap {
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Ensure capacity for variables `0..n`.
    pub fn grow_to(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, NOT_IN);
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).is_some_and(|&p| p != NOT_IN)
    }

    /// Insert a variable (no-op if present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow_to(v.index() + 1);
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v.0);
        self.pos[v.index()] = i as u32;
        self.sift_up(i, activity);
    }

    /// The variable with maximal activity, without removing it. Used by
    /// reused-trail restarts to compare the best pending decision against
    /// the decisions already on the trail.
    pub fn peek(&self) -> Option<Var> {
        self.heap.first().map(|&v| Var(v))
    }

    /// Remove and return the variable with maximal activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = NOT_IN;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restore heap order for `v` after its activity increased.
    pub fn decrease_key_after_bump(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != NOT_IN {
                self.sift_up(p as usize, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] > act[self.heap[parent] as usize] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = VarHeap::new();
        for i in 0..5u32 {
            h.insert(Var(i), &act);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&act))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let act = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.insert(Var(0), &act);
        h.insert(Var(0), &act);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn reinsert_after_pop() {
        let act = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.insert(Var(0), &act);
        h.insert(Var(1), &act);
        assert_eq!(h.pop_max(&act), Some(Var(1)));
        assert!(!h.contains(Var(1)));
        h.insert(Var(1), &act);
        assert!(h.contains(Var(1)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn bump_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for i in 0..3u32 {
            h.insert(Var(i), &act);
        }
        // Bump var 0 above everything.
        act[0] = 10.0;
        h.decrease_key_after_bump(Var(0), &act);
        assert_eq!(h.pop_max(&act), Some(Var(0)));
    }

    #[test]
    fn empty_pop_is_none() {
        let act: Vec<f64> = vec![];
        let mut h = VarHeap::new();
        assert_eq!(h.pop_max(&act), None);
        assert_eq!(h.peek(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn peek_matches_pop_without_removing() {
        let act = vec![1.0, 5.0, 3.0];
        let mut h = VarHeap::new();
        for i in 0..3u32 {
            h.insert(Var(i), &act);
        }
        assert_eq!(h.peek(), Some(Var(1)));
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop_max(&act), Some(Var(1)));
        assert_eq!(h.peek(), Some(Var(2)));
    }

    #[test]
    fn stress_against_sorted_order() {
        // Deterministic pseudo-random activities; popping must yield
        // non-increasing activities.
        let mut x = 123456789u64;
        let mut act = Vec::new();
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            act.push((x >> 16) as f64);
        }
        let mut h = VarHeap::new();
        for i in 0..200u32 {
            h.insert(Var(i), &act);
        }
        let mut prev = f64::INFINITY;
        while let Some(v) = h.pop_max(&act) {
            assert!(act[v.index()] <= prev);
            prev = act[v.index()];
        }
    }
}
