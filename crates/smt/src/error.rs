//! Error type shared across the solver stack.

use std::fmt;

/// Errors surfaced by the SMT front-end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmtError {
    /// An integer expression fell outside the difference-logic fragment
    /// (more than one positive or negative unit-coefficient variable).
    NotDifferenceLogic(String),
    /// A term of the wrong sort was used where a Boolean was expected.
    SortMismatch(String),
    /// DIMACS parse error (line, message).
    Dimacs(usize, String),
}

impl fmt::Display for SmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtError::NotDifferenceLogic(m) => write!(f, "not difference logic: {m}"),
            SmtError::SortMismatch(m) => write!(f, "sort mismatch: {m}"),
            SmtError::Dimacs(line, m) => write!(f, "dimacs parse error at line {line}: {m}"),
        }
    }
}

impl std::error::Error for SmtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SmtError::NotDifferenceLogic("x + y".into());
        assert!(e.to_string().contains("difference"));
        let e = SmtError::Dimacs(3, "bad header".into());
        assert!(e.to_string().contains("line 3"));
    }
}
