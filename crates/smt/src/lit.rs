//! Boolean variables, literals and three-valued assignments for the SAT core.

use std::fmt;
use std::ops::Not;

/// A Boolean (propositional) variable, numbered densely from zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Var(pub u32);

impl Var {
    /// Index of this variable for array-backed maps.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    #[allow(clippy::should_implement_trait)] // a constructor, not negation of self
    pub fn neg(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// Literal of this variable with the given sign (`true` = positive).
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.pos()
        } else {
            self.neg()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | sign`.
///
/// The low bit is the *sign*: `0` for the positive literal, `1` for the
/// negated literal, matching the MiniSat convention.
///
/// `repr(transparent)` is load-bearing: the clause arena stores literals
/// as raw `u32` words and reinterprets slices of them as `&[Lit]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(pub u32);

impl Lit {
    /// The variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the negated literal of its variable.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// `true` if this is the positive literal of its variable.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index for watch lists and other per-literal arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The truth value this literal demands of its variable.
    #[inline]
    pub fn demanded(self) -> bool {
        self.is_pos()
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "!v{}", self.var().0)
        } else {
            write!(f, "v{}", self.var().0)
        }
    }
}

/// Lifted Boolean: `True`, `False`, or `Undef` (unassigned).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    True,
    False,
    #[default]
    Undef,
}

impl LBool {
    /// Build from a concrete Boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `true` iff assigned (not `Undef`).
    #[inline]
    pub fn is_assigned(self) -> bool {
        !matches!(self, LBool::Undef)
    }

    /// Negate, leaving `Undef` fixed.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// XOR with a sign bit: `flip=true` negates, leaving `Undef` fixed.
    #[inline]
    pub fn xor(self, flip: bool) -> LBool {
        if flip {
            self.negate()
        } else {
            self
        }
    }

    /// Concrete value if assigned.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrips() {
        let v = Var(17);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_pos());
        assert!(v.neg().is_neg());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!v.neg(), v.pos());
        assert_eq!(!(!v.pos()), v.pos());
    }

    #[test]
    fn lit_with_sign() {
        let v = Var(3);
        assert_eq!(v.lit(true), v.pos());
        assert_eq!(v.lit(false), v.neg());
        assert!(v.pos().demanded());
        assert!(!v.neg().demanded());
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::from_bool(false), LBool::False);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::True.xor(false), LBool::True);
        assert_eq!(LBool::Undef.xor(true), LBool::Undef);
        assert_eq!(LBool::False.as_bool(), Some(false));
        assert_eq!(LBool::Undef.as_bool(), None);
        assert!(LBool::True.is_assigned());
        assert!(!LBool::Undef.is_assigned());
    }

    #[test]
    fn indices_are_dense() {
        assert_eq!(Var(0).pos().index(), 0);
        assert_eq!(Var(0).neg().index(), 1);
        assert_eq!(Var(1).pos().index(), 2);
        assert_eq!(Var(1).neg().index(), 3);
    }
}
