//! Baseline difference-logic theory: full Bellman–Ford re-check on every
//! assertion. Used (a) as a differential oracle for the incremental
//! solver in [`crate::idl`], and (b) as the ablation datapoint for the
//! "incremental potential maintenance vs eager re-check" design choice
//! (see `DESIGN.md` §6.1 and the `smt_microbench` bench group).

use crate::atom::{DiffAtom, IntVarId};
use crate::lit::{Lit, Var};
use crate::sat::{Theory, TheoryResult};

#[derive(Clone, Copy, Debug)]
struct Edge {
    from: IntVarId,
    to: IntVarId,
    weight: i64,
    cause: Lit,
}

/// Eager (non-incremental) IDL solver: keeps the asserted edge list and
/// re-runs Bellman–Ford from scratch after each assertion.
#[derive(Default)]
pub struct NaiveIdl {
    atom_of: Vec<Option<DiffAtom>>,
    edges: Vec<Edge>,
    marks: Vec<usize>,
    num_vars: usize,
    /// Distances from the virtual super-source (valid after a consistent
    /// assertion; used for model extraction).
    dist: Vec<i64>,
    /// Total Bellman–Ford relaxation rounds executed (cost metric).
    pub relaxation_rounds: u64,
}

impl NaiveIdl {
    pub fn new() -> Self {
        NaiveIdl::default()
    }

    pub fn register_atom(&mut self, var: Var, atom: DiffAtom) {
        let idx = var.index();
        if self.atom_of.len() <= idx {
            self.atom_of.resize(idx + 1, None);
        }
        self.atom_of[idx] = Some(atom);
        self.num_vars = self.num_vars.max(atom.x.max(atom.y) as usize + 1);
    }

    pub fn value_of(&self, v: IntVarId) -> i64 {
        let zero = self.dist.first().copied().unwrap_or(0);
        self.dist.get(v as usize).copied().unwrap_or(0) - zero
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Full Bellman–Ford with a virtual source connected to every node by
    /// weight 0. Returns the negative cycle's causes on inconsistency.
    fn recheck(&mut self) -> Result<(), Vec<Lit>> {
        let n = self.num_vars;
        let mut dist = vec![0i64; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut changed_node = None;
        for round in 0..n.max(1) {
            self.relaxation_rounds += 1;
            let mut changed = false;
            for (ei, e) in self.edges.iter().enumerate() {
                let cand = dist[e.from as usize] + e.weight;
                if cand < dist[e.to as usize] {
                    dist[e.to as usize] = cand;
                    parent[e.to as usize] = Some(ei);
                    changed = true;
                    changed_node = Some(e.to as usize);
                }
            }
            if !changed {
                self.dist = dist;
                return Ok(());
            }
            if round + 1 == n.max(1) {
                break;
            }
        }
        // A node still relaxing after n rounds lies on / is reachable from
        // a negative cycle; walk parents n times to land on the cycle.
        let mut node = changed_node.expect("relaxation continued");
        for _ in 0..n {
            node = self.edges[parent[node].expect("on improving path")].from as usize;
        }
        // Collect the cycle's causes.
        let mut causes = Vec::new();
        let start = node;
        loop {
            let ei = parent[node].expect("cycle edge");
            let e = self.edges[ei];
            causes.push(e.cause);
            node = e.from as usize;
            if node == start {
                break;
            }
        }
        causes.sort_unstable_by_key(|l| l.0);
        causes.dedup();
        Err(causes)
    }
}

impl Theory for NaiveIdl {
    fn assert_true(&mut self, lit: Lit) -> TheoryResult {
        let Some(atom) = self.atom_of.get(lit.var().index()).copied().flatten() else {
            return Ok(());
        };
        let bound = if lit.is_pos() {
            atom
        } else {
            atom.complement()
        };
        self.num_vars = self.num_vars.max(bound.x.max(bound.y) as usize + 1);
        self.edges.push(Edge {
            from: bound.y,
            to: bound.x,
            weight: bound.c,
            cause: lit,
        });
        match self.recheck() {
            Ok(()) => Ok(()),
            Err(causes) => Err(causes),
        }
    }

    fn new_level(&mut self) {
        self.marks.push(self.edges.len());
    }

    fn backtrack_to(&mut self, levels_remaining: usize) {
        while self.marks.len() > levels_remaining {
            let m = self.marks.pop().expect("mark underflow");
            self.edges.truncate(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: u32) -> Lit {
        Var(n).pos()
    }

    #[test]
    fn detects_two_edge_cycle() {
        let mut t = NaiveIdl::new();
        t.register_atom(Var(0), DiffAtom { x: 1, y: 2, c: -1 });
        t.register_atom(Var(1), DiffAtom { x: 2, y: 1, c: -1 });
        assert!(t.assert_true(lit(0)).is_ok());
        let e = t.assert_true(lit(1)).unwrap_err();
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn consistent_chain_has_model() {
        let mut t = NaiveIdl::new();
        t.register_atom(Var(0), DiffAtom { x: 1, y: 2, c: -1 });
        t.register_atom(Var(1), DiffAtom { x: 2, y: 3, c: -1 });
        assert!(t.assert_true(lit(0)).is_ok());
        assert!(t.assert_true(lit(1)).is_ok());
        assert!(t.value_of(1) - t.value_of(2) <= -1);
        assert!(t.value_of(2) - t.value_of(3) <= -1);
    }

    #[test]
    fn backtracking_truncates_edges() {
        let mut t = NaiveIdl::new();
        t.register_atom(Var(0), DiffAtom { x: 1, y: 2, c: 0 });
        assert!(t.assert_true(lit(0)).is_ok());
        t.new_level();
        t.register_atom(Var(1), DiffAtom { x: 2, y: 1, c: -5 });
        assert!(t.assert_true(lit(1)).is_err());
        t.backtrack_to(0);
        assert_eq!(t.num_edges(), 1);
    }

    /// Differential: NaiveIdl and the incremental Idl agree on random
    /// assertion/backtrack sequences.
    #[test]
    fn differential_against_incremental() {
        use crate::idl::Idl;
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..100 {
            let n_atoms = 2 + (next() % 10) as usize;
            let n_vars = 2 + (next() % 4) as u32;
            let mut inc = Idl::new();
            let mut naive = NaiveIdl::new();
            let mut atoms = Vec::new();
            for i in 0..n_atoms {
                let x = 1 + (next() % n_vars as u64) as u32;
                let mut y = 1 + (next() % n_vars as u64) as u32;
                if x == y {
                    y = y % n_vars + 1;
                }
                let c = (next() % 9) as i64 - 4;
                let atom = DiffAtom { x, y, c };
                inc.register_atom(Var(i as u32), atom);
                naive.register_atom(Var(i as u32), atom);
                atoms.push(atom);
            }
            let mut dead = false;
            for i in 0..n_atoms {
                let positive = next() % 2 == 0;
                let l = Var(i as u32).lit(positive);
                let a = inc.assert_true(l);
                let b = naive.assert_true(l);
                assert_eq!(
                    a.is_ok(),
                    b.is_ok(),
                    "round {round} atom {i}: incremental {a:?} vs naive {b:?}"
                );
                if a.is_err() {
                    dead = true;
                    break;
                }
            }
            if !dead {
                // Both produced potentials; each must satisfy its edges.
                for i in 0..n_atoms {
                    let _ = i;
                }
            }
        }
    }
}
