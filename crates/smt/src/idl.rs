//! Incremental integer difference logic (IDL) theory solver.
//!
//! Constraints are bounds `x - y <= c` over integer variables. Each asserted
//! bound is an edge `y --c--> x` in a constraint graph; the conjunction is
//! satisfiable iff the graph has no negative cycle. The solver maintains a
//! *potential function* `pi` with `pi(x) <= pi(y) + c` for every asserted
//! edge (a certificate of consistency). Asserting a new edge triggers an
//! incremental relaxation from the edge head (Cotton–Maler style); if the
//! relaxation wraps around to the edge tail with an improvement, the edge
//! closed a negative cycle and the cycle's assertion literals form the
//! theory conflict explanation handed back to the SAT core.
//!
//! Relaxation candidates are buffered and committed to `pi` only when no
//! conflict is found, so `pi` always remains a valid certificate for the
//! currently-asserted constraint set — including across backtracking, since
//! removing constraints can never invalidate a potential function.

use crate::atom::{DiffAtom, IntVarId};
use crate::lit::{Lit, Var};
use crate::sat::{Theory, TheoryResult};
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug)]
struct Edge {
    from: IntVarId,
    to: IntVarId,
    weight: i64,
    cause: Lit,
}

/// The difference-logic theory state.
pub struct Idl {
    /// Atom registered for each SAT variable (indexed by var).
    atom_of: Vec<Option<DiffAtom>>,
    /// Asserted edges, in assertion order (doubles as the theory trail).
    edges: Vec<Edge>,
    /// Outgoing edge ids per node; ids in each list are increasing, so LIFO
    /// edge removal pops from the tails.
    out: Vec<Vec<u32>>,
    /// Potential function: a model of the asserted constraints (up to shift).
    pi: Vec<i64>,
    /// Trail marks: edge count at each decision level.
    marks: Vec<usize>,
    // --- relaxation scratch (persistent to avoid reallocation) ---
    gamma: Vec<i64>,
    gamma_stamp: Vec<u32>,
    parent: Vec<u32>,
    stamp: u32,
    /// Total number of conflicts detected (stats).
    pub conflicts: u64,
    /// Total number of edges ever asserted (stats).
    pub asserted_edges: u64,
}

impl Default for Idl {
    fn default() -> Self {
        Self::new()
    }
}

impl Idl {
    pub fn new() -> Self {
        Idl {
            atom_of: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
            pi: Vec::new(),
            marks: Vec::new(),
            gamma: Vec::new(),
            gamma_stamp: Vec::new(),
            parent: Vec::new(),
            stamp: 0,
            conflicts: 0,
            asserted_edges: 0,
        }
    }

    /// Make sure nodes `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        if self.out.len() < n {
            self.out.resize_with(n, Vec::new);
            self.pi.resize(n, 0);
            self.gamma.resize(n, 0);
            self.gamma_stamp.resize(n, 0);
            self.parent.resize(n, u32::MAX);
        }
    }

    /// Associate a SAT variable with a difference atom. The positive literal
    /// asserts the atom, the negative literal asserts its complement.
    pub fn register_atom(&mut self, var: Var, atom: DiffAtom) {
        let idx = var.index();
        if self.atom_of.len() <= idx {
            self.atom_of.resize(idx + 1, None);
        }
        self.atom_of[idx] = Some(atom);
        self.ensure_vars(atom.x.max(atom.y) as usize + 1);
    }

    /// The atom registered for a SAT variable, if any.
    pub fn atom_for(&self, var: Var) -> Option<DiffAtom> {
        self.atom_of.get(var.index()).copied().flatten()
    }

    /// Model value of a node, normalised so the zero-node maps to 0.
    pub fn value_of(&self, v: IntVarId) -> i64 {
        let zero = self.pi.first().copied().unwrap_or(0);
        self.pi.get(v as usize).copied().unwrap_or(0) - zero
    }

    /// Number of currently asserted edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Assert `to - from <= weight` (edge `from -> to`). On conflict the
    /// explanation contains the causes of every edge on the negative cycle.
    fn assert_edge(
        &mut self,
        from: IntVarId,
        to: IntVarId,
        weight: i64,
        cause: Lit,
    ) -> TheoryResult {
        self.ensure_vars(from.max(to) as usize + 1);
        self.asserted_edges += 1;
        let id = self.edges.len() as u32;
        self.edges.push(Edge {
            from,
            to,
            weight,
            cause,
        });
        self.out[from as usize].push(id);

        if self.pi[to as usize] <= self.pi[from as usize] + weight {
            return Ok(()); // potential already certifies the new edge
        }

        // Incremental relaxation from `to`, buffered in gamma.
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: invalidate all entries the slow way.
            for s in &mut self.gamma_stamp {
                *s = u32::MAX;
            }
            self.stamp = 1;
        }
        let stamp = self.stamp;
        let mut improved: Vec<IntVarId> = Vec::new();
        let mut queue: VecDeque<IntVarId> = VecDeque::new();

        self.gamma[to as usize] = self.pi[from as usize] + weight;
        self.gamma_stamp[to as usize] = stamp;
        self.parent[to as usize] = id;
        improved.push(to);
        queue.push_back(to);

        while let Some(s) = queue.pop_front() {
            let gs = self.gamma[s as usize];
            if self.gamma_stamp[s as usize] != stamp || gs >= self.pi[s as usize] {
                continue; // stale or no longer improving
            }
            for &eid in &self.out[s as usize] {
                let e = self.edges[eid as usize];
                let cand = gs + e.weight;
                let t = e.to;
                let current = if self.gamma_stamp[t as usize] == stamp {
                    self.gamma[t as usize].min(self.pi[t as usize])
                } else {
                    self.pi[t as usize]
                };
                if cand < current {
                    if t == from {
                        // Negative cycle closed: from --(new edge)--> to
                        // --...--> s --(e)--> from. Collect causes.
                        self.conflicts += 1;
                        let mut explanation = vec![e.cause];
                        let mut node = s;
                        loop {
                            let pe = self.edges[self.parent[node as usize] as usize];
                            explanation.push(pe.cause);
                            if pe.from == from && self.parent[node as usize] == id {
                                break;
                            }
                            node = pe.from;
                        }
                        explanation.sort_unstable_by_key(|l| l.0);
                        explanation.dedup();
                        return Err(explanation);
                    }
                    if self.gamma_stamp[t as usize] != stamp {
                        improved.push(t);
                    }
                    self.gamma[t as usize] = cand;
                    self.gamma_stamp[t as usize] = stamp;
                    self.parent[t as usize] = eid;
                    queue.push_back(t);
                }
            }
            // Mark the buffered value as the best-known for `s` so repeat
            // visits in this round see it; committed after the loop.
        }

        // No conflict: commit improvements.
        for v in improved {
            if self.gamma_stamp[v as usize] == self.stamp {
                let g = self.gamma[v as usize];
                if g < self.pi[v as usize] {
                    self.pi[v as usize] = g;
                }
            }
        }
        debug_assert!(self.check_potential_valid());
        Ok(())
    }

    /// Debug check: `pi` certifies every asserted edge.
    fn check_potential_valid(&self) -> bool {
        self.edges
            .iter()
            .all(|e| self.pi[e.to as usize] <= self.pi[e.from as usize] + e.weight)
    }
}

impl Theory for Idl {
    fn assert_true(&mut self, lit: Lit) -> TheoryResult {
        let Some(atom) = self.atom_for(lit.var()) else {
            return Ok(()); // not a theory literal
        };
        let bound = if lit.is_pos() {
            atom
        } else {
            atom.complement()
        };
        // x - y <= c  ==>  edge y --c--> x.
        self.assert_edge(bound.y, bound.x, bound.c, lit)
    }

    fn new_level(&mut self) {
        self.marks.push(self.edges.len());
    }

    fn backtrack_to(&mut self, levels_remaining: usize) {
        while self.marks.len() > levels_remaining {
            let mark = self.marks.pop().expect("mark underflow");
            while self.edges.len() > mark {
                let e = self.edges.pop().expect("edge underflow");
                let popped = self.out[e.from as usize].pop();
                debug_assert_eq!(popped, Some(self.edges.len() as u32));
            }
        }
        // `pi` still certifies the remaining (smaller) edge set: removing
        // constraints never invalidates a potential function.
        debug_assert!(self.check_potential_valid());
    }

    fn value_hint(&self, v: Var) -> Option<bool> {
        // Evaluate the atom under the potential function — the same integer
        // model `value_of` reports — so don't-care atoms completed with this
        // value agree with the clock values a witness is decoded from.
        let atom = self.atom_for(v)?;
        Some(self.value_of(atom.x) - self.value_of(atom.y) <= atom.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::ZERO_VAR;

    fn lit(n: u32) -> Lit {
        Var(n).pos()
    }

    /// Directly drive assert_edge for graph-level tests.
    fn edge(idl: &mut Idl, from: u32, to: u32, w: i64, cause: u32) -> TheoryResult {
        idl.assert_edge(from, to, w, lit(cause))
    }

    #[test]
    fn consistent_chain() {
        let mut idl = Idl::new();
        // x1 - x2 <= -1, x2 - x3 <= -1  (x1 < x2 < x3): no cycle.
        assert!(edge(&mut idl, 2, 1, -1, 0).is_ok());
        assert!(edge(&mut idl, 3, 2, -1, 1).is_ok());
        // Values must satisfy both constraints.
        let v1 = idl.value_of(1);
        let v2 = idl.value_of(2);
        let v3 = idl.value_of(3);
        assert!(v1 - v2 <= -1, "{v1} {v2}");
        assert!(v2 - v3 <= -1, "{v2} {v3}");
    }

    #[test]
    fn two_edge_negative_cycle() {
        let mut idl = Idl::new();
        // x - y <= -1 and y - x <= -1: negative cycle.
        assert!(edge(&mut idl, 2, 1, -1, 0).is_ok());
        let r = edge(&mut idl, 1, 2, -1, 1);
        let expl = r.unwrap_err();
        assert_eq!(expl.len(), 2);
        assert!(expl.contains(&lit(0)));
        assert!(expl.contains(&lit(1)));
    }

    #[test]
    fn long_cycle_explanation_is_exact() {
        let mut idl = Idl::new();
        // Chain x1 < x2 < x3 < x4 plus x4 < x1 closes a cycle; an unrelated
        // edge must not appear in the explanation.
        assert!(edge(&mut idl, 1, 5, 100, 9).is_ok()); // unrelated
        assert!(edge(&mut idl, 1, 2, -1, 0).is_ok()); // x2 - x1 <= -1: x2 <= x1 - 1
        assert!(edge(&mut idl, 2, 3, -1, 1).is_ok());
        assert!(edge(&mut idl, 3, 4, -1, 2).is_ok());
        let r = edge(&mut idl, 4, 1, -1, 3);
        let expl = r.unwrap_err();
        assert_eq!(expl.len(), 4, "{expl:?}");
        for c in 0..4 {
            assert!(expl.contains(&lit(c)), "missing cause {c} in {expl:?}");
        }
        assert!(
            !expl.contains(&lit(9)),
            "unrelated edge leaked into explanation"
        );
    }

    #[test]
    fn zero_cycle_is_consistent() {
        let mut idl = Idl::new();
        // x - y <= 0 and y - x <= 0 (x == y): fine.
        assert!(edge(&mut idl, 2, 1, 0, 0).is_ok());
        assert!(edge(&mut idl, 1, 2, 0, 1).is_ok());
        assert_eq!(idl.value_of(1), idl.value_of(2));
    }

    #[test]
    fn bounds_against_zero_var() {
        let mut idl = Idl::new();
        // x <= 5  (x - zero <= 5), x >= 3 (zero - x <= -3).
        assert!(edge(&mut idl, ZERO_VAR, 1, 5, 0).is_ok());
        assert!(edge(&mut idl, 1, ZERO_VAR, -3, 1).is_ok());
        let v = idl.value_of(1);
        assert!((3..=5).contains(&v), "{v}");
        // x <= 2 now contradicts x >= 3.
        let r = edge(&mut idl, ZERO_VAR, 1, 2, 2);
        let expl = r.unwrap_err();
        assert!(expl.contains(&lit(1)));
        assert!(expl.contains(&lit(2)));
        assert!(
            !expl.contains(&lit(0)),
            "upper bound x<=5 is not part of the conflict"
        );
    }

    #[test]
    fn backtracking_restores_consistency() {
        let mut idl = Idl::new();
        assert!(edge(&mut idl, 2, 1, -1, 0).is_ok());
        idl.new_level();
        assert!(edge(&mut idl, 3, 2, -1, 1).is_ok());
        idl.new_level();
        let r = edge(&mut idl, 1, 3, -5, 2); // closes negative cycle
        assert!(r.is_err());
        // The SAT core pops the level containing the bad edge…
        idl.backtrack_to(1);
        assert_eq!(idl.num_edges(), 2);
        // …after which a compatible edge is accepted.
        assert!(edge(&mut idl, 1, 3, 5, 3).is_ok());
        idl.backtrack_to(0);
        assert_eq!(idl.num_edges(), 1);
    }

    #[test]
    fn failed_assert_leaves_valid_potential() {
        let mut idl = Idl::new();
        assert!(edge(&mut idl, 1, 2, -3, 0).is_ok());
        assert!(edge(&mut idl, 2, 3, -3, 1).is_ok());
        idl.new_level();
        let r = edge(&mut idl, 3, 1, 1, 2); // cycle weight -5: conflict
        assert!(r.is_err());
        idl.backtrack_to(0);
        // pi must still certify the surviving edges (checked by the
        // debug_assert inside, but verify observable values too).
        let v1 = idl.value_of(1);
        let v2 = idl.value_of(2);
        let v3 = idl.value_of(3);
        assert!(v2 - v1 <= -3);
        assert!(v3 - v2 <= -3);
    }

    #[test]
    fn atom_registration_and_polarity() {
        let mut idl = Idl::new();
        let v = Var(7);
        // atom: x1 - x2 <= -1  (x1 < x2)
        idl.register_atom(v, DiffAtom { x: 1, y: 2, c: -1 });
        assert_eq!(idl.atom_for(v), Some(DiffAtom { x: 1, y: 2, c: -1 }));
        assert_eq!(idl.atom_for(Var(99)), None);
        // Assert the positive literal: x1 < x2 holds.
        assert!(idl.assert_true(v.pos()).is_ok());
        assert!(idl.value_of(1) < idl.value_of(2));
    }

    #[test]
    fn negative_literal_asserts_complement() {
        let mut idl = Idl::new();
        let v = Var(3);
        // atom: x1 - x2 <= -1 (x1 < x2); negation: x2 - x1 <= 0 (x2 <= x1).
        idl.register_atom(v, DiffAtom { x: 1, y: 2, c: -1 });
        assert!(idl.assert_true(v.neg()).is_ok());
        assert!(idl.value_of(2) <= idl.value_of(1));
    }

    #[test]
    fn atom_and_complement_conflict() {
        let mut idl = Idl::new();
        let va = Var(0);
        let vb = Var(1);
        idl.register_atom(va, DiffAtom { x: 1, y: 2, c: -1 });
        idl.register_atom(vb, DiffAtom { x: 2, y: 1, c: -1 });
        assert!(idl.assert_true(va.pos()).is_ok());
        let r = idl.assert_true(vb.pos());
        let expl = r.unwrap_err();
        assert!(expl.contains(&va.pos()));
        assert!(expl.contains(&vb.pos()));
    }

    #[test]
    fn non_theory_literals_ignored() {
        let mut idl = Idl::new();
        assert!(idl.assert_true(Var(42).pos()).is_ok());
        assert_eq!(idl.num_edges(), 0);
    }

    #[test]
    fn diamond_of_tight_bounds() {
        let mut idl = Idl::new();
        // a <= b <= d, a <= c <= d, d <= a + 1: forces near-equality, SAT.
        assert!(edge(&mut idl, 1, 2, 0, 0).is_ok()); // b - a <= 0? edge a->b w0: pi(b)<=pi(a): b<=a.. naming aside, graph-consistent
        assert!(edge(&mut idl, 2, 4, 0, 1).is_ok());
        assert!(edge(&mut idl, 1, 3, 0, 2).is_ok());
        assert!(edge(&mut idl, 3, 4, 0, 3).is_ok());
        assert!(edge(&mut idl, 4, 1, 1, 4).is_ok());
        // Now force d strictly below a by 2: impossible (cycle -1).
        let r = edge(&mut idl, 4, 1, -1, 5);
        // cycle: 1->2->4->1 with weights 0,0,-1 = -1 < 0.
        assert!(r.is_err());
    }

    /// Randomised differential test against Floyd–Warshall feasibility.
    #[test]
    fn random_graphs_match_floyd_warshall() {
        let mut seed = 0xdeadbeefu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..200 {
            let n = 2 + (next() % 5) as usize; // 2..=6 nodes
            let m = 1 + (next() % 12) as usize;
            let mut edges_list = Vec::new();
            for _ in 0..m {
                let u = (next() % n as u64) as u32;
                let mut v = (next() % n as u64) as u32;
                if u == v {
                    v = (v + 1) % n as u32;
                }
                let w = (next() % 9) as i64 - 4;
                edges_list.push((u, v, w));
            }
            // Incremental assertion; find first index where it conflicts.
            let mut idl = Idl::new();
            idl.ensure_vars(n);
            let mut conflict_at = None;
            for (i, &(u, v, w)) in edges_list.iter().enumerate() {
                if idl.assert_edge(u, v, w, lit(i as u32)).is_err() {
                    conflict_at = Some(i);
                    break;
                }
            }
            // Floyd–Warshall oracle: feasible prefix length.
            let feasible = |k: usize| -> bool {
                let inf = i64::MAX / 4;
                let mut d = vec![vec![inf; n]; n];
                for (i, row) in d.iter_mut().enumerate() {
                    row[i] = 0;
                }
                for &(u, v, w) in &edges_list[..k] {
                    let (u, v) = (u as usize, v as usize);
                    if w < d[u][v] {
                        d[u][v] = w;
                    }
                }
                for mid in 0..n {
                    for a in 0..n {
                        for b in 0..n {
                            let via = d[a][mid].saturating_add(d[mid][b]);
                            if via < d[a][b] {
                                d[a][b] = via;
                            }
                        }
                    }
                }
                (0..n).all(|i| d[i][i] >= 0)
            };
            match conflict_at {
                Some(i) => {
                    assert!(feasible(i), "round {round}: prefix {i} wrongly accepted");
                    assert!(
                        !feasible(i + 1),
                        "round {round}: conflict at {i} is spurious"
                    );
                }
                None => {
                    assert!(
                        feasible(edges_list.len()),
                        "round {round}: missed a conflict"
                    );
                }
            }
        }
    }
}
