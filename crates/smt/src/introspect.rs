//! Sampled search-shape introspection: distribution histograms the flat
//! [`crate::Stats`] counters cannot carry.
//!
//! The aggregate counters say *how many* conflicts and restarts a solve
//! saw; they cannot say whether the learned clauses were mostly glue
//! (LBD ≤ 2) or junk, whether conflicts happen shallow or deep in the
//! decision stack, or whether the Glucose-style restart EMAs fire every
//! 60 conflicts or lie dormant for thousands (the ROADMAP's open
//! restart-tuning question). [`Introspect`] samples exactly those three
//! distributions at the conflict and restart points of the CDCL loop,
//! **pre-bucketed at source** into fixed bounds so the hot-path cost is
//! one comparison chain and two integer adds per conflict — no
//! per-observation allocation, no floats in the solver.
//!
//! The buckets render through [`metrics::Registry::histogram_add_bucketed`]
//! as ordinary Prometheus histograms named `mcapi_smt_lbd`,
//! `mcapi_smt_decision_depth`, and `mcapi_smt_restart_interval`.

use serde::{Deserialize, Serialize};

/// Upper bounds for learned-clause LBD ("glue") values. LBD 1–2 clauses
/// are the ones Glucose keeps forever; the tail shows how noisy the
/// learning is.
pub const LBD_BOUNDS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0];

/// Upper bounds for the decision level at which conflicts occur.
pub const DEPTH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

/// Upper bounds for the number of conflicts between consecutive
/// restarts (the restart policy's effective firing interval; the
/// minimum enforced by the policy is 50).
pub const RESTART_INTERVAL_BOUNDS: &[f64] =
    &[50.0, 64.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0];

/// One pre-bucketed distribution: observation counts per bound plus a
/// trailing overflow (`+Inf`) slot, and the running sum of raw values.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BucketCounts {
    /// Counts per bound, plus the final above-last-bound slot
    /// (`counts.len() == bounds.len() + 1` once populated; empty means
    /// "no observations yet" and merges as all-zero).
    #[serde(default)]
    pub counts: Vec<u64>,
    /// Sum of raw observed values.
    #[serde(default)]
    pub sum: u64,
}

impl BucketCounts {
    /// Allocate the bucket slots without recording anything: marks the
    /// distribution as *sampled* (it will render, even all-zero) as
    /// opposed to never-observed (empty `counts`, not rendered).
    fn ensure_allocated(&mut self, bounds: &[f64]) {
        if self.counts.is_empty() {
            self.counts = vec![0; bounds.len() + 1];
        }
    }

    /// Record one raw `value` against `bounds`.
    fn observe(&mut self, bounds: &[f64], value: u64) {
        self.ensure_allocated(bounds);
        let slot = bounds
            .iter()
            .position(|&b| value as f64 <= b)
            .unwrap_or(bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Add `other`'s observations into `self` (slot-wise; either side
    /// may be empty/unpopulated).
    pub fn merge(&mut self, other: &BucketCounts) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; other.counts.len()];
        }
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket layout mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Observations accumulated since `baseline` (slot-wise saturating
    /// difference — the counts are monotone).
    pub fn delta(&self, baseline: &BucketCounts) -> BucketCounts {
        if baseline.counts.is_empty() {
            return self.clone();
        }
        if self.counts.is_empty() {
            return BucketCounts::default();
        }
        assert_eq!(
            self.counts.len(),
            baseline.counts.len(),
            "bucket layout mismatch"
        );
        BucketCounts {
            counts: self
                .counts
                .iter()
                .zip(&baseline.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(baseline.sum),
        }
    }

    fn record(
        &self,
        reg: &mut metrics::Registry,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) {
        // Never-sampled distributions do not render at all: an all-zero
        // histogram in the exposition is reserved for "sampled, nothing
        // observed" (e.g. conflicts seen but the restart policy never
        // fired), so absence is the unambiguous marker for "introspection
        // not sampled".
        if self.counts.is_empty() {
            return;
        }
        reg.histogram_add_bucketed(name, help, labels, bounds, &self.counts, self.sum as f64);
    }
}

/// The SAT core's sampled distributions; one per [`crate::SatSolver`],
/// monotone like [`crate::Stats`] and reported per query via
/// [`Introspect::delta`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Introspect {
    /// LBD (glue) of each learned clause.
    #[serde(default)]
    pub lbd: BucketCounts,
    /// Decision level at each conflict.
    #[serde(default)]
    pub decision_depth: BucketCounts,
    /// Conflicts between consecutive restarts.
    #[serde(default)]
    pub restart_interval: BucketCounts,
}

impl Introspect {
    /// Record one learned clause's LBD and the decision level its
    /// conflict occurred at. The SAT core calls this from its conflict
    /// branch; it is public so report fixtures and external harnesses
    /// can build known distributions.
    pub fn observe_conflict(&mut self, lbd: u64, decision_level: u64) {
        self.lbd.observe(LBD_BOUNDS, lbd);
        self.decision_depth.observe(DEPTH_BOUNDS, decision_level);
        // Conflicts are the restart policy's clock: once any conflict has
        // been seen, restart intervals are genuinely being sampled, and an
        // all-zero interval histogram means "the policy never fired" — a
        // real measurement, distinguishable from "not sampled" (which
        // leaves the buckets unallocated and the histogram unrendered).
        self.restart_interval
            .ensure_allocated(RESTART_INTERVAL_BOUNDS);
    }

    /// Record the conflict count between this restart and the previous
    /// one.
    pub fn observe_restart(&mut self, conflicts_since_last: u64) {
        self.restart_interval
            .observe(RESTART_INTERVAL_BOUNDS, conflicts_since_last);
    }

    /// Merge another solver's (or query's) distributions into this one.
    pub fn merge(&mut self, other: &Introspect) {
        self.lbd.merge(&other.lbd);
        self.decision_depth.merge(&other.decision_depth);
        self.restart_interval.merge(&other.restart_interval);
    }

    /// Distributions accumulated since `baseline` was cloned.
    pub fn delta(&self, baseline: &Introspect) -> Introspect {
        Introspect {
            lbd: self.lbd.delta(&baseline.lbd),
            decision_depth: self.decision_depth.delta(&baseline.decision_depth),
            restart_interval: self.restart_interval.delta(&baseline.restart_interval),
        }
    }

    /// Report the three distributions into `reg` under the crate's
    /// stable histogram names, tagged with `labels`.
    pub fn record(&self, reg: &mut metrics::Registry, labels: &[(&str, &str)]) {
        self.lbd.record(
            reg,
            "mcapi_smt_lbd",
            "LBD (glue) of learned clauses",
            labels,
            LBD_BOUNDS,
        );
        self.decision_depth.record(
            reg,
            "mcapi_smt_decision_depth",
            "Decision level at each conflict",
            labels,
            DEPTH_BOUNDS,
        );
        self.restart_interval.record(
            reg,
            "mcapi_smt_restart_interval",
            "Conflicts between consecutive restarts",
            labels,
            RESTART_INTERVAL_BOUNDS,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_bucket_and_sum() {
        let mut i = Introspect::default();
        i.observe_conflict(1, 3);
        i.observe_conflict(2, 3);
        i.observe_conflict(100, 700); // both above the last bound
        assert_eq!(i.lbd.count(), 3);
        assert_eq!(i.lbd.counts[0], 1); // lbd ≤ 1
        assert_eq!(i.lbd.counts[1], 1); // lbd ≤ 2
        assert_eq!(*i.lbd.counts.last().unwrap(), 1, "overflow slot");
        assert_eq!(i.lbd.sum, 103);
        assert_eq!(*i.decision_depth.counts.last().unwrap(), 1);
        i.observe_restart(55);
        assert_eq!(i.restart_interval.count(), 1);
        assert_eq!(i.restart_interval.counts[1], 1); // 50 < 55 ≤ 64
    }

    #[test]
    fn merge_and_delta_are_inverse_on_monotone_data() {
        let mut base = Introspect::default();
        base.observe_conflict(2, 5);
        let mut later = base.clone();
        later.observe_conflict(4, 9);
        later.observe_restart(60);
        let d = later.delta(&base);
        assert_eq!(d.lbd.count(), 1);
        assert_eq!(d.decision_depth.count(), 1);
        assert_eq!(d.restart_interval.count(), 1);
        let mut rebuilt = base.clone();
        rebuilt.merge(&d);
        assert_eq!(rebuilt, later);
    }

    #[test]
    fn merge_with_empty_sides_is_total() {
        let mut a = Introspect::default();
        let mut b = Introspect::default();
        b.observe_conflict(3, 2);
        a.merge(&b); // empty += populated
        assert_eq!(a.lbd.count(), 1);
        a.merge(&Introspect::default()); // populated += empty
        assert_eq!(a.lbd.count(), 1);
        assert_eq!(Introspect::default().delta(&a).lbd.count(), 0);
    }

    #[test]
    fn record_emits_the_three_pinned_histograms() {
        let mut i = Introspect::default();
        i.observe_conflict(2, 4);
        i.observe_restart(51);
        let mut reg = metrics::Registry::new();
        i.record(&mut reg, &[("engine", "symbolic")]);
        // A never-sampled introspect must NOT render: absence is the
        // marker for "introspection never ran", all-zero is reserved for
        // genuinely sampled empty distributions.
        Introspect::default().record(&mut reg, &[("engine", "explicit")]);
        let text = reg.render_prometheus();
        for name in [
            "mcapi_smt_lbd",
            "mcapi_smt_decision_depth",
            "mcapi_smt_restart_interval",
        ] {
            assert!(text.contains(&format!("# TYPE {name} histogram")), "{text}");
        }
        assert!(
            text.contains("mcapi_smt_lbd_bucket{engine=\"symbolic\",le=\"2\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mcapi_smt_restart_interval_bucket{engine=\"symbolic\",le=\"64\"} 1"),
            "{text}"
        );
        assert!(!text.contains("engine=\"explicit\""), "{text}");
    }

    #[test]
    fn zero_restarts_are_distinguishable_from_never_sampled() {
        // Conflicts without a single restart: the interval histogram
        // renders as genuinely all-zero (the policy was live but never
        // fired)...
        let mut i = Introspect::default();
        i.observe_conflict(2, 4);
        let mut reg = metrics::Registry::new();
        i.record(&mut reg, &[("engine", "symbolic")]);
        let text = reg.render_prometheus();
        assert!(
            text.contains("mcapi_smt_restart_interval_count{engine=\"symbolic\"} 0"),
            "{text}"
        );
        // ...while an introspect that saw no conflicts at all emits no
        // interval series whatsoever.
        let mut reg2 = metrics::Registry::new();
        Introspect::default().record(&mut reg2, &[("engine", "explicit")]);
        let text2 = reg2.render_prometheus();
        assert!(!text2.contains("mcapi_smt_restart_interval"), "{text2}");
    }

    #[test]
    fn json_roundtrip_preserves_buckets() {
        let mut i = Introspect::default();
        i.observe_conflict(6, 12);
        let v = serde::Serialize::to_value(&i);
        let back: Introspect = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, i);
    }
}
