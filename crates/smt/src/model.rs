//! Models (satisfying assignments) extracted after a SAT answer.

use crate::term::{Term, TermId, TermPool};

/// A first-order model: integer values per pool integer variable and Boolean
/// values per pool Boolean variable.
#[derive(Clone, Debug, Default)]
pub struct Model {
    /// Indexed by the pool's integer-variable index.
    pub ints: Vec<i64>,
    /// Indexed by the pool's Boolean-variable index (`false` when the
    /// variable was irrelevant to the verdict).
    pub bools: Vec<bool>,
}

impl Model {
    /// Value of an integer variable *term*.
    pub fn int_value(&self, pool: &TermPool, t: TermId) -> Option<i64> {
        match pool.get(t) {
            Term::IntVar(i) => self.ints.get(*i as usize).copied(),
            Term::IntConst(c) => Some(*c),
            _ => self.eval_int(pool, t),
        }
    }

    /// Evaluate an integer term.
    pub fn eval_int(&self, pool: &TermPool, t: TermId) -> Option<i64> {
        match pool.get(t) {
            Term::IntConst(c) => Some(*c),
            Term::IntVar(i) => self.ints.get(*i as usize).copied(),
            Term::Add(a, b) => Some(self.eval_int(pool, *a)? + self.eval_int(pool, *b)?),
            Term::Sub(a, b) => Some(self.eval_int(pool, *a)? - self.eval_int(pool, *b)?),
            _ => None,
        }
    }

    /// Evaluate a Boolean term under this model.
    pub fn eval_bool(&self, pool: &TermPool, t: TermId) -> Option<bool> {
        match pool.get(t) {
            Term::True => Some(true),
            Term::False => Some(false),
            Term::BoolVar(i) => self.bools.get(*i as usize).copied(),
            Term::Not(x) => Some(!self.eval_bool(pool, *x)?),
            Term::And(kids) => {
                for k in kids.iter() {
                    if !self.eval_bool(pool, *k)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            Term::Or(kids) => {
                for k in kids.iter() {
                    if self.eval_bool(pool, *k)? {
                        return Some(true);
                    }
                }
                Some(false)
            }
            Term::Implies(a, b) => Some(!self.eval_bool(pool, *a)? || self.eval_bool(pool, *b)?),
            Term::Iff(a, b) => Some(self.eval_bool(pool, *a)? == self.eval_bool(pool, *b)?),
            Term::Ite(c, th, el) => {
                if self.eval_bool(pool, *c)? {
                    self.eval_bool(pool, *th)
                } else {
                    self.eval_bool(pool, *el)
                }
            }
            Term::Cmp(op, a, b) => {
                Some(op.eval(self.eval_int(pool, *a)?, self.eval_int(pool, *b)?))
            }
            Term::IntVar(_) | Term::IntConst(_) | Term::Add(..) | Term::Sub(..) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::CmpOp;

    #[test]
    fn eval_int_expressions() {
        let mut p = TermPool::new();
        let x = p.int_var("x"); // index 0
        let y = p.int_var("y"); // index 1
        let m = Model {
            ints: vec![3, 10],
            bools: vec![],
        };
        let s = p.add(x, y);
        assert_eq!(m.eval_int(&p, s), Some(13));
        let d = p.sub(y, x);
        assert_eq!(m.eval_int(&p, d), Some(7));
        let c = p.int_const(42);
        assert_eq!(m.eval_int(&p, c), Some(42));
    }

    #[test]
    fn eval_bool_structure() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let b = p.bool_var("b"); // bool index 0
        let m = Model {
            ints: vec![1, 2],
            bools: vec![true],
        };
        let lt = p.cmp(CmpOp::Lt, x, y);
        assert_eq!(m.eval_bool(&p, lt), Some(true));
        let gt = p.cmp(CmpOp::Gt, x, y);
        assert_eq!(m.eval_bool(&p, gt), Some(false));
        let conj = p.and2(lt, b);
        assert_eq!(m.eval_bool(&p, conj), Some(true));
        let n = p.not(conj);
        assert_eq!(m.eval_bool(&p, n), Some(false));
        let imp = p.implies(gt, b);
        assert_eq!(m.eval_bool(&p, imp), Some(true));
        let iff = p.iff(lt, b);
        assert_eq!(m.eval_bool(&p, iff), Some(true));
        let ite = p.ite(gt, lt, b);
        assert_eq!(m.eval_bool(&p, ite), Some(true));
    }

    #[test]
    fn missing_values_yield_none() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let m = Model::default();
        assert_eq!(m.eval_int(&p, x), None);
        let five = p.int_const(5);
        let cmpt = p.cmp(CmpOp::Le, x, five);
        assert_eq!(m.eval_bool(&p, cmpt), None);
    }

    #[test]
    fn int_term_in_bool_eval_is_none() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let m = Model {
            ints: vec![0],
            bools: vec![],
        };
        assert_eq!(m.eval_bool(&p, x), None);
    }
}
