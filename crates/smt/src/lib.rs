//! # smt — a from-scratch DPLL(T) solver for difference logic
//!
//! This crate is the stand-in for the Yices solver used in *Symbolically
//! Modeling Concurrent MCAPI Executions* (Fischer, Mercer, Rungta — PPoPP
//! 2011). Every constraint the paper's encoding emits lies in the Boolean
//! combination of **integer difference logic** (IDL) atoms of the form
//! `x - y <= c`:
//!
//! * happens-before orderings between event clocks (`clk(s) < clk(r)`),
//! * value equalities between sent and received data (`val(r) = val(s)`),
//! * identifier bindings for match pairs (`id(r) = k`), and
//! * the (negated) safety properties over program values.
//!
//! The solver is a classic DPLL(T) stack:
//!
//! * a hash-consed term DAG ([`term::TermPool`]) with `Bool`/`Int` sorts,
//! * a lowering pass that normalises comparisons to canonical difference
//!   atoms ([`atom`]),
//! * Tseitin CNF conversion ([`cnf`]),
//! * a Glucose-class CDCL SAT core with two-watched-literal propagation
//!   over a flat clause arena, first-UIP learning, EVSIDS activity,
//!   theory-aware saved phases, don't-care decision elision, LBD-driven
//!   clause-database reduction and EMA-based dynamic restarts with
//!   trail-growth blocking ([`sat`]),
//! * an incremental difference-logic theory solver using potential-function
//!   maintenance and negative-cycle detection ([`idl`]), and
//! * a facade ([`solver::SmtSolver`]) tying it together with model
//!   extraction, assumptions, and all-SAT enumeration via blocking clauses.
//!
//! ## Quick example
//!
//! ```
//! use smt::{SmtSolver, SatResult};
//!
//! let mut s = SmtSolver::new();
//! let x = s.int_var("x");
//! let y = s.int_var("y");
//! let z = s.int_var("z");
//! // x < y /\ y < z /\ z <= x + 1  is unsatisfiable over the integers
//! let a = s.lt(x, y);
//! let b = s.lt(y, z);
//! let xp1 = s.add_const(x, 1);
//! let c = s.le(z, xp1);
//! s.assert_term(a);
//! s.assert_term(b);
//! assert!(matches!(s.check(), SatResult::Sat));
//! s.assert_term(c);
//! assert!(matches!(s.check(), SatResult::Unsat));
//! ```

pub mod atom;
pub mod clause;
pub mod cnf;
pub mod dimacs;
pub mod error;
pub mod heap;
pub mod idl;
pub mod idl_naive;
pub mod introspect;
pub mod lit;
pub mod model;
pub mod naive;
pub mod sat;
pub mod solver;
pub mod stats;
pub mod term;

pub use atom::{DiffAtom, IntVarId, ZERO_VAR};
pub use error::SmtError;
pub use introspect::Introspect;
pub use lit::{LBool, Lit, Var};
pub use model::Model;
pub use sat::SatSolver;
pub use solver::{SatResult, SmtSolver};
pub use stats::Stats;
pub use term::{CmpOp, Term, TermId, TermPool};
