//! Clause storage for the CDCL core.
//!
//! Clauses live in one flat literal arena indexed by a header table; a
//! [`ClauseRef`] is an index into the headers. Deletion is logical (headers
//! are tombstoned and watchers lazily dropped); the arena is compacted when
//! the fraction of dead literals grows past a threshold.

use crate::lit::Lit;

/// Index of a clause in the database.
pub type ClauseRef = u32;

#[derive(Clone, Debug)]
struct Header {
    start: u32,
    len: u32,
    learnt: bool,
    deleted: bool,
    /// Literal Block Distance at learning time (glue level).
    lbd: u32,
    activity: f32,
}

/// The clause database: problem clauses and learned clauses.
#[derive(Default)]
pub struct ClauseDb {
    lits: Vec<Lit>,
    headers: Vec<Header>,
    /// Number of literals belonging to deleted clauses (compaction trigger).
    dead_lits: usize,
    /// Clause activity bump amount (exponentially rescaled).
    cla_inc: f32,
}

impl ClauseDb {
    pub fn new() -> Self {
        ClauseDb {
            lits: Vec::new(),
            headers: Vec::new(),
            dead_lits: 0,
            cla_inc: 1.0,
        }
    }

    /// Add a clause; returns its reference. `lits` must have length >= 2
    /// (units are handled on the trail, empties mean UNSAT).
    pub fn add(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let start = self.lits.len() as u32;
        self.lits.extend_from_slice(lits);
        let cref = self.headers.len() as ClauseRef;
        self.headers.push(Header {
            start,
            len: lits.len() as u32,
            learnt,
            deleted: false,
            lbd,
            activity: 0.0,
        });
        cref
    }

    /// The literals of a clause.
    #[inline]
    pub fn lits(&self, c: ClauseRef) -> &[Lit] {
        let h = &self.headers[c as usize];
        &self.lits[h.start as usize..(h.start + h.len) as usize]
    }

    /// Mutable literals of a clause (watched-literal reordering).
    #[inline]
    pub fn lits_mut(&mut self, c: ClauseRef) -> &mut [Lit] {
        let h = &self.headers[c as usize];
        &mut self.lits[h.start as usize..(h.start + h.len) as usize]
    }

    #[inline]
    pub fn is_deleted(&self, c: ClauseRef) -> bool {
        self.headers[c as usize].deleted
    }

    #[inline]
    pub fn is_learnt(&self, c: ClauseRef) -> bool {
        self.headers[c as usize].learnt
    }

    #[inline]
    pub fn lbd(&self, c: ClauseRef) -> u32 {
        self.headers[c as usize].lbd
    }

    #[inline]
    pub fn set_lbd(&mut self, c: ClauseRef, lbd: u32) {
        self.headers[c as usize].lbd = lbd;
    }

    #[inline]
    pub fn activity(&self, c: ClauseRef) -> f32 {
        self.headers[c as usize].activity
    }

    /// Tombstone a clause. The caller is responsible for not holding it as a
    /// reason and for purging watchers lazily.
    pub fn delete(&mut self, c: ClauseRef) {
        let h = &mut self.headers[c as usize];
        if !h.deleted {
            h.deleted = true;
            self.dead_lits += h.len as usize;
        }
    }

    /// Bump a learned clause's activity; returns `true` if a global rescale
    /// happened (callers don't need to act on it — kept for stats).
    pub fn bump_activity(&mut self, c: ClauseRef) -> bool {
        let inc = self.cla_inc;
        let h = &mut self.headers[c as usize];
        h.activity += inc;
        if h.activity > 1e20 {
            self.rescale();
            true
        } else {
            false
        }
    }

    fn rescale(&mut self) {
        for hh in &mut self.headers {
            hh.activity *= 1e-20;
        }
        self.cla_inc *= 1e-20;
    }

    /// Decay clause activities by bumping future increments.
    pub fn decay_activity(&mut self) {
        self.cla_inc /= 0.999;
        // f32 headroom: rescale before the increment itself can overflow.
        if self.cla_inc > 1e20 {
            self.rescale();
        }
    }

    /// All live learned clause references (for reduce-db).
    pub fn learnt_refs(&self) -> Vec<ClauseRef> {
        (0..self.headers.len() as ClauseRef)
            .filter(|&c| {
                let h = &self.headers[c as usize];
                h.learnt && !h.deleted
            })
            .collect()
    }

    /// Total number of live clauses.
    pub fn num_live(&self) -> usize {
        self.headers.iter().filter(|h| !h.deleted).count()
    }

    /// Total number of clauses ever added (live + tombstoned) — the upper
    /// bound of valid [`ClauseRef`]s, used as a position mark by the scope
    /// machinery.
    pub fn num_total(&self) -> usize {
        self.headers.len()
    }

    /// Number of live learned clauses.
    pub fn num_learnt(&self) -> usize {
        self.headers
            .iter()
            .filter(|h| h.learnt && !h.deleted)
            .count()
    }

    /// Fraction of arena literals that belong to deleted clauses.
    pub fn garbage_ratio(&self) -> f64 {
        if self.lits.is_empty() {
            0.0
        } else {
            self.dead_lits as f64 / self.lits.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(ids: &[u32]) -> Vec<Lit> {
        ids.iter().map(|&i| Var(i).pos()).collect()
    }

    #[test]
    fn add_and_read_back() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&lits(&[0, 1, 2]), false, 0);
        let c2 = db.add(&lits(&[3, 4]), true, 2);
        assert_eq!(db.lits(c1), &lits(&[0, 1, 2])[..]);
        assert_eq!(db.lits(c2), &lits(&[3, 4])[..]);
        assert!(!db.is_learnt(c1));
        assert!(db.is_learnt(c2));
        assert_eq!(db.lbd(c2), 2);
        assert_eq!(db.num_live(), 2);
        assert_eq!(db.num_learnt(), 1);
    }

    #[test]
    fn delete_is_logical() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&lits(&[0, 1]), true, 2);
        let c2 = db.add(&lits(&[2, 3]), true, 2);
        db.delete(c1);
        assert!(db.is_deleted(c1));
        assert!(!db.is_deleted(c2));
        assert_eq!(db.num_live(), 1);
        assert!(db.garbage_ratio() > 0.0);
        // double-delete is idempotent
        let before = db.garbage_ratio();
        db.delete(c1);
        assert_eq!(db.garbage_ratio(), before);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new();
        let c = db.add(&lits(&[0, 1]), true, 2);
        assert_eq!(db.activity(c), 0.0);
        db.bump_activity(c);
        assert!(db.activity(c) > 0.0);
        // Heavy decay must never push activities to infinity: the increment
        // is rescaled internally before it can overflow f32.
        for _ in 0..100_000 {
            db.decay_activity();
        }
        db.bump_activity(c);
        assert!(db.activity(c).is_finite());
        assert!(db.activity(c) > 0.0);
        // A second clause bumped later still compares as more active.
        let d = db.add(&lits(&[2, 3]), true, 2);
        db.decay_activity();
        db.bump_activity(d);
        assert!(
            db.activity(d) >= db.activity(c) * 0.5,
            "recent bump should dominate"
        );
    }

    #[test]
    fn learnt_refs_skips_deleted_and_problem_clauses() {
        let mut db = ClauseDb::new();
        let _p = db.add(&lits(&[0, 1]), false, 0);
        let l1 = db.add(&lits(&[2, 3]), true, 2);
        let l2 = db.add(&lits(&[4, 5]), true, 3);
        db.delete(l1);
        assert_eq!(db.learnt_refs(), vec![l2]);
    }

    #[test]
    fn lits_mut_allows_reordering() {
        let mut db = ClauseDb::new();
        let c = db.add(&lits(&[0, 1, 2]), false, 0);
        db.lits_mut(c).swap(0, 2);
        assert_eq!(db.lits(c)[0], Var(2).pos());
    }
}
