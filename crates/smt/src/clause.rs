//! Clause storage for the CDCL core: a single flat `u32` arena.
//!
//! Every clause lives contiguously in one buffer — three header words
//! (length; flags + LBD; activity bits) followed by its literals — and a
//! [`ClauseRef`] is the word offset of the header. Propagation therefore
//! touches the header and the watched literals on the same cache lines,
//! which is the Glucose/splr layout (headers-in-arena) rather than the
//! header-table-plus-literal-pool split this module used before.
//!
//! Deletion is logical: the `deleted` flag is set, watchers are dropped
//! lazily by BCP, and the scope machinery sweeps dead ranges at pops.
//! Offsets are monotone in insertion order, so a position mark taken with
//! [`ClauseDb::mark`] identifies "every clause added since" — the property
//! the selector-scope journal relies on.

use crate::lit::Lit;

/// Word offset of a clause header in the arena.
pub type ClauseRef = u32;

/// Header words in front of every clause's literals.
const HEADER_WORDS: u32 = 3;

/// Flag bits in header word 1 (the LBD occupies the bits above them).
const FLAG_LEARNT: u32 = 1;
const FLAG_DELETED: u32 = 1 << 1;
const FLAG_PROTECTED: u32 = 1 << 2;
const LBD_SHIFT: u32 = 3;
/// LBD values are clamped into the bits left over after the flags.
const LBD_MAX: u32 = u32::MAX >> LBD_SHIFT;

/// The clause database: problem clauses and learned clauses in one arena.
#[derive(Default)]
pub struct ClauseDb {
    /// `[len, flags|lbd, activity_bits, lit0, lit1, ...]*`
    arena: Vec<u32>,
    /// Live (non-deleted) clauses.
    live: usize,
    /// Live learned clauses.
    learnt_live: usize,
    /// Literals belonging to deleted clauses (garbage accounting).
    dead_lits: usize,
    /// Clause activity bump amount (exponentially rescaled).
    cla_inc: f32,
}

impl ClauseDb {
    pub fn new() -> Self {
        ClauseDb {
            arena: Vec::new(),
            live: 0,
            learnt_live: 0,
            dead_lits: 0,
            cla_inc: 1.0,
        }
    }

    /// Add a clause; returns its reference. `lits` must have length >= 2
    /// (units are handled on the trail, empties mean UNSAT).
    pub fn add(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.len() as ClauseRef;
        let flags = if learnt { FLAG_LEARNT } else { 0 };
        self.arena.push(lits.len() as u32);
        self.arena.push(flags | (lbd.min(LBD_MAX) << LBD_SHIFT));
        self.arena.push(0f32.to_bits());
        self.arena.extend(lits.iter().map(|l| l.0));
        self.live += 1;
        if learnt {
            self.learnt_live += 1;
        }
        cref
    }

    #[inline]
    fn len_of(&self, c: ClauseRef) -> usize {
        self.arena[c as usize] as usize
    }

    /// The literals of a clause.
    #[inline]
    pub fn lits(&self, c: ClauseRef) -> &[Lit] {
        let start = c as usize + HEADER_WORDS as usize;
        let words = &self.arena[start..start + self.len_of(c)];
        // SAFETY: `Lit` is `repr(transparent)` over `u32`.
        unsafe { std::slice::from_raw_parts(words.as_ptr() as *const Lit, words.len()) }
    }

    /// Mutable literals of a clause (watched-literal reordering).
    #[inline]
    pub fn lits_mut(&mut self, c: ClauseRef) -> &mut [Lit] {
        let start = c as usize + HEADER_WORDS as usize;
        let len = self.len_of(c);
        let words = &mut self.arena[start..start + len];
        // SAFETY: `Lit` is `repr(transparent)` over `u32`.
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut Lit, words.len()) }
    }

    #[inline]
    fn flags(&self, c: ClauseRef) -> u32 {
        self.arena[c as usize + 1]
    }

    #[inline]
    pub fn is_deleted(&self, c: ClauseRef) -> bool {
        self.flags(c) & FLAG_DELETED != 0
    }

    #[inline]
    pub fn is_learnt(&self, c: ClauseRef) -> bool {
        self.flags(c) & FLAG_LEARNT != 0
    }

    /// Literal Block Distance — the glue level recorded at learning time,
    /// possibly improved since by [`ClauseDb::set_lbd`].
    #[inline]
    pub fn lbd(&self, c: ClauseRef) -> u32 {
        self.flags(c) >> LBD_SHIFT
    }

    #[inline]
    pub fn set_lbd(&mut self, c: ClauseRef, lbd: u32) {
        let w = &mut self.arena[c as usize + 1];
        *w = (*w & (FLAG_LEARNT | FLAG_DELETED | FLAG_PROTECTED)) | (lbd.min(LBD_MAX) << LBD_SHIFT);
    }

    /// A clause whose LBD recently improved survives the next database
    /// reduction even if it would otherwise be culled (Glucose's
    /// `canBeDel` protection bit). Reduction clears the bit.
    #[inline]
    pub fn is_protected(&self, c: ClauseRef) -> bool {
        self.flags(c) & FLAG_PROTECTED != 0
    }

    #[inline]
    pub fn set_protected(&mut self, c: ClauseRef, on: bool) {
        let w = &mut self.arena[c as usize + 1];
        if on {
            *w |= FLAG_PROTECTED;
        } else {
            *w &= !FLAG_PROTECTED;
        }
    }

    #[inline]
    pub fn activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.arena[c as usize + 2])
    }

    #[inline]
    fn set_activity(&mut self, c: ClauseRef, a: f32) {
        self.arena[c as usize + 2] = a.to_bits();
    }

    /// Tombstone a clause. The caller is responsible for not holding it as
    /// a reason and for purging watchers lazily.
    pub fn delete(&mut self, c: ClauseRef) {
        if !self.is_deleted(c) {
            self.arena[c as usize + 1] |= FLAG_DELETED;
            self.dead_lits += self.len_of(c);
            self.live -= 1;
            if self.is_learnt(c) {
                self.learnt_live -= 1;
            }
        }
    }

    /// Bump a learned clause's activity; returns `true` if a global rescale
    /// happened (callers don't need to act on it — kept for stats).
    pub fn bump_activity(&mut self, c: ClauseRef) -> bool {
        let a = self.activity(c) + self.cla_inc;
        self.set_activity(c, a);
        if a > 1e20 {
            self.rescale();
            true
        } else {
            false
        }
    }

    fn rescale(&mut self) {
        let mut off = 0usize;
        while off < self.arena.len() {
            let len = self.arena[off] as usize;
            let a = f32::from_bits(self.arena[off + 2]) * 1e-20;
            self.arena[off + 2] = a.to_bits();
            off += HEADER_WORDS as usize + len;
        }
        self.cla_inc *= 1e-20;
    }

    /// Decay clause activities by bumping future increments.
    pub fn decay_activity(&mut self) {
        self.cla_inc /= 0.999;
        // f32 headroom: rescale before the increment itself can overflow.
        if self.cla_inc > 1e20 {
            self.rescale();
        }
    }

    /// Walk every clause (live and tombstoned) in insertion order.
    pub fn refs(&self) -> ClauseRefIter<'_> {
        self.refs_from(0)
    }

    /// Walk every clause at or past `mark` (a value previously returned by
    /// [`ClauseDb::mark`]) in insertion order.
    pub fn refs_from(&self, mark: ClauseRef) -> ClauseRefIter<'_> {
        ClauseRefIter {
            db: self,
            off: mark,
        }
    }

    /// All live learned clause references (for reduce-db).
    pub fn learnt_refs(&self) -> Vec<ClauseRef> {
        self.refs()
            .filter(|&c| self.is_learnt(c) && !self.is_deleted(c))
            .collect()
    }

    /// Total number of live clauses.
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Position mark identifying every clause added after this point —
    /// monotone in insertion order, used as the scope journal's high-water
    /// mark. (This is an arena offset, not a clause count.)
    pub fn mark(&self) -> ClauseRef {
        self.arena.len() as ClauseRef
    }

    /// Number of live learned clauses.
    pub fn num_learnt(&self) -> usize {
        self.learnt_live
    }

    /// Fraction of arena literals that belong to deleted clauses.
    pub fn garbage_ratio(&self) -> f64 {
        let total_lits = self.arena.len();
        if total_lits == 0 {
            0.0
        } else {
            self.dead_lits as f64 / total_lits as f64
        }
    }
}

/// Iterator over clause references produced by [`ClauseDb::refs_from`].
pub struct ClauseRefIter<'a> {
    db: &'a ClauseDb,
    off: ClauseRef,
}

impl Iterator for ClauseRefIter<'_> {
    type Item = ClauseRef;

    fn next(&mut self) -> Option<ClauseRef> {
        if (self.off as usize) >= self.db.arena.len() {
            return None;
        }
        let c = self.off;
        self.off += HEADER_WORDS + self.db.arena[c as usize];
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(ids: &[u32]) -> Vec<Lit> {
        ids.iter().map(|&i| Var(i).pos()).collect()
    }

    #[test]
    fn add_and_read_back() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&lits(&[0, 1, 2]), false, 0);
        let c2 = db.add(&lits(&[3, 4]), true, 2);
        assert_eq!(db.lits(c1), &lits(&[0, 1, 2])[..]);
        assert_eq!(db.lits(c2), &lits(&[3, 4])[..]);
        assert!(!db.is_learnt(c1));
        assert!(db.is_learnt(c2));
        assert_eq!(db.lbd(c2), 2);
        assert_eq!(db.num_live(), 2);
        assert_eq!(db.num_learnt(), 1);
    }

    #[test]
    fn refs_walk_the_arena_in_order() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&lits(&[0, 1, 2]), false, 0);
        let mark = db.mark();
        let c2 = db.add(&lits(&[3, 4]), true, 2);
        let c3 = db.add(&lits(&[5, 6, 7, 8]), true, 3);
        assert_eq!(db.refs().collect::<Vec<_>>(), vec![c1, c2, c3]);
        assert_eq!(db.refs_from(mark).collect::<Vec<_>>(), vec![c2, c3]);
        assert_eq!(db.refs_from(db.mark()).count(), 0);
    }

    #[test]
    fn delete_is_logical() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&lits(&[0, 1]), true, 2);
        let c2 = db.add(&lits(&[2, 3]), true, 2);
        db.delete(c1);
        assert!(db.is_deleted(c1));
        assert!(!db.is_deleted(c2));
        assert_eq!(db.num_live(), 1);
        assert!(db.garbage_ratio() > 0.0);
        // double-delete is idempotent
        let before = db.garbage_ratio();
        db.delete(c1);
        assert_eq!(db.garbage_ratio(), before);
        assert_eq!(db.num_learnt(), 1);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new();
        let c = db.add(&lits(&[0, 1]), true, 2);
        assert_eq!(db.activity(c), 0.0);
        db.bump_activity(c);
        assert!(db.activity(c) > 0.0);
        // Heavy decay must never push activities to infinity: the increment
        // is rescaled internally before it can overflow f32.
        for _ in 0..100_000 {
            db.decay_activity();
        }
        db.bump_activity(c);
        assert!(db.activity(c).is_finite());
        assert!(db.activity(c) > 0.0);
        // A second clause bumped later still compares as more active.
        let d = db.add(&lits(&[2, 3]), true, 2);
        db.decay_activity();
        db.bump_activity(d);
        assert!(
            db.activity(d) >= db.activity(c) * 0.5,
            "recent bump should dominate"
        );
    }

    #[test]
    fn learnt_refs_skips_deleted_and_problem_clauses() {
        let mut db = ClauseDb::new();
        let _p = db.add(&lits(&[0, 1]), false, 0);
        let l1 = db.add(&lits(&[2, 3]), true, 2);
        let l2 = db.add(&lits(&[4, 5]), true, 3);
        db.delete(l1);
        assert_eq!(db.learnt_refs(), vec![l2]);
    }

    #[test]
    fn lbd_updates_and_protection() {
        let mut db = ClauseDb::new();
        let c = db.add(&lits(&[0, 1, 2]), true, 7);
        assert_eq!(db.lbd(c), 7);
        db.set_lbd(c, 3);
        assert_eq!(db.lbd(c), 3);
        assert!(db.is_learnt(c), "flags survive LBD updates");
        assert!(!db.is_protected(c));
        db.set_protected(c, true);
        assert!(db.is_protected(c));
        assert_eq!(db.lbd(c), 3, "protection bit leaves the LBD alone");
        db.set_protected(c, false);
        assert!(!db.is_protected(c));
    }

    #[test]
    fn lits_mut_allows_reordering() {
        let mut db = ClauseDb::new();
        let c = db.add(&lits(&[0, 1, 2]), false, 0);
        db.lits_mut(c).swap(0, 2);
        assert_eq!(db.lits(c)[0], Var(2).pos());
    }
}
