//! Minimal DIMACS CNF reader/writer, used for differential testing of the
//! SAT core against generated instances.

use crate::error::SmtError;
use crate::lit::{Lit, Var};
use crate::sat::{SatSolver, SolveResult};

/// A parsed CNF instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    pub num_vars: usize,
    pub clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// Parse DIMACS text. Tolerates comments and blank lines; clauses may
    /// span lines and must be `0`-terminated.
    pub fn parse(text: &str) -> Result<Cnf, SmtError> {
        let mut num_vars = None;
        let mut clauses = Vec::new();
        let mut current: Vec<i32> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(SmtError::Dimacs(lineno + 1, "expected 'p cnf'".into()));
                }
                let nv: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| SmtError::Dimacs(lineno + 1, "bad var count".into()))?;
                let _nc: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| SmtError::Dimacs(lineno + 1, "bad clause count".into()))?;
                num_vars = Some(nv);
                continue;
            }
            for tok in line.split_whitespace() {
                let v: i32 = tok
                    .parse()
                    .map_err(|_| SmtError::Dimacs(lineno + 1, format!("bad literal {tok}")))?;
                if v == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    current.push(v);
                }
            }
        }
        if !current.is_empty() {
            clauses.push(current);
        }
        let num_vars = num_vars.unwrap_or_else(|| {
            clauses
                .iter()
                .flat_map(|c| c.iter())
                .map(|l| l.unsigned_abs() as usize)
                .max()
                .unwrap_or(0)
        });
        Ok(Cnf { num_vars, clauses })
    }

    /// Serialise to DIMACS text.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let _ = write!(out, "{l} ");
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Load into a fresh SAT solver and solve. Returns the verdict and, when
    /// SAT, the model as signed DIMACS literals.
    pub fn solve(&self) -> (SolveResult, Option<Vec<i32>>) {
        let mut s = SatSolver::new_pure();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| s.new_var()).collect();
        for c in &self.clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&l| {
                    let v = vars[(l.unsigned_abs() - 1) as usize];
                    v.lit(l > 0)
                })
                .collect();
            if !s.add_clause(&lits) {
                return (SolveResult::Unsat, None);
            }
        }
        match s.solve() {
            SolveResult::Sat => {
                let model: Vec<i32> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let idx = (i + 1) as i32;
                        match s.model_value(v) {
                            crate::lit::LBool::False => -idx,
                            _ => idx,
                        }
                    })
                    .collect();
                (SolveResult::Sat, Some(model))
            }
            other => (other, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_instance() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = Cnf::parse(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses, vec![vec![1, -2], vec![2, 3]]);
    }

    #[test]
    fn parse_multiline_clause() {
        let text = "p cnf 2 1\n1\n-2\n0\n";
        let cnf = Cnf::parse(text).unwrap();
        assert_eq!(cnf.clauses, vec![vec![1, -2]]);
    }

    #[test]
    fn parse_without_header_infers_vars() {
        let cnf = Cnf::parse("1 2 0\n-3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cnf::parse("p cnf x y\n").is_err());
        assert!(Cnf::parse("1 zz 0\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![vec![1, -2], vec![2, 3]],
        };
        let text = cnf.to_dimacs();
        let back = Cnf::parse(&text).unwrap();
        assert_eq!(back, cnf);
    }

    #[test]
    fn solve_sat_instance_model_satisfies() {
        let cnf = Cnf::parse("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n").unwrap();
        let (res, model) = cnf.solve();
        assert_eq!(res, SolveResult::Sat);
        let model = model.unwrap();
        for c in &cnf.clauses {
            assert!(
                c.iter().any(|&l| model.contains(&l)),
                "clause {c:?} unsatisfied"
            );
        }
    }

    #[test]
    fn solve_unsat_instance() {
        let cnf = Cnf::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert_eq!(cnf.solve().0, SolveResult::Unsat);
    }
}
