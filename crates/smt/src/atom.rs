//! Normalisation of comparison terms into canonical difference-logic atoms.
//!
//! Every comparison the encoder emits is reduced here to the single atom
//! shape `x - y <= c` over integer variables, where the reserved variable
//! [`ZERO_VAR`] stands for the constant `0` (so unary bounds `x <= c` become
//! `x - zero <= c`). The SAT core then owns one Boolean variable per
//! *canonical* atom; the negative literal of that variable denotes the
//! complementary bound `y - x <= -c - 1` (integers are discrete, so the
//! negation of `<=` is again a `<=`). Canonicalisation guarantees that an
//! atom and its complement map to the *same* Boolean variable with opposite
//! signs, which is what makes theory conflicts usable as learned clauses.

use crate::error::SmtError;
use crate::term::{CmpOp, Term, TermId, TermPool};
use std::fmt;

/// Index of an integer theory variable (dense, including [`ZERO_VAR`]).
pub type IntVarId = u32;

/// The reserved theory variable pinned to value `0`.
pub const ZERO_VAR: IntVarId = 0;

/// A difference bound `x - y <= c` in canonical orientation (`x > y` as ids).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiffAtom {
    pub x: IntVarId,
    pub y: IntVarId,
    pub c: i64,
}

impl DiffAtom {
    /// The complementary bound `!(x - y <= c)  ==  y - x <= -c - 1`.
    pub fn complement(self) -> DiffAtom {
        DiffAtom {
            x: self.y,
            y: self.x,
            c: -self.c - 1,
        }
    }

    /// Evaluate under a concrete assignment lookup.
    pub fn eval(&self, value: impl Fn(IntVarId) -> i64) -> bool {
        value(self.x) - value(self.y) <= self.c
    }
}

impl fmt::Debug for DiffAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(x{} - x{} <= {})", self.x, self.y, self.c)
    }
}

/// A normalised literal over a canonical atom: `positive` selects the atom
/// itself, otherwise its complement holds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NormalizedAtom {
    pub atom: DiffAtom,
    pub positive: bool,
}

/// A linear integer term reduced to `var? + offset` form.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct LinTerm {
    /// Coefficient-1 variable, if any.
    var: Option<u32>,
    /// Additional variable with coefficient -1 (for `x - y` shapes).
    neg_var: Option<u32>,
    offset: i64,
}

/// Result of normalising a comparison: either a single literal over a
/// canonical atom, or a conjunction/disjunction of two such literals
/// (equalities and disequalities split into two bounds).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NormalizedCmp {
    /// Constant truth value (both sides folded).
    Const(bool),
    /// A single difference-bound literal.
    Single(NormalizedAtom),
    /// `a /\ b` — used for equalities.
    Both(NormalizedAtom, NormalizedAtom),
    /// `a \/ b` — used for disequalities.
    Either(NormalizedAtom, NormalizedAtom),
}

/// Map an *interned integer-variable term index* to a dense theory variable.
///
/// Theory variable `ZERO_VAR` is reserved; pool integer variable `i` becomes
/// theory variable `i + 1`.
#[inline]
pub fn theory_var_of_pool_var(pool_idx: u32) -> IntVarId {
    pool_idx + 1
}

fn linearize(pool: &TermPool, t: TermId) -> Result<LinTerm, SmtError> {
    match pool.get(t) {
        Term::IntConst(c) => Ok(LinTerm {
            var: None,
            neg_var: None,
            offset: *c,
        }),
        Term::IntVar(i) => Ok(LinTerm {
            var: Some(*i),
            neg_var: None,
            offset: 0,
        }),
        Term::Add(a, b) => {
            let la = linearize(pool, *a)?;
            let lb = linearize(pool, *b)?;
            combine(la, lb, false)
        }
        Term::Sub(a, b) => {
            let la = linearize(pool, *a)?;
            let lb = linearize(pool, *b)?;
            combine(la, lb, true)
        }
        other => Err(SmtError::NotDifferenceLogic(format!(
            "integer expression {other:?} is not in the difference fragment"
        ))),
    }
}

fn combine(a: LinTerm, b: LinTerm, subtract: bool) -> Result<LinTerm, SmtError> {
    let (b_var, b_neg, b_off) = if subtract {
        (b.neg_var, b.var, -b.offset)
    } else {
        (b.var, b.neg_var, b.offset)
    };
    // Cancel matching +v / -v pairs across operands.
    let mut pos: Vec<u32> = a.var.into_iter().chain(b_var).collect();
    let mut neg: Vec<u32> = a.neg_var.into_iter().chain(b_neg).collect();
    let mut i = 0;
    while i < pos.len() {
        if let Some(j) = neg.iter().position(|&v| v == pos[i]) {
            neg.remove(j);
            pos.remove(i);
        } else {
            i += 1;
        }
    }
    if pos.len() > 1 || neg.len() > 1 {
        return Err(SmtError::NotDifferenceLogic(
            "expression has more than one positive or negative variable".into(),
        ));
    }
    Ok(LinTerm {
        var: pos.first().copied(),
        neg_var: neg.first().copied(),
        offset: a.offset + b_off,
    })
}

/// Orient `x - y <= c` so the canonical atom has `x > y` (as theory-variable
/// ids). If the orientation must flip, the result is the *negative* literal
/// of the flipped atom.
fn orient(x: IntVarId, y: IntVarId, c: i64) -> NormalizedAtom {
    debug_assert_ne!(x, y);
    if x > y {
        NormalizedAtom {
            atom: DiffAtom { x, y, c },
            positive: true,
        }
    } else {
        // x - y <= c  ==  !(y - x <= -c - 1)
        NormalizedAtom {
            atom: DiffAtom {
                x: y,
                y: x,
                c: -c - 1,
            },
            positive: false,
        }
    }
}

/// Normalise a comparison `lhs op rhs` into canonical difference literal(s).
pub fn normalize_cmp(
    pool: &TermPool,
    op: CmpOp,
    lhs: TermId,
    rhs: TermId,
) -> Result<NormalizedCmp, SmtError> {
    let l = linearize(pool, lhs)?;
    let r = linearize(pool, rhs)?;
    // Move everything to the left: L - R op 0.
    let diff = combine(l, r, true)?;
    let (xv, yv, k) = (diff.var, diff.neg_var, diff.offset);
    // Shape: xv - yv + k  op  0, i.e. X - Y op -k with X/Y possibly ZERO.
    let x = xv.map_or(ZERO_VAR, theory_var_of_pool_var);
    let y = yv.map_or(ZERO_VAR, theory_var_of_pool_var);
    let bound = -k;
    if x == y {
        // Fully cancelled: constant comparison `k op 0`.
        return Ok(NormalizedCmp::Const(op.eval(0, bound)));
    }
    let le = |c: i64| orient(x, y, c);
    let ge_as_le = |c: i64| orient(y, x, -c); // x - y >= c == y - x <= -c
    Ok(match op {
        CmpOp::Le => NormalizedCmp::Single(le(bound)),
        CmpOp::Lt => NormalizedCmp::Single(le(bound - 1)),
        CmpOp::Ge => NormalizedCmp::Single(ge_as_le(bound)),
        CmpOp::Gt => NormalizedCmp::Single(ge_as_le(bound + 1)),
        CmpOp::Eq => NormalizedCmp::Both(le(bound), ge_as_le(bound)),
        CmpOp::Ne => NormalizedCmp::Either(le(bound - 1), ge_as_le(bound + 1)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with_two_vars() -> (TermPool, TermId, TermId) {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        (p, x, y)
    }

    /// Evaluate a normalized comparison under concrete values.
    fn eval_norm(n: &NormalizedCmp, val: impl Fn(IntVarId) -> i64 + Copy) -> bool {
        let lit = |l: &NormalizedAtom| l.atom.eval(val) == l.positive;
        match n {
            NormalizedCmp::Const(b) => *b,
            NormalizedCmp::Single(l) => lit(l),
            NormalizedCmp::Both(a, b) => lit(a) && lit(b),
            NormalizedCmp::Either(a, b) => lit(a) || lit(b),
        }
    }

    #[test]
    fn complement_is_involution_on_truth() {
        let a = DiffAtom { x: 2, y: 1, c: 3 };
        let comp = a.complement();
        for vx in -5..5 {
            for vy in -5..5 {
                let val = |v: IntVarId| if v == 2 { vx } else { vy };
                assert_eq!(a.eval(val), !comp.eval(val), "vx={vx} vy={vy}");
            }
        }
    }

    #[test]
    fn all_ops_normalize_truth_preserving() {
        let (p, x, y) = pool_with_two_vars();
        // theory vars: x -> 1, y -> 2
        for op in [
            CmpOp::Le,
            CmpOp::Lt,
            CmpOp::Ge,
            CmpOp::Gt,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            let n = normalize_cmp(&p, op, x, y).unwrap();
            for vx in -3..4i64 {
                for vy in -3..4i64 {
                    let val = |v: IntVarId| match v {
                        ZERO_VAR => 0,
                        1 => vx,
                        2 => vy,
                        _ => unreachable!(),
                    };
                    assert_eq!(
                        eval_norm(&n, val),
                        op.eval(vx, vy),
                        "op={op:?} vx={vx} vy={vy} norm={n:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn unary_bound_uses_zero_var() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let five = p.int_const(5);
        let n = normalize_cmp(&p, CmpOp::Le, x, five).unwrap();
        match n {
            NormalizedCmp::Single(l) => {
                assert!(l.positive);
                assert_eq!(
                    l.atom,
                    DiffAtom {
                        x: 1,
                        y: ZERO_VAR,
                        c: 5
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn offsets_fold_into_bound() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let xp3 = p.add_const(x, 3);
        let ym2 = p.add_const(y, -2);
        // x + 3 <= y - 2   ==   x - y <= -5
        let n = normalize_cmp(&p, CmpOp::Le, xp3, ym2).unwrap();
        for vx in -8..8i64 {
            for vy in -8..8i64 {
                let val = |v: IntVarId| match v {
                    ZERO_VAR => 0,
                    1 => vx,
                    2 => vy,
                    _ => unreachable!(),
                };
                assert_eq!(eval_norm(&n, val), vx + 3 <= vy - 2);
            }
        }
    }

    #[test]
    fn sub_shape_is_accepted() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let d = p.sub(x, y);
        let zero = p.int_const(0);
        let n = normalize_cmp(&p, CmpOp::Gt, d, zero).unwrap();
        for vx in -3..4i64 {
            for vy in -3..4i64 {
                let val = |v: IntVarId| match v {
                    ZERO_VAR => 0,
                    1 => vx,
                    2 => vy,
                    _ => unreachable!(),
                };
                assert_eq!(eval_norm(&n, val), vx - vy > 0);
            }
        }
    }

    #[test]
    fn cancellation_yields_constant() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let xp1 = p.add_const(x, 1);
        // x < x + 1 is always true; the vars cancel.
        let n = normalize_cmp(&p, CmpOp::Lt, x, xp1).unwrap();
        assert_eq!(n, NormalizedCmp::Const(true));
        let n = normalize_cmp(&p, CmpOp::Gt, x, xp1).unwrap();
        assert_eq!(n, NormalizedCmp::Const(false));
    }

    #[test]
    fn two_positive_vars_rejected() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let s = p.add(x, y);
        let zero = p.int_const(0);
        assert!(matches!(
            normalize_cmp(&p, CmpOp::Le, s, zero),
            Err(SmtError::NotDifferenceLogic(_))
        ));
    }

    #[test]
    fn canonical_orientation_merges_complements() {
        let (p, x, y) = pool_with_two_vars();
        // x <= y and x > y must land on the same canonical atom with
        // opposite polarity, so the SAT core sees one variable.
        let a = match normalize_cmp(&p, CmpOp::Le, x, y).unwrap() {
            NormalizedCmp::Single(l) => l,
            o => panic!("{o:?}"),
        };
        let b = match normalize_cmp(&p, CmpOp::Gt, x, y).unwrap() {
            NormalizedCmp::Single(l) => l,
            o => panic!("{o:?}"),
        };
        assert_eq!(a.atom, b.atom);
        assert_ne!(a.positive, b.positive);
    }
}
