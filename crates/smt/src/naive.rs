//! Brute-force reference procedures used as oracles in differential tests.
//!
//! Exponential in every dimension — only ever call these on tiny inputs.

use crate::model::Model;
use crate::term::{TermId, TermPool};

/// Decide a conjunction of Boolean terms by enumerating all integer-variable
/// assignments in `[-bound, bound]` and all Boolean assignments. Returns a
/// witness model if satisfiable.
///
/// Sound and complete only if some model lies within the bound; for
/// difference logic a solution within `[-(n*maxc), n*maxc]` always exists
/// when one exists at all, so pick the bound accordingly.
pub fn brute_force_check(pool: &TermPool, asserted: &[TermId], bound: i64) -> Option<Model> {
    let n_int = pool.num_int_vars();
    let n_bool = pool.num_bool_vars();
    assert!(n_int <= 6, "too many int vars for brute force");
    assert!(n_bool <= 6, "too many bool vars for brute force");
    let width = (2 * bound + 1) as usize;

    let mut int_idx = vec![0usize; n_int];
    loop {
        let ints: Vec<i64> = int_idx.iter().map(|&i| i as i64 - bound).collect();
        for bool_bits in 0..(1u32 << n_bool) {
            let bools: Vec<bool> = (0..n_bool).map(|i| bool_bits >> i & 1 == 1).collect();
            let m = Model {
                ints: ints.clone(),
                bools,
            };
            if asserted.iter().all(|&t| m.eval_bool(pool, t) == Some(true)) {
                return Some(m);
            }
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == n_int {
                return None;
            }
            int_idx[k] += 1;
            if int_idx[k] < width {
                break;
            }
            int_idx[k] = 0;
            k += 1;
        }
    }
}

/// Floyd–Warshall feasibility for a difference-constraint conjunction given
/// as `(x, y, c)` triples meaning `x - y <= c` over `n` variables.
pub fn difference_feasible(n: usize, constraints: &[(u32, u32, i64)]) -> bool {
    let inf = i64::MAX / 4;
    let mut d = vec![vec![inf; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for &(x, y, c) in constraints {
        // x - y <= c: edge y -> x with weight c.
        let (x, y) = (x as usize, y as usize);
        if c < d[y][x] {
            d[y][x] = c;
        }
    }
    for mid in 0..n {
        for a in 0..n {
            for b in 0..n {
                let via = d[a][mid].saturating_add(d[mid][b]);
                if via < d[a][b] {
                    d[a][b] = via;
                }
            }
        }
    }
    (0..n).all(|i| d[i][i] >= 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_finds_simple_model() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let lt = p.lt(x, y);
        let m = brute_force_check(&p, &[lt], 2).expect("satisfiable");
        assert!(m.ints[0] < m.ints[1]);
    }

    #[test]
    fn brute_force_detects_unsat() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let lt = p.lt(x, y);
        let gt = p.gt(x, y);
        assert!(brute_force_check(&p, &[lt, gt], 3).is_none());
    }

    #[test]
    fn brute_force_with_bools() {
        let mut p = TermPool::new();
        let b = p.bool_var("b");
        let nb = p.not(b);
        assert!(brute_force_check(&p, &[b], 0).is_some());
        assert!(brute_force_check(&p, &[b, nb], 0).is_none());
    }

    #[test]
    fn fw_feasible_chain() {
        // x0 < x1 < x2: x0 - x1 <= -1, x1 - x2 <= -1.
        assert!(difference_feasible(3, &[(0, 1, -1), (1, 2, -1)]));
    }

    #[test]
    fn fw_negative_cycle() {
        // x0 < x1 and x1 < x0.
        assert!(!difference_feasible(2, &[(0, 1, -1), (1, 0, -1)]));
    }

    #[test]
    fn fw_zero_cycle_ok() {
        assert!(difference_feasible(2, &[(0, 1, 0), (1, 0, 0)]));
    }
}
