//! Tseitin conversion of the Boolean term DAG into CNF over SAT literals.
//!
//! Each composite Boolean subterm gets one auxiliary SAT variable with
//! both-polarity defining clauses; comparisons are normalised to canonical
//! difference atoms ([`crate::atom`]) which share one SAT variable per atom
//! (an atom and its complement land on the same variable with opposite
//! signs). Root-level conjunctions/disjunctions are flattened directly into
//! clauses without auxiliary variables.

use crate::atom::{normalize_cmp, DiffAtom, NormalizedAtom, NormalizedCmp};
use crate::error::SmtError;
use crate::lit::{Lit, Var};
use crate::term::{Term, TermId, TermPool};
use std::collections::HashMap;

/// Destination for fresh variables, clauses and theory-atom registrations.
///
/// `SatSolver<Idl>` implements this in [`crate::solver`]; tests use a plain
/// collector.
pub trait EncodeSink {
    fn fresh_var(&mut self) -> Var;
    fn emit_clause(&mut self, lits: &[Lit]);
    fn register_atom(&mut self, var: Var, atom: DiffAtom);
}

/// Stateful Tseitin encoder. Caches are persistent so incremental
/// `assert_root` calls across solver queries share subterm encodings.
#[derive(Default)]
pub struct Tseitin {
    lit_of: HashMap<TermId, Lit>,
    atom_var: HashMap<DiffAtom, Var>,
    bool_var: HashMap<u32, Var>,
    true_lit: Option<Lit>,
    /// Journal of cache entries created inside each open scope (innermost
    /// last). Defining clauses emitted inside a scope die with it in the
    /// SAT core, so the corresponding cache entries must die too —
    /// otherwise a later encoding would reuse a literal whose definition
    /// was retracted.
    scopes: Vec<ScopeFrame>,
    /// Number of clauses emitted (stats).
    pub clauses_emitted: u64,
    /// Number of auxiliary variables created (stats).
    pub aux_vars: u64,
}

/// Per-scope undo record; see [`Tseitin::push_scope`].
#[derive(Default)]
struct ScopeFrame {
    lit_keys: Vec<TermId>,
    true_lit_created: bool,
}

impl Tseitin {
    pub fn new() -> Self {
        Tseitin::default()
    }

    /// Number of distinct theory atoms encountered.
    pub fn num_atoms(&self) -> usize {
        self.atom_var.len()
    }

    /// Open an undo scope, paired with [`crate::sat::SatSolver::push_scope`]:
    /// term-to-literal cache entries created from now on are forgotten at
    /// the matching [`Tseitin::pop_scope`]. Atom and Boolean *variable*
    /// mappings persist — they carry no defining clauses, so they stay
    /// valid when the scope's clauses are retracted.
    pub fn push_scope(&mut self) {
        self.scopes.push(ScopeFrame::default());
    }

    /// Drop every cache entry created in the innermost scope.
    pub fn pop_scope(&mut self) {
        let frame = self
            .scopes
            .pop()
            .expect("pop_scope without matching push_scope");
        for k in frame.lit_keys {
            self.lit_of.remove(&k);
        }
        if frame.true_lit_created {
            self.true_lit = None;
        }
    }

    /// Snapshot of (pool Boolean-variable index, SAT variable) pairs, used
    /// for model extraction.
    pub fn bool_vars_snapshot(&self) -> Vec<(u32, Var)> {
        self.bool_var.iter().map(|(&i, &v)| (i, v)).collect()
    }

    /// The SAT literal equivalent to `t` (creating definitions as needed).
    pub fn lit_for<S: EncodeSink>(
        &mut self,
        pool: &TermPool,
        t: TermId,
        sink: &mut S,
    ) -> Result<Lit, SmtError> {
        if let Some(&l) = self.lit_of.get(&t) {
            return Ok(l);
        }
        let lit = match pool.get(t).clone() {
            Term::True => self.const_true(sink),
            Term::False => !self.const_true(sink),
            Term::BoolVar(idx) => {
                let v = *self.bool_var.entry(idx).or_insert_with(|| sink.fresh_var());
                v.pos()
            }
            Term::Not(inner) => {
                let l = self.lit_for(pool, inner, sink)?;
                !l
            }
            Term::And(kids) => {
                let lits = self.lits_for(pool, &kids, sink)?;
                self.define_and(&lits, sink)
            }
            Term::Or(kids) => {
                let lits = self.lits_for(pool, &kids, sink)?;
                self.define_or(&lits, sink)
            }
            Term::Implies(a, b) => {
                let la = self.lit_for(pool, a, sink)?;
                let lb = self.lit_for(pool, b, sink)?;
                self.define_or(&[!la, lb], sink)
            }
            Term::Iff(a, b) => {
                let la = self.lit_for(pool, a, sink)?;
                let lb = self.lit_for(pool, b, sink)?;
                self.define_iff(la, lb, sink)
            }
            Term::Ite(c, th, el) => {
                let lc = self.lit_for(pool, c, sink)?;
                let lt = self.lit_for(pool, th, sink)?;
                let le = self.lit_for(pool, el, sink)?;
                self.define_ite(lc, lt, le, sink)
            }
            Term::Cmp(op, a, b) => match normalize_cmp(pool, op, a, b)? {
                NormalizedCmp::Const(true) => self.const_true(sink),
                NormalizedCmp::Const(false) => !self.const_true(sink),
                NormalizedCmp::Single(na) => self.atom_lit(na, sink),
                NormalizedCmp::Both(na, nb) => {
                    let la = self.atom_lit(na, sink);
                    let lb = self.atom_lit(nb, sink);
                    self.define_and(&[la, lb], sink)
                }
                NormalizedCmp::Either(na, nb) => {
                    let la = self.atom_lit(na, sink);
                    let lb = self.atom_lit(nb, sink);
                    self.define_or(&[la, lb], sink)
                }
            },
            Term::IntVar(_) | Term::IntConst(_) | Term::Add(..) | Term::Sub(..) => {
                return Err(SmtError::SortMismatch(format!(
                    "integer term {} used in Boolean position",
                    pool.display(t)
                )))
            }
        };
        self.lit_of.insert(t, lit);
        if let Some(frame) = self.scopes.last_mut() {
            frame.lit_keys.push(t);
        }
        Ok(lit)
    }

    /// Assert `t` at the root. Top-level conjunctions decompose into their
    /// conjuncts; top-level disjunctions become one clause.
    pub fn assert_root<S: EncodeSink>(
        &mut self,
        pool: &TermPool,
        t: TermId,
        sink: &mut S,
    ) -> Result<(), SmtError> {
        match pool.get(t).clone() {
            Term::And(kids) => {
                for k in kids.iter() {
                    self.assert_root(pool, *k, sink)?;
                }
                Ok(())
            }
            Term::Or(kids) => {
                let lits = self.lits_for(pool, &kids, sink)?;
                self.emit(&lits, sink);
                Ok(())
            }
            Term::Implies(a, b) => {
                let la = self.lit_for(pool, a, sink)?;
                let lb = self.lit_for(pool, b, sink)?;
                self.emit(&[!la, lb], sink);
                Ok(())
            }
            _ => {
                let l = self.lit_for(pool, t, sink)?;
                self.emit(&[l], sink);
                Ok(())
            }
        }
    }

    fn lits_for<S: EncodeSink>(
        &mut self,
        pool: &TermPool,
        kids: &[TermId],
        sink: &mut S,
    ) -> Result<Vec<Lit>, SmtError> {
        kids.iter().map(|&k| self.lit_for(pool, k, sink)).collect()
    }

    fn emit<S: EncodeSink>(&mut self, lits: &[Lit], sink: &mut S) {
        self.clauses_emitted += 1;
        sink.emit_clause(lits);
    }

    fn const_true<S: EncodeSink>(&mut self, sink: &mut S) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = sink.fresh_var();
        self.aux_vars += 1;
        let l = v.pos();
        self.emit(&[l], sink);
        self.true_lit = Some(l);
        if let Some(frame) = self.scopes.last_mut() {
            frame.true_lit_created = true;
        }
        l
    }

    fn atom_lit<S: EncodeSink>(&mut self, na: NormalizedAtom, sink: &mut S) -> Lit {
        let var = match self.atom_var.get(&na.atom) {
            Some(&v) => v,
            None => {
                let v = sink.fresh_var();
                self.atom_var.insert(na.atom, v);
                sink.register_atom(v, na.atom);
                v
            }
        };
        var.lit(na.positive)
    }

    fn define_and<S: EncodeSink>(&mut self, lits: &[Lit], sink: &mut S) -> Lit {
        debug_assert!(!lits.is_empty());
        if lits.len() == 1 {
            return lits[0];
        }
        let g = sink.fresh_var();
        self.aux_vars += 1;
        // g -> l_i
        for &l in lits {
            self.emit(&[g.neg(), l], sink);
        }
        // (/\ l_i) -> g
        let mut big: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        big.push(g.pos());
        self.emit(&big, sink);
        g.pos()
    }

    fn define_or<S: EncodeSink>(&mut self, lits: &[Lit], sink: &mut S) -> Lit {
        debug_assert!(!lits.is_empty());
        if lits.len() == 1 {
            return lits[0];
        }
        let g = sink.fresh_var();
        self.aux_vars += 1;
        // l_i -> g
        for &l in lits {
            self.emit(&[!l, g.pos()], sink);
        }
        // g -> (\/ l_i)
        let mut big: Vec<Lit> = lits.to_vec();
        big.insert(0, g.neg());
        self.emit(&big, sink);
        g.pos()
    }

    fn define_iff<S: EncodeSink>(&mut self, a: Lit, b: Lit, sink: &mut S) -> Lit {
        let g = sink.fresh_var();
        self.aux_vars += 1;
        self.emit(&[g.neg(), !a, b], sink);
        self.emit(&[g.neg(), a, !b], sink);
        self.emit(&[g.pos(), a, b], sink);
        self.emit(&[g.pos(), !a, !b], sink);
        g.pos()
    }

    fn define_ite<S: EncodeSink>(&mut self, c: Lit, t: Lit, e: Lit, sink: &mut S) -> Lit {
        let g = sink.fresh_var();
        self.aux_vars += 1;
        self.emit(&[g.neg(), !c, t], sink);
        self.emit(&[g.neg(), c, e], sink);
        self.emit(&[g.pos(), !c, !t], sink);
        self.emit(&[g.pos(), c, !e], sink);
        g.pos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::CmpOp;

    /// Collector sink for inspecting emitted CNF.
    #[derive(Default)]
    struct Collect {
        nvars: u32,
        clauses: Vec<Vec<Lit>>,
        atoms: Vec<(Var, DiffAtom)>,
    }

    impl EncodeSink for Collect {
        fn fresh_var(&mut self) -> Var {
            let v = Var(self.nvars);
            self.nvars += 1;
            v
        }
        fn emit_clause(&mut self, lits: &[Lit]) {
            self.clauses.push(lits.to_vec());
        }
        fn register_atom(&mut self, var: Var, atom: DiffAtom) {
            self.atoms.push((var, atom));
        }
    }

    /// Brute-force: does the CNF have a model with the given var count?
    fn cnf_models(c: &Collect) -> Vec<Vec<bool>> {
        let n = c.nvars as usize;
        assert!(n <= 16, "too many vars for brute force");
        let mut models = Vec::new();
        for bits in 0..(1u32 << n) {
            let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let ok = c
                .clauses
                .iter()
                .all(|cl| cl.iter().any(|l| assign[l.var().index()] == l.is_pos()));
            if ok {
                models.push(assign);
            }
        }
        models
    }

    #[test]
    fn root_and_splits_into_units() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let t = p.and2(a, b);
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        ts.assert_root(&p, t, &mut sink).unwrap();
        // Two unit clauses, no aux var.
        assert_eq!(sink.clauses.len(), 2);
        assert!(sink.clauses.iter().all(|c| c.len() == 1));
        assert_eq!(sink.nvars, 2);
    }

    #[test]
    fn root_or_is_single_clause() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let c = p.bool_var("c");
        let t = p.or([a, b, c]);
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        ts.assert_root(&p, t, &mut sink).unwrap();
        assert_eq!(sink.clauses.len(), 1);
        assert_eq!(sink.clauses[0].len(), 3);
    }

    #[test]
    fn tseitin_equisatisfiable_for_xor_shape() {
        // (a \/ b) /\ (!a \/ !b): models must be exactly a != b projections.
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let na = p.not(a);
        let nb = p.not(b);
        let l = p.or2(a, b);
        let r = p.or2(na, nb);
        let t = p.and2(l, r);
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        ts.assert_root(&p, t, &mut sink).unwrap();
        let models = cnf_models(&sink);
        assert!(!models.is_empty());
        // Vars 0 and 1 are a and b (created in traversal order).
        for m in &models {
            assert_ne!(m[0], m[1], "xor violated by {m:?}");
        }
    }

    #[test]
    fn shared_subterms_are_encoded_once() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let ab = p.and2(a, b);
        let t1 = p.or2(ab, a);
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        let l1 = ts.lit_for(&p, ab, &mut sink).unwrap();
        ts.assert_root(&p, t1, &mut sink).unwrap();
        let l2 = ts.lit_for(&p, ab, &mut sink).unwrap();
        assert_eq!(l1, l2, "same subterm must map to the same literal");
    }

    #[test]
    fn atom_and_negation_share_one_var() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let le = p.cmp(CmpOp::Le, x, y);
        let gt = p.cmp(CmpOp::Gt, x, y);
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        let l1 = ts.lit_for(&p, le, &mut sink).unwrap();
        let l2 = ts.lit_for(&p, gt, &mut sink).unwrap();
        assert_eq!(l1.var(), l2.var());
        assert_ne!(l1, l2);
        assert_eq!(sink.atoms.len(), 1, "one canonical atom expected");
    }

    #[test]
    fn equality_splits_into_two_atoms() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let eq = p.cmp(CmpOp::Eq, x, y);
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        let _ = ts.lit_for(&p, eq, &mut sink).unwrap();
        assert_eq!(sink.atoms.len(), 2, "x<=y and y<=x atoms");
    }

    #[test]
    fn integer_term_in_bool_position_errors() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        assert!(matches!(
            ts.lit_for(&p, x, &mut sink),
            Err(SmtError::SortMismatch(_))
        ));
    }

    #[test]
    fn iff_definition_is_correct() {
        // Assert (a <-> b) and brute-force: surviving models have a == b.
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let t = p.iff(a, b);
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        ts.assert_root(&p, t, &mut sink).unwrap();
        for m in cnf_models(&sink) {
            assert_eq!(m[0], m[1]);
        }
    }

    #[test]
    fn ite_definition_is_correct() {
        let mut p = TermPool::new();
        let c = p.bool_var("c");
        let t = p.bool_var("t");
        let e = p.bool_var("e");
        let ite = p.ite(c, t, e);
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        ts.assert_root(&p, ite, &mut sink).unwrap();
        // vars 0,1,2 = c,t,e in creation order.
        for m in cnf_models(&sink) {
            let expect = if m[0] { m[1] } else { m[2] };
            assert!(expect, "ite model {m:?} violates semantics");
        }
    }

    #[test]
    fn constant_comparison_folds_to_const_lit() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let xp1 = p.add_const(x, 1);
        // x < x+1 folds at normalisation.
        let t = p.cmp(CmpOp::Lt, x, xp1);
        let mut sink = Collect::default();
        let mut ts = Tseitin::new();
        ts.assert_root(&p, t, &mut sink).unwrap();
        assert_eq!(sink.atoms.len(), 0);
        let models = cnf_models(&sink);
        assert!(!models.is_empty(), "trivially-true assertion must stay SAT");
    }
}
