//! The user-facing SMT solver facade: terms in, verdict and model out.
//!
//! [`SmtSolver`] owns a [`TermPool`], a [`Tseitin`] encoder and a CDCL core
//! with the difference-logic theory attached. Assertions are encoded
//! incrementally; `check` may be called repeatedly with further assertions
//! in between (the all-SAT driver in the `symbolic` crate relies on this).

use crate::atom::{theory_var_of_pool_var, DiffAtom};
use crate::cnf::{EncodeSink, Tseitin};
use crate::error::SmtError;
use crate::idl::Idl;
use crate::lit::{Lit, Var};
use crate::model::Model;
use crate::sat::{SatSolver, SolveResult};
use crate::stats::Stats;
use crate::term::{TermId, TermPool};

/// Verdict of an SMT `check`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    Sat,
    Unsat,
    /// Budget exhausted, or the encoder rejected an assertion (see
    /// [`SmtSolver::encode_error`]).
    Unknown,
}

impl EncodeSink for SatSolver<Idl> {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }
    fn emit_clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
    }
    fn register_atom(&mut self, var: Var, atom: DiffAtom) {
        self.theory_mut().register_atom(var, atom);
    }
}

/// An SMT solver for Boolean combinations of integer difference constraints.
pub struct SmtSolver {
    pool: TermPool,
    sat: SatSolver<Idl>,
    tseitin: Tseitin,
    asserted: Vec<TermId>,
    encode_error: Option<SmtError>,
    model: Option<Model>,
    /// SAT literals of the assumptions from the most recent check (aligned
    /// with the caller's assumption slice), for core mapping.
    assumption_lits: Vec<Lit>,
    /// Length of `asserted` at each open scope, for the pop-time rollback.
    scope_asserted_len: Vec<usize>,
}

impl Default for SmtSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SmtSolver {
    pub fn new() -> Self {
        SmtSolver {
            pool: TermPool::new(),
            sat: SatSolver::new(Idl::new()),
            tseitin: Tseitin::new(),
            asserted: Vec::new(),
            encode_error: None,
            model: None,
            assumption_lits: Vec::new(),
            scope_asserted_len: Vec::new(),
        }
    }

    // ----- term construction (delegates to the pool) -----

    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    pub fn int_var(&mut self, name: impl Into<String>) -> TermId {
        self.pool.int_var(name)
    }

    pub fn bool_var(&mut self, name: impl Into<String>) -> TermId {
        self.pool.bool_var(name)
    }

    pub fn int_const(&mut self, c: i64) -> TermId {
        self.pool.int_const(c)
    }

    pub fn tru(&self) -> TermId {
        self.pool.tru()
    }

    pub fn fls(&self) -> TermId {
        self.pool.fls()
    }

    pub fn not(&mut self, t: TermId) -> TermId {
        self.pool.not(t)
    }

    pub fn and(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId {
        self.pool.and(ts)
    }

    pub fn or(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId {
        self.pool.or(ts)
    }

    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.and2(a, b)
    }

    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.or2(a, b)
    }

    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.implies(a, b)
    }

    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.iff(a, b)
    }

    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.pool.ite(c, t, e)
    }

    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.le(a, b)
    }

    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.lt(a, b)
    }

    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.ge(a, b)
    }

    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.gt(a, b)
    }

    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.eq(a, b)
    }

    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.ne(a, b)
    }

    pub fn eq_const(&mut self, t: TermId, c: i64) -> TermId {
        self.pool.eq_const(t, c)
    }

    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.add(a, b)
    }

    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.sub(a, b)
    }

    pub fn add_const(&mut self, t: TermId, c: i64) -> TermId {
        self.pool.add_const(t, c)
    }

    /// Pretty-print a term.
    pub fn display(&self, t: TermId) -> String {
        self.pool.display(t)
    }

    // ----- assertion and solving -----

    /// Assert a Boolean term. Encoding happens immediately; errors are
    /// deferred to `check` (which then answers `Unknown`).
    pub fn assert_term(&mut self, t: TermId) {
        self.asserted.push(t);
        self.model = None;
        if self.encode_error.is_some() {
            return;
        }
        if let Err(e) = self.tseitin.assert_root(&self.pool, t, &mut self.sat) {
            self.encode_error = Some(e);
        }
    }

    /// The error that made the last `check` answer `Unknown`, if any.
    pub fn encode_error(&self) -> Option<&SmtError> {
        self.encode_error.as_ref()
    }

    /// Decide satisfiability of the asserted conjunction.
    pub fn check(&mut self) -> SatResult {
        self.check_assuming(&[])
    }

    /// Decide satisfiability under extra assumptions (Boolean terms that are
    /// not permanently asserted).
    pub fn check_assuming(&mut self, assumptions: &[TermId]) -> SatResult {
        self.model = None;
        if self.encode_error.is_some() {
            return SatResult::Unknown;
        }
        let mut lits = Vec::with_capacity(assumptions.len());
        for &t in assumptions {
            match self.tseitin.lit_for(&self.pool, t, &mut self.sat) {
                Ok(l) => lits.push(l),
                Err(e) => {
                    self.encode_error = Some(e);
                    return SatResult::Unknown;
                }
            }
        }
        self.assumption_lits = lits.clone();
        let mut span = trace::span("smt.solve");
        let before = *self.sat.stats();
        let result = match self.sat.solve_with_assumptions(&lits) {
            SolveResult::Sat => {
                self.extract_model();
                SatResult::Sat
            }
            SolveResult::Unsat => SatResult::Unsat,
            SolveResult::Unknown => SatResult::Unknown,
        };
        if span.is_recording() {
            let d = self.sat.stats().delta(&before);
            span.arg("conflicts", d.conflicts)
                .arg("propagations", d.propagations)
                .arg("decisions", d.decisions)
                .arg("restarts", d.restarts)
                .arg("assumptions", lits.len() as u64)
                .arg("sat", matches!(result, SatResult::Sat) as u64);
        }
        result
    }

    /// After an UNSAT answer from [`SmtSolver::check_assuming`]: the subset
    /// of the assumption *terms* that is jointly inconsistent with the
    /// asserted formula (empty when the permanent assertions alone are
    /// UNSAT).
    pub fn unsat_core_terms(&self, assumptions: &[TermId]) -> Vec<TermId> {
        let core = self.sat.unsat_core();
        assumptions
            .iter()
            .zip(&self.assumption_lits)
            .filter(|(_, lit)| core.contains(lit))
            .map(|(&t, _)| t)
            .collect()
    }

    fn extract_model(&mut self) {
        let n_int = self.pool.num_int_vars();
        let idl = self.sat.theory();
        let ints: Vec<i64> = (0..n_int as u32)
            .map(|i| idl.value_of(theory_var_of_pool_var(i)))
            .collect();
        // Boolean variables: read the SAT model through the Tseitin cache,
        // which maps pool bool-var indices to SAT vars. Variables the
        // encoder never saw stay at the `false` default.
        let mut bools = vec![false; self.pool.num_bool_vars()];
        for (pool_idx, sat_var) in self.tseitin.bool_vars_snapshot() {
            if let Some(b) = self.sat.model_value(sat_var).as_bool() {
                if (pool_idx as usize) < bools.len() {
                    bools[pool_idx as usize] = b;
                }
            }
        }
        let model = Model { ints, bools };
        #[cfg(debug_assertions)]
        {
            for &t in &self.asserted {
                debug_assert_ne!(
                    model.eval_bool(&self.pool, t),
                    Some(false),
                    "model does not satisfy asserted term {}",
                    self.pool.display(t)
                );
            }
        }
        self.model = Some(model);
    }

    /// The model from the last `Sat` answer.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Search statistics.
    pub fn stats(&self) -> &Stats {
        self.sat.stats()
    }

    /// Sampled search-shape distributions (see [`crate::Introspect`]).
    pub fn introspect(&self) -> &crate::Introspect {
        self.sat.introspect()
    }

    /// Report the solver's lifetime counters into `reg` under the stable
    /// `mcapi_smt_*` metric names (see [`Stats::record`]).
    pub fn record_metrics(&self, reg: &mut metrics::Registry, labels: &[(&str, &str)]) {
        self.stats().record(reg, labels);
    }

    /// Size of the generated SAT problem so far.
    pub fn num_sat_vars(&self) -> usize {
        self.sat.num_vars()
    }

    pub fn num_sat_clauses(&self) -> usize {
        self.sat.num_clauses()
    }

    /// Number of distinct theory atoms created by the encoder.
    pub fn num_theory_atoms(&self) -> usize {
        self.tseitin.num_atoms()
    }

    /// Limit conflicts for subsequent checks (None = unlimited).
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.sat.set_conflict_budget(budget);
    }

    /// Wall-clock deadline for subsequent checks: a check still searching
    /// at the deadline answers `Unknown` instead of overshooting (None =
    /// unlimited). This is the per-check half of the checker's
    /// `budget_ms`; the caller decides how much of its budget each check
    /// may spend.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.sat.set_deadline(deadline);
    }

    /// Open an assertion scope: everything asserted until the matching
    /// [`SmtSolver::pop_scope`] — including blocking clauses added by
    /// [`SmtSolver::block_model_values`] — is retracted as a group at the
    /// pop, while learned clauses that do not depend on the scope survive.
    /// Used by the all-SAT and refinement drivers so per-query blocking
    /// clauses do not permanently pollute the clause database.
    pub fn push_scope(&mut self) {
        self.scope_asserted_len.push(self.asserted.len());
        self.tseitin.push_scope();
        self.sat.push_scope();
    }

    /// Close the innermost scope opened by [`SmtSolver::push_scope`].
    pub fn pop_scope(&mut self) {
        let n = self
            .scope_asserted_len
            .pop()
            .expect("pop_scope without matching push_scope");
        self.asserted.truncate(n);
        self.sat.pop_scope();
        self.tseitin.pop_scope();
        self.model = None;
    }

    /// Number of currently open scopes.
    pub fn num_scopes(&self) -> usize {
        self.scope_asserted_len.len()
    }

    /// Block the current model's values of the given integer terms: asserts
    /// `NOT (t1 = v1 /\ t2 = v2 /\ ...)`, the standard all-SAT step.
    ///
    /// Returns `false` if there is no current model.
    pub fn block_model_values(&mut self, terms: &[TermId]) -> bool {
        let Some(model) = self.model.clone() else {
            return false;
        };
        let mut eqs = Vec::with_capacity(terms.len());
        for &t in terms {
            let Some(v) = model.eval_int(&self.pool, t) else {
                return false;
            };
            let eq = self.eq_const(t, v);
            eqs.push(eq);
        }
        let conj = self.and(eqs);
        let blocked = self.not(conj);
        self.assert_term(blocked);
        true
    }

    /// Enumerate all distinct value tuples of `terms` across models, up to
    /// `limit`. Mutates the solver (adds blocking clauses).
    pub fn enumerate_models(&mut self, terms: &[TermId], limit: usize) -> Vec<Vec<i64>> {
        let mut found = Vec::new();
        while found.len() < limit {
            match self.check() {
                SatResult::Sat => {
                    let model = self.model.clone().expect("model after SAT");
                    let tuple: Vec<i64> = terms
                        .iter()
                        .map(|&t| model.eval_int(&self.pool, t).expect("int term"))
                        .collect();
                    found.push(tuple);
                    if !self.block_model_values(terms) {
                        break;
                    }
                }
                _ => break,
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_and_model() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let five = s.int_const(5);
        let a = s.lt(x, five);
        s.assert_term(a);
        assert_eq!(s.check(), SatResult::Sat);
        let m = s.model().unwrap();
        assert!(m.eval_bool(s.pool(), a).unwrap());
        assert!(m.ints[0] < 5);
    }

    #[test]
    fn ordering_cycle_unsat() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let y = s.int_var("y");
        let z = s.int_var("z");
        let c1 = s.lt(x, y);
        let c2 = s.lt(y, z);
        let c3 = s.lt(z, x);
        s.assert_term(c1);
        s.assert_term(c2);
        assert_eq!(s.check(), SatResult::Sat);
        s.assert_term(c3);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn disjunction_forces_theory_choice() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let y = s.int_var("y");
        // (x < y \/ y < x) /\ x = y  is UNSAT.
        let lt = s.lt(x, y);
        let gt = s.lt(y, x);
        let either = s.or2(lt, gt);
        let eqxy = s.eq(x, y);
        s.assert_term(either);
        assert_eq!(s.check(), SatResult::Sat);
        s.assert_term(eqxy);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn equality_constrains_model() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let y = s.int_var("y");
        let e = s.eq(x, y);
        let b = s.eq_const(x, 7);
        s.assert_term(e);
        s.assert_term(b);
        assert_eq!(s.check(), SatResult::Sat);
        let m = s.model().unwrap();
        assert_eq!(m.ints[0], 7);
        assert_eq!(m.ints[1], 7);
    }

    #[test]
    fn disequality_with_bounds() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        // 0 <= x <= 1 and x != 0 and x != 1: UNSAT over integers.
        let zero = s.int_const(0);
        let one = s.int_const(1);
        let c1 = s.ge(x, zero);
        let c2 = s.le(x, one);
        let c3 = s.ne(x, zero);
        s.assert_term(c1);
        s.assert_term(c2);
        s.assert_term(c3);
        assert_eq!(s.check(), SatResult::Sat);
        let m = s.model().unwrap();
        assert_eq!(m.ints[0], 1, "only x=1 remains");
        let c4 = s.ne(x, one);
        s.assert_term(c4);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn bool_vars_participate() {
        let mut s = SmtSolver::new();
        let p = s.bool_var("p");
        let x = s.int_var("x");
        let three = s.int_const(3);
        let lt = s.lt(x, three);
        // p <-> (x < 3), p = true, therefore x < 3.
        let link = s.iff(p, lt);
        s.assert_term(link);
        s.assert_term(p);
        assert_eq!(s.check(), SatResult::Sat);
        let m = s.model().unwrap();
        assert!(m.ints[0] < 3);
        assert!(m.bools[0]);
    }

    #[test]
    fn unsat_core_names_guilty_assumptions() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let y = s.int_var("y");
        let zero = s.int_const(0);
        // Permanent: x > 0.
        let base = s.gt(x, zero);
        s.assert_term(base);
        // Assumptions: (y > 5) [innocent], (x < 0) [conflicts with base].
        let five = s.int_const(5);
        let innocent = s.gt(y, five);
        let guilty = s.lt(x, zero);
        let assumptions = [innocent, guilty];
        assert_eq!(s.check_assuming(&assumptions), SatResult::Unsat);
        let core = s.unsat_core_terms(&assumptions);
        assert!(
            core.contains(&guilty),
            "core must name the conflicting assumption"
        );
        assert!(
            !core.contains(&innocent),
            "core must not include the innocent one"
        );
    }

    #[test]
    fn check_assuming_does_not_persist() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let zero = s.int_const(0);
        let pos = s.gt(x, zero);
        let negt = s.lt(x, zero);
        s.assert_term(pos);
        assert_eq!(s.check_assuming(&[negt]), SatResult::Unsat);
        // The assumption is gone afterwards.
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn enumerate_models_finds_all_values() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let zero = s.int_const(0);
        let three = s.int_const(3);
        let c1 = s.ge(x, zero);
        let c2 = s.le(x, three);
        s.assert_term(c1);
        s.assert_term(c2);
        let mut vals: Vec<i64> = s
            .enumerate_models(&[x], 100)
            .into_iter()
            .map(|v| v[0])
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scoped_assertions_retract_on_pop() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let zero = s.int_const(0);
        let pos = s.gt(x, zero);
        s.assert_term(pos);
        s.push_scope();
        let neg = s.lt(x, zero);
        s.assert_term(neg);
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop_scope();
        assert_eq!(s.check(), SatResult::Sat, "popped assertion must not leak");
        let m = s.model().unwrap();
        assert!(m.ints[0] > 0);
    }

    #[test]
    fn scoped_enumeration_leaves_no_blocks_behind() {
        // enumerate_models blocks values; run it inside a scope twice and
        // demand the same model count both times.
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let zero = s.int_const(0);
        let three = s.int_const(3);
        let c1 = s.ge(x, zero);
        let c2 = s.le(x, three);
        s.assert_term(c1);
        s.assert_term(c2);
        for round in 0..2 {
            s.push_scope();
            let vals = s.enumerate_models(&[x], 100);
            assert_eq!(vals.len(), 4, "round {round}: expected 0..=3");
            s.pop_scope();
        }
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn terms_reencode_after_scope_pop() {
        // A term first encoded inside a scope loses its definition at the
        // pop; asserting it again afterwards must re-encode it soundly.
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let y = s.int_var("y");
        let lt = s.lt(x, y);
        let gt = s.lt(y, x);
        let either = s.or2(lt, gt); // composite: gets a scoped definition
        s.push_scope();
        s.assert_term(either);
        assert_eq!(s.check(), SatResult::Sat);
        s.pop_scope();
        // Re-assert the very same TermId permanently, then contradict it.
        s.assert_term(either);
        let eq = s.eq(x, y);
        s.assert_term(eq);
        assert_eq!(
            s.check(),
            SatResult::Unsat,
            "re-encoded disjunction lost its defining clauses"
        );
    }

    #[test]
    fn check_deadline_degrades_to_unknown() {
        // A cyclic chain hidden behind fresh Boolean guards, so deciding is
        // required (pure level-0 propagation would answer before the
        // deadline check could fire).
        let mut s = SmtSolver::new();
        let vars: Vec<TermId> = (0..40).map(|i| s.int_var(format!("d{i}"))).collect();
        for (i, w) in vars.windows(2).enumerate() {
            let c = s.lt(w[0], w[1]);
            let p = s.bool_var(format!("p{i}"));
            let np = s.not(p);
            let if_p = s.implies(p, c);
            let if_np = s.implies(np, c);
            s.assert_term(if_p);
            s.assert_term(if_np);
        }
        let back = s.lt(vars[39], vars[0]);
        s.assert_term(back);
        s.set_deadline(Some(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        ));
        assert_eq!(s.check(), SatResult::Unknown);
        s.set_deadline(None);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn non_difference_logic_is_reported() {
        let mut s = SmtSolver::new();
        let x = s.int_var("x");
        let y = s.int_var("y");
        let sum = s.add(x, y); // x + y is outside the fragment
        let zero = s.int_const(0);
        let bad = s.le(sum, zero);
        s.assert_term(bad);
        assert_eq!(s.check(), SatResult::Unknown);
        assert!(s.encode_error().is_some());
    }

    #[test]
    fn incremental_assertions_accumulate() {
        let mut s = SmtSolver::new();
        let vars: Vec<TermId> = (0..10).map(|i| s.int_var(format!("v{i}"))).collect();
        for w in vars.windows(2) {
            let c = s.lt(w[0], w[1]);
            s.assert_term(c);
            assert_eq!(s.check(), SatResult::Sat);
        }
        // Close the cycle.
        let c = s.lt(vars[9], vars[0]);
        s.assert_term(c);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn model_respects_strict_chains() {
        let mut s = SmtSolver::new();
        let vars: Vec<TermId> = (0..6).map(|i| s.int_var(format!("c{i}"))).collect();
        for w in vars.windows(2) {
            let c = s.lt(w[0], w[1]);
            s.assert_term(c);
        }
        assert_eq!(s.check(), SatResult::Sat);
        let m = s.model().unwrap();
        for w in m.ints.windows(2) {
            assert!(w[0] < w[1], "chain violated: {:?}", m.ints);
        }
    }
}
