//! Hash-consed term DAG for the `Bool`/`Int` fragment used by the encoder.
//!
//! Terms are immutable and deduplicated: building the same term twice yields
//! the same [`TermId`]. Only the fragment required by the PPoPP'11 encoding
//! is supported — Boolean structure over integer *difference* comparisons.
//! Arbitrary linear arithmetic is rejected at lowering time (see
//! [`crate::atom`]), which keeps the theory solver a pure difference-logic
//! engine, exactly the fragment Yices decides for the paper's problems.

use std::collections::HashMap;
use std::fmt;

/// Index of a term in its [`TermPool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Comparison operators over integer terms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `lhs <= rhs`
    Le,
    /// `lhs < rhs`
    Lt,
    /// `lhs >= rhs`
    Ge,
    /// `lhs > rhs`
    Gt,
    /// `lhs = rhs`
    Eq,
    /// `lhs != rhs`
    Ne,
}

impl CmpOp {
    /// The operator with swapped operands (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// The negated operator (`!(a op b)` ⇔ `a op.negate() b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Evaluate on concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Le => a <= b,
            CmpOp::Lt => a < b,
            CmpOp::Ge => a >= b,
            CmpOp::Gt => a > b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A node of the term DAG.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// Boolean constant `true`.
    True,
    /// Boolean constant `false`.
    False,
    /// Free Boolean variable (index into the pool's name table).
    BoolVar(u32),
    /// Free integer variable (index into the pool's name table).
    IntVar(u32),
    /// Integer constant.
    IntConst(i64),
    /// Boolean negation.
    Not(TermId),
    /// N-ary conjunction (children sorted, deduplicated).
    And(Box<[TermId]>),
    /// N-ary disjunction (children sorted, deduplicated).
    Or(Box<[TermId]>),
    /// Implication `a -> b`.
    Implies(TermId, TermId),
    /// Biconditional `a <-> b`.
    Iff(TermId, TermId),
    /// Boolean if-then-else.
    Ite(TermId, TermId, TermId),
    /// Integer addition.
    Add(TermId, TermId),
    /// Integer subtraction.
    Sub(TermId, TermId),
    /// Comparison atom over integer terms.
    Cmp(CmpOp, TermId, TermId),
}

/// The hash-consing arena for terms, plus variable name tables.
#[derive(Default)]
pub struct TermPool {
    terms: Vec<Term>,
    dedup: HashMap<Term, TermId>,
    bool_names: Vec<String>,
    int_names: Vec<String>,
}

impl TermPool {
    pub fn new() -> Self {
        let mut pool = TermPool::default();
        // Slot 0 and 1 are pinned to the Boolean constants so callers can
        // rely on `TermId(0) == true`, `TermId(1) == false`.
        pool.intern(Term::True);
        pool.intern(Term::False);
        pool
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Look up a term node by id.
    #[inline]
    pub fn get(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.dedup.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.dedup.insert(t, id);
        id
    }

    /// The constant `true`.
    pub fn tru(&self) -> TermId {
        TermId(0)
    }

    /// The constant `false`.
    pub fn fls(&self) -> TermId {
        TermId(1)
    }

    /// Fresh (or looked-up) Boolean variable with the given display name.
    ///
    /// Names are not required to be unique; each call creates a new
    /// variable. Use the returned id for all structural references.
    pub fn bool_var(&mut self, name: impl Into<String>) -> TermId {
        let idx = self.bool_names.len() as u32;
        self.bool_names.push(name.into());
        // Bypass dedup: every declared variable is distinct even if names collide.
        let id = TermId(self.terms.len() as u32);
        self.terms.push(Term::BoolVar(idx));
        id
    }

    /// Fresh integer variable with the given display name.
    pub fn int_var(&mut self, name: impl Into<String>) -> TermId {
        let idx = self.int_names.len() as u32;
        self.int_names.push(name.into());
        let id = TermId(self.terms.len() as u32);
        self.terms.push(Term::IntVar(idx));
        id
    }

    /// Number of declared integer variables.
    pub fn num_int_vars(&self) -> usize {
        self.int_names.len()
    }

    /// Number of declared Boolean variables.
    pub fn num_bool_vars(&self) -> usize {
        self.bool_names.len()
    }

    /// Display name of a Boolean variable index.
    pub fn bool_name(&self, idx: u32) -> &str {
        &self.bool_names[idx as usize]
    }

    /// Display name of an integer variable index.
    pub fn int_name(&self, idx: u32) -> &str {
        &self.int_names[idx as usize]
    }

    /// Integer constant.
    pub fn int_const(&mut self, c: i64) -> TermId {
        self.intern(Term::IntConst(c))
    }

    /// Boolean negation with constant folding and double-negation removal.
    pub fn not(&mut self, t: TermId) -> TermId {
        if t == self.tru() {
            return self.fls();
        }
        if t == self.fls() {
            return self.tru();
        }
        if let Term::Not(inner) = self.get(t) {
            return *inner;
        }
        if let Term::Cmp(op, a, b) = self.get(t).clone() {
            return self.cmp(op.negate(), a, b);
        }
        self.intern(Term::Not(t))
    }

    /// N-ary conjunction with flattening, deduplication and constant folding.
    pub fn and(&mut self, children: impl IntoIterator<Item = TermId>) -> TermId {
        let mut flat: Vec<TermId> = Vec::new();
        for c in children {
            if c == self.fls() {
                return self.fls();
            }
            if c == self.tru() {
                continue;
            }
            if let Term::And(kids) = self.get(c) {
                flat.extend_from_slice(kids);
            } else {
                flat.push(c);
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // a /\ !a == false
        for w in flat.windows(2) {
            // cheap complementary-pair check relies on Not being interned
            if let Term::Not(inner) = self.get(w[1]) {
                if *inner == w[0] {
                    return self.fls();
                }
            }
        }
        match flat.len() {
            0 => self.tru(),
            1 => flat[0],
            _ => self.intern(Term::And(flat.into_boxed_slice())),
        }
    }

    /// N-ary disjunction with flattening, deduplication and constant folding.
    pub fn or(&mut self, children: impl IntoIterator<Item = TermId>) -> TermId {
        let mut flat: Vec<TermId> = Vec::new();
        for c in children {
            if c == self.tru() {
                return self.tru();
            }
            if c == self.fls() {
                continue;
            }
            if let Term::Or(kids) = self.get(c) {
                flat.extend_from_slice(kids);
            } else {
                flat.push(c);
            }
        }
        flat.sort_unstable();
        flat.dedup();
        for w in flat.windows(2) {
            if let Term::Not(inner) = self.get(w[1]) {
                if *inner == w[0] {
                    return self.tru();
                }
            }
        }
        match flat.len() {
            0 => self.fls(),
            1 => flat[0],
            _ => self.intern(Term::Or(flat.into_boxed_slice())),
        }
    }

    /// Binary conjunction convenience.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and([a, b])
    }

    /// Binary disjunction convenience.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or([a, b])
    }

    /// Implication with constant folding.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        if a == self.tru() {
            return b;
        }
        if a == self.fls() || b == self.tru() {
            return self.tru();
        }
        if b == self.fls() {
            return self.not(a);
        }
        if a == b {
            return self.tru();
        }
        self.intern(Term::Implies(a, b))
    }

    /// Biconditional with constant folding.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.tru();
        }
        if a == self.tru() {
            return b;
        }
        if b == self.tru() {
            return a;
        }
        if a == self.fls() {
            return self.not(b);
        }
        if b == self.fls() {
            return self.not(a);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Term::Iff(a, b))
    }

    /// Boolean if-then-else with constant folding.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        if c == self.tru() {
            return t;
        }
        if c == self.fls() {
            return e;
        }
        if t == e {
            return t;
        }
        self.intern(Term::Ite(c, t, e))
    }

    /// Integer addition (constant folded when both sides are constants).
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        if let (Term::IntConst(x), Term::IntConst(y)) = (self.get(a), self.get(b)) {
            let v = x + y;
            return self.int_const(v);
        }
        self.intern(Term::Add(a, b))
    }

    /// Integer subtraction (constant folded when both sides are constants).
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        if let (Term::IntConst(x), Term::IntConst(y)) = (self.get(a), self.get(b)) {
            let v = x - y;
            return self.int_const(v);
        }
        self.intern(Term::Sub(a, b))
    }

    /// `t + c` for a constant offset.
    pub fn add_const(&mut self, t: TermId, c: i64) -> TermId {
        if c == 0 {
            return t;
        }
        let k = self.int_const(c);
        self.add(t, k)
    }

    /// Comparison atom (constant folded when both sides are constants).
    pub fn cmp(&mut self, op: CmpOp, a: TermId, b: TermId) -> TermId {
        if let (Term::IntConst(x), Term::IntConst(y)) = (self.get(a), self.get(b)) {
            let (x, y) = (*x, *y);
            return if op.eval(x, y) {
                self.tru()
            } else {
                self.fls()
            };
        }
        self.intern(Term::Cmp(op, a, b))
    }

    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Le, a, b)
    }

    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Lt, a, b)
    }

    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Ge, a, b)
    }

    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Gt, a, b)
    }

    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Eq, a, b)
    }

    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Ne, a, b)
    }

    /// `t = c` for an integer constant.
    pub fn eq_const(&mut self, t: TermId, c: i64) -> TermId {
        let k = self.int_const(c);
        self.eq(t, k)
    }

    /// Pretty-print a term as an s-expression (for debugging and `--show-smt`).
    pub fn display(&self, id: TermId) -> String {
        let mut out = String::new();
        self.display_into(id, &mut out);
        out
    }

    fn display_into(&self, id: TermId, out: &mut String) {
        use std::fmt::Write;
        match self.get(id) {
            Term::True => out.push_str("true"),
            Term::False => out.push_str("false"),
            Term::BoolVar(i) => out.push_str(self.bool_name(*i)),
            Term::IntVar(i) => out.push_str(self.int_name(*i)),
            Term::IntConst(c) => {
                let _ = write!(out, "{c}");
            }
            Term::Not(t) => {
                out.push_str("(not ");
                self.display_into(*t, out);
                out.push(')');
            }
            Term::And(kids) => {
                out.push_str("(and");
                for k in kids.iter() {
                    out.push(' ');
                    self.display_into(*k, out);
                }
                out.push(')');
            }
            Term::Or(kids) => {
                out.push_str("(or");
                for k in kids.iter() {
                    out.push(' ');
                    self.display_into(*k, out);
                }
                out.push(')');
            }
            Term::Implies(a, b) => {
                out.push_str("(=> ");
                self.display_into(*a, out);
                out.push(' ');
                self.display_into(*b, out);
                out.push(')');
            }
            Term::Iff(a, b) => {
                out.push_str("(= ");
                self.display_into(*a, out);
                out.push(' ');
                self.display_into(*b, out);
                out.push(')');
            }
            Term::Ite(c, t, e) => {
                out.push_str("(ite ");
                self.display_into(*c, out);
                out.push(' ');
                self.display_into(*t, out);
                out.push(' ');
                self.display_into(*e, out);
                out.push(')');
            }
            Term::Add(a, b) => {
                out.push_str("(+ ");
                self.display_into(*a, out);
                out.push(' ');
                self.display_into(*b, out);
                out.push(')');
            }
            Term::Sub(a, b) => {
                out.push_str("(- ");
                self.display_into(*a, out);
                out.push(' ');
                self.display_into(*b, out);
                out.push(')');
            }
            Term::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Le => "<=",
                    CmpOp::Lt => "<",
                    CmpOp::Ge => ">=",
                    CmpOp::Gt => ">",
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "distinct",
                };
                out.push('(');
                out.push_str(sym);
                out.push(' ');
                self.display_into(*a, out);
                out.push(' ');
                self.display_into(*b, out);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_pinned() {
        let pool = TermPool::new();
        assert_eq!(pool.get(pool.tru()), &Term::True);
        assert_eq!(pool.get(pool.fls()), &Term::False);
    }

    #[test]
    fn hash_consing_dedups_structurally() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let a1 = p.lt(x, y);
        let a2 = p.lt(x, y);
        assert_eq!(a1, a2);
        let c1 = p.int_const(5);
        let c2 = p.int_const(5);
        assert_eq!(c1, c2);
    }

    #[test]
    fn variables_with_same_name_are_distinct() {
        let mut p = TermPool::new();
        let a = p.int_var("x");
        let b = p.int_var("x");
        assert_ne!(a, b);
        let ba = p.bool_var("b");
        let bb = p.bool_var("b");
        assert_ne!(ba, bb);
    }

    #[test]
    fn and_folds_constants() {
        let mut p = TermPool::new();
        let b = p.bool_var("b");
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.and([b, t]), b);
        assert_eq!(p.and([b, f]), f);
        assert_eq!(p.and(Vec::<TermId>::new()), t);
        let nb = p.not(b);
        assert_eq!(p.and([b, nb]), f);
    }

    #[test]
    fn or_folds_constants() {
        let mut p = TermPool::new();
        let b = p.bool_var("b");
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.or([b, f]), b);
        assert_eq!(p.or([b, t]), t);
        assert_eq!(p.or(Vec::<TermId>::new()), f);
        let nb = p.not(b);
        assert_eq!(p.or([b, nb]), t);
    }

    #[test]
    fn and_flattens_nested() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let c = p.bool_var("c");
        let ab = p.and2(a, b);
        let abc = p.and2(ab, c);
        match p.get(abc) {
            Term::And(kids) => assert_eq!(kids.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let mut p = TermPool::new();
        let b = p.bool_var("b");
        let nb = p.not(b);
        assert_eq!(p.not(nb), b);
    }

    #[test]
    fn negated_cmp_flips_operator() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let le = p.le(x, y);
        let gt = p.gt(x, y);
        assert_eq!(p.not(le), gt);
    }

    #[test]
    fn cmp_constant_folds() {
        let mut p = TermPool::new();
        let c3 = p.int_const(3);
        let c5 = p.int_const(5);
        assert_eq!(p.lt(c3, c5), p.tru());
        assert_eq!(p.gt(c3, c5), p.fls());
        assert_eq!(p.eq(c3, c3), p.tru());
    }

    #[test]
    fn arithmetic_constant_folds() {
        let mut p = TermPool::new();
        let c3 = p.int_const(3);
        let c5 = p.int_const(5);
        assert_eq!(p.add(c3, c5), p.int_const(8));
        assert_eq!(p.sub(c3, c5), p.int_const(-2));
        let x = p.int_var("x");
        assert_eq!(p.add_const(x, 0), x);
    }

    #[test]
    fn cmp_op_negate_and_eval_agree() {
        for op in [
            CmpOp::Le,
            CmpOp::Lt,
            CmpOp::Ge,
            CmpOp::Gt,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            for a in -2..3i64 {
                for b in -2..3i64 {
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b), "{op:?} {a} {b}");
                    assert_eq!(op.eval(a, b), op.flip().eval(b, a), "{op:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn display_is_sexpr() {
        let mut p = TermPool::new();
        let x = p.int_var("x");
        let y = p.int_var("y");
        let a = p.lt(x, y);
        let b = p.bool_var("flag");
        let t = p.and2(a, b);
        let s = p.display(t);
        assert!(s.contains("(and"), "{s}");
        assert!(s.contains("(< x y)"), "{s}");
        assert!(s.contains("flag"), "{s}");
    }

    #[test]
    fn iff_orients_operands() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        assert_eq!(p.iff(a, b), p.iff(b, a));
        assert_eq!(p.iff(a, a), p.tru());
    }
}
