//! CDCL SAT solver with a DPLL(T) theory hook.
//!
//! A Glucose-class core:
//!
//! * two-watched-literal propagation with blockers over a flat clause
//!   arena ([`crate::clause`]),
//! * first-UIP conflict analysis with recursive clause minimisation,
//! * EVSIDS variable activity (decay ramping 0.8 → 0.95) with phase saving,
//! * LBD ("glue") computed at learning time, kept fresh when a learned
//!   clause is reused as a reason, and driving clause-database reduction,
//! * EMA-based dynamic restarts — a fast LBD average against the lifetime
//!   average, blocked while the assignment trail is growing — with
//!   reused-trail partial backtracking so a restart does not throw away
//!   decisions the heap would immediately redo,
//! * incremental clause addition between `solve` calls,
//! * assumption-based solving with unsat-core extraction,
//! * selector-guarded clause scopes (`push_scope`/`pop_scope`),
//! * a [`Theory`] hook called for every literal assigned on the trail, so a
//!   difference-logic solver (or any other theory) can veto assignments with
//!   an explained conflict — the DPLL(T) integration used by the PPoPP'11
//!   encoding.

use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};
use crate::stats::Stats;
use std::time::Instant;

// ---- Restart and decay policy constants (Glucose-style) --------------------

/// A restart needs at least this many conflicts since the last one.
const RESTART_MIN_CONFLICTS: u64 = 50;
/// Restart when `fast_lbd_ema * RESTART_K > lifetime_lbd_average`.
const RESTART_K: f64 = 0.8;
/// Window (in conflicts) of the fast LBD exponential moving average.
const FAST_LBD_EMA_N: f64 = 32.0;
/// Window of the (much slower) assignment-trail-size EMA.
const TRAIL_EMA_N: f64 = 5000.0;
/// Block a pending restart while the trail is this much above its EMA:
/// the search is filling in a model and should not be interrupted.
const BLOCK_R: f64 = 1.4;
/// Trail blocking only engages after the trail EMA has warmed up.
const BLOCK_WARMUP: u64 = 5000;
/// Variable-activity decay ramps from START to MAX by STEP every RAMP
/// conflicts: aggressive focus early, stability late.
const VAR_DECAY_START: f64 = 0.95;
const VAR_DECAY_MAX: f64 = 0.95;
const VAR_DECAY_STEP: f64 = 0.01;
const VAR_DECAY_RAMP: u64 = 5000;

/// Outcome of a `solve` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    Sat,
    Unsat,
    /// Conflict budget exhausted before a verdict.
    Unknown,
}

/// Response from the theory to a literal assertion.
pub type TheoryResult = Result<(), Vec<Lit>>;

/// A DPLL(T) theory. The SAT core forwards *every* literal assigned on the
/// trail (in trail order); theories ignore literals they did not register.
///
/// A conflict is reported as a non-empty set of literals that are currently
/// assigned true and jointly theory-inconsistent; the negation of that set
/// becomes a learned clause.
pub trait Theory {
    /// `lit` has been assigned true. Return `Err(explanation)` if the theory
    /// state became inconsistent; `explanation` must contain only literals
    /// already asserted true (including `lit` itself).
    fn assert_true(&mut self, lit: Lit) -> TheoryResult;

    /// A new decision level was opened.
    fn new_level(&mut self);

    /// Backtrack so that exactly `levels_remaining` decision levels remain.
    fn backtrack_to(&mut self, levels_remaining: usize);

    /// Truth value of an *unassigned* theory atom under the theory's current
    /// solution, if `v` is a registered atom. Used to complete don't-care
    /// atoms in a SAT model so the reported model is theory-consistent.
    fn value_hint(&self, _v: Var) -> Option<bool> {
        None
    }
}

/// The trivial theory: accepts everything.
#[derive(Default, Clone, Copy, Debug)]
pub struct NoTheory;

impl Theory for NoTheory {
    fn assert_true(&mut self, _lit: Lit) -> TheoryResult {
        Ok(())
    }
    fn new_level(&mut self) {}
    fn backtrack_to(&mut self, _levels_remaining: usize) {}
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Reason {
    Decision,
    Clause(ClauseRef),
}

/// One open clause scope: its selector variable and the clause-arena
/// position when it opened (everything at or past the mark that mentions
/// the negated selector belongs to the scope and is swept at the pop).
#[derive(Clone, Copy)]
struct Scope {
    sel: Var,
    db_mark: ClauseRef,
}

#[derive(Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Variable-indexed solver state.
struct VarState {
    assign: LBool,
    level: u32,
    reason: Reason,
    phase: bool,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            assign: LBool::Undef,
            level: 0,
            reason: Reason::Decision,
            phase: false,
        }
    }
}

/// The CDCL solver, generic over its theory.
pub struct SatSolver<T: Theory = NoTheory> {
    vars: Vec<VarState>,
    activity: Vec<f64>,
    var_inc: f64,
    /// Current activity decay factor (ramps [`VAR_DECAY_START`] →
    /// [`VAR_DECAY_MAX`]).
    var_decay: f64,
    heap: VarHeap,
    db: ClauseDb,
    watches: Vec<Vec<Watcher>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    theory_qhead: usize,
    ok: bool,
    theory: T,
    stats: Stats,
    /// Sampled distribution histograms (LBD, conflict depth, restart
    /// intervals); monotone like `stats`.
    introspect: crate::Introspect,
    /// Conflict count at which the next database reduction triggers.
    next_reduce: u64,
    /// Fast exponential moving average of learned-clause LBD; compared
    /// against the lifetime average (`stats.sum_lbd / stats.learned_total`)
    /// to trigger restarts when recent glue is unusually bad.
    fast_lbd_ema: f64,
    /// Slow EMA of the assignment-trail size at conflicts, for restart
    /// blocking.
    trail_ema: f64,
    /// Conflicts since the last restart (or solve entry / blocked restart).
    conflicts_since_restart: u64,
    /// Conflicts allowed before giving up (None = unlimited).
    conflict_budget: Option<u64>,
    /// Wall-clock deadline for the current/next `solve` (None = unlimited).
    deadline: Option<Instant>,
    /// Active clause scopes, outermost first. Clauses added while a scope
    /// is active carry the negated innermost selector; `solve` assumes
    /// every active selector true.
    scopes: Vec<Scope>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Variables marked in `seen` during the current analysis (for cleanup).
    marked: Vec<Var>,
    /// Per-variable occurrence lists over the clause arena, for don't-care
    /// decision elision: a variable whose every live occurrence is already
    /// satisfied cannot influence any verdict and is never branched on.
    occs: Vec<Vec<ClauseRef>>,
    /// Variables bypassed by [`SatSolver::pick_branch`] as don't-care,
    /// tagged with the decision level of the bypass so backtracking can
    /// re-enqueue exactly the ones whose justification may have gone.
    skipped: Vec<(u32, Var)>,
    /// Failed-assumption set after an assumption-UNSAT answer.
    conflict_core: Vec<Lit>,
    model: Vec<LBool>,
    /// The assumption levels still standing on the trail from the previous
    /// `solve` call: `prev_assumptions[i]` was established as the
    /// pseudo-decision of level `i + 1`. The next solve keeps the longest
    /// common prefix with its own assumption vector instead of retreating
    /// to level 0 — the cross-check trail reuse that makes selector-guarded
    /// sessions cheap.
    prev_assumptions: Vec<Lit>,
}

impl SatSolver<NoTheory> {
    /// A pure SAT solver with no theory attached.
    pub fn new_pure() -> Self {
        SatSolver::new(NoTheory)
    }
}

impl Default for SatSolver<NoTheory> {
    fn default() -> Self {
        SatSolver::new_pure()
    }
}

impl<T: Theory> SatSolver<T> {
    pub fn new(theory: T) -> Self {
        SatSolver {
            vars: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            var_decay: VAR_DECAY_START,
            heap: VarHeap::new(),
            db: ClauseDb::new(),
            watches: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            theory_qhead: 0,
            ok: true,
            theory,
            stats: Stats::default(),
            introspect: crate::Introspect::default(),
            next_reduce: 2000,
            fast_lbd_ema: 0.0,
            trail_ema: 0.0,
            conflicts_since_restart: 0,
            conflict_budget: None,
            deadline: None,
            scopes: Vec::new(),
            seen: Vec::new(),
            marked: Vec::new(),
            occs: Vec::new(),
            skipped: Vec::new(),
            conflict_core: Vec::new(),
            model: Vec::new(),
            prev_assumptions: Vec::new(),
        }
    }

    /// Access the theory (e.g. to extract an integer model after SAT).
    pub fn theory(&self) -> &T {
        &self.theory
    }

    pub fn theory_mut(&mut self) -> &mut T {
        &mut self.theory
    }

    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Sampled search-shape distributions (see [`crate::Introspect`]).
    pub fn introspect(&self) -> &crate::Introspect {
        &self.introspect
    }

    /// Limit the number of conflicts for subsequent `solve` calls.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Wall-clock deadline for subsequent `solve` calls; a solve that is
    /// still searching at the deadline answers `Unknown` (None = no limit).
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Open a clause scope. Clauses added until the matching [`pop_scope`]
    /// are guarded by a fresh selector literal: they behave as regular
    /// clauses for `solve` (the selector is assumed true) but are
    /// retractable as a group. Scopes nest; pops are LIFO.
    ///
    /// [`pop_scope`]: SatSolver::pop_scope
    pub fn push_scope(&mut self) -> usize {
        self.stats.scope_pushes += 1;
        let sel = self.new_var();
        self.scopes.push(Scope {
            sel,
            db_mark: self.db.mark(),
        });
        self.scopes.len()
    }

    /// Close the innermost scope: its clauses (and any learned clause that
    /// depended on them, which carries the negated selector) are swept from
    /// the clause database, so long-lived sessions do not accumulate dead
    /// blocking clauses. Learned clauses derived only from surviving
    /// clauses are kept.
    ///
    /// The trail retreats only to just below the selector's assigned level,
    /// not to level 0: a clause of this scope (it contains ¬sel) can only
    /// have propagated once the selector's variable was assigned, so every
    /// trail literal whose reason is about to be swept sits at or above
    /// that level. (The one exception, ¬sel forced at level 0, is safe to
    /// keep — conflict analysis never expands level-0 antecedents.) The
    /// surviving assumption prefix feeds the next solve's trail reuse.
    pub fn pop_scope(&mut self) {
        let scope = self
            .scopes
            .pop()
            .expect("pop_scope without matching push_scope");
        let s = scope.sel;
        if self.value(s).is_assigned() {
            let lvl = self.vars[s.index()].level as usize;
            if lvl > 0 {
                self.cancel_until(lvl - 1);
            }
        }
        // Sweep the scope's clauses: everything added since the push that
        // mentions ¬sel belongs to the retracted scope (including learned
        // clauses that depended on it — resolution keeps the selector
        // literal, and minimisation cannot drop it because the selector is
        // an assumption). Any learned clause mentioning the selector only
        // *positively* survives, which is sound: the selector is
        // unconstrained after the sweep, so as a pure literal it can always
        // satisfy those clauses without excluding any model. BCP drops
        // tombstoned watchers lazily.
        let dead = s.neg();
        let candidates: Vec<ClauseRef> = self
            .db
            .refs_from(scope.db_mark)
            .filter(|&c| !self.db.is_deleted(c) && self.db.lits(c).contains(&dead))
            .collect();
        for cref in candidates {
            self.db.delete(cref);
        }
    }

    /// Number of currently open scopes.
    pub fn num_scopes(&self) -> usize {
        self.scopes.len()
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarState::default());
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.occs.push(Vec::new());
        self.seen.push(false);
        self.heap.grow_to(self.vars.len());
        self.heap.insert(v, &self.activity);
        v
    }

    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    pub fn num_clauses(&self) -> usize {
        self.db.num_live()
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        self.vars[l.var().index()].assign.xor(l.is_neg())
    }

    /// Current assignment of a variable (meaningful mid-search or after SAT).
    pub fn value(&self, v: Var) -> LBool {
        self.vars[v.index()].assign
    }

    /// Model value after a SAT answer (frozen at `solve` return).
    pub fn model_value(&self, v: Var) -> LBool {
        self.model.get(v.index()).copied().unwrap_or(LBool::Undef)
    }

    /// After an assumption-UNSAT answer: a subset of the assumptions that is
    /// jointly inconsistent with the clauses.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Value of `l` counting only *fixed* (level-0) assignments; literals
    /// assigned at higher levels read as `Undef`.
    #[inline]
    fn fixed_value(&self, l: Lit) -> LBool {
        let vs = &self.vars[l.var().index()];
        if vs.assign.is_assigned() && vs.level == 0 {
            vs.assign.xor(l.is_neg())
        } else {
            LBool::Undef
        }
    }

    /// Add a clause; returns `false` if the solver became trivially UNSAT.
    ///
    /// When the clause has two non-false literals under the current trail
    /// it is attached *without backtracking*, so incremental additions
    /// between `solve` calls (blocking clauses, sibling-path groups) leave
    /// the reusable assumption trail standing. Otherwise the solver retreats
    /// to level 0 first, as a classic incremental core would.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        // Level-0 simplification: drop permanently-false literals, detect
        // satisfied or tautological clauses, deduplicate. Only *fixed*
        // values are consulted — the trail above level 0 may be retracted
        // later, so it must not simplify the clause. Inside a scope the
        // clause also carries the negated innermost selector so a pop
        // retracts it.
        let mut sorted = lits.to_vec();
        if let Some(scope) = self.scopes.last() {
            sorted.push(scope.sel.neg());
        }
        sorted.sort_unstable();
        sorted.dedup();
        let mut simplified: Vec<Lit> = Vec::with_capacity(sorted.len());
        for (i, &l) in sorted.iter().enumerate() {
            if i + 1 < sorted.len() && sorted[i + 1] == !l {
                return true; // tautology: contains both l and !l
            }
            match self.fixed_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => continue,   // permanently false, drop
                LBool::Undef => simplified.push(l),
            }
        }
        self.stats.clauses_added += 1;
        // Fast path: two literals non-false under the full current trail
        // can be watched directly — the clause is neither unit nor
        // conflicting anywhere on the standing assignment.
        if simplified.len() >= 2 {
            let mut w0 = None;
            let mut w1 = None;
            for (i, &l) in simplified.iter().enumerate() {
                if self.value_lit(l) != LBool::False {
                    if w0.is_none() {
                        w0 = Some(i);
                    } else {
                        w1 = Some(i);
                        break;
                    }
                }
            }
            if let (Some(a), Some(b)) = (w0, w1) {
                simplified.swap(0, a);
                simplified.swap(1, b);
                let cref = self.db.add(&simplified, false, 0);
                self.attach(cref);
                return true;
            }
        }
        // Slow path: the clause is empty, unit, or falsified/asserting
        // somewhere on the trail — retreat to level 0 (after which every
        // `simplified` literal is unassigned again, since fixed values were
        // already filtered above).
        self.cancel_until(0);
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], Reason::Decision);
                // Propagate eagerly so later add_clause calls see implied
                // fixed values and level-0 theory state stays in sync.
                if self.propagate_all().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let cref = self.db.add(&simplified, false, 0);
                self.attach(cref);
                true
            }
        }
    }

    fn attach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        for i in 0..self.db.lits(cref).len() {
            let v = self.db.lits(cref)[i].var();
            self.occs[v.index()].push(cref);
        }
        self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let level = self.decision_level() as u32;
        let vs = &mut self.vars[l.var().index()];
        vs.assign = LBool::from_bool(l.is_pos());
        vs.level = level;
        vs.reason = reason;
        self.trail.push(l);
    }

    /// Boolean constraint propagation to fixpoint. Returns a conflicting
    /// clause reference on conflict.
    fn bcp(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut i = 0;
            let mut j = 0;
            // Take the watcher list; we rebuild it in place.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.db.is_deleted(w.cref) {
                    continue; // lazy removal of deleted clauses
                }
                if self.value_lit(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                // Normalise: the false literal (!p) goes to position 1.
                let false_lit = !p;
                {
                    let lits = self.db.lits_mut(w.cref);
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                }
                let first = self.db.lits(w.cref)[0];
                let w_new = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[j] = w_new;
                    j += 1;
                    continue;
                }
                // Look for a replacement watch.
                let len = self.db.lits(w.cref).len();
                for k in 2..len {
                    let lk = self.db.lits(w.cref)[k];
                    if self.value_lit(lk) != LBool::False {
                        self.db.lits_mut(w.cref).swap(1, k);
                        let new_watch = self.db.lits(w.cref)[1];
                        self.watches[(!new_watch).index()].push(w_new);
                        continue 'watchers;
                    }
                }
                // No replacement: clause is unit or conflicting.
                ws[j] = w_new;
                j += 1;
                if self.value_lit(first) == LBool::False {
                    // Conflict: restore remaining watchers and report.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    ws.truncate(j);
                    self.watches[p.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(w.cref);
                }
                self.enqueue(first, Reason::Clause(w.cref));
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
        }
        None
    }

    /// BCP plus theory assertion to fixpoint.
    ///
    /// Returns the conflict as a vector of literals that are all currently
    /// true and jointly inconsistent (for a clause conflict these are the
    /// negations of the clause literals).
    fn propagate_all(&mut self) -> Option<Vec<Lit>> {
        loop {
            if let Some(cref) = self.bcp() {
                let conflict: Vec<Lit> = self.db.lits(cref).iter().map(|&l| !l).collect();
                return Some(conflict);
            }
            if self.theory_qhead >= self.trail.len() {
                return None;
            }
            while self.theory_qhead < self.trail.len() {
                let l = self.trail[self.theory_qhead];
                self.theory_qhead += 1;
                self.stats.theory_assertions += 1;
                if let Err(expl) = self.theory.assert_true(l) {
                    self.stats.theory_conflicts += 1;
                    debug_assert!(
                        expl.iter().all(|&e| self.value_lit(e) == LBool::True),
                        "theory explanation must consist of true literals"
                    );
                    return Some(expl);
                }
            }
            // Theories in this crate do not enqueue literals, so reaching
            // here with an empty BCP queue means fixpoint.
            if self.qhead >= self.trail.len() {
                return None;
            }
        }
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
        self.theory.new_level();
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for idx in (bound..self.trail.len()).rev() {
            let l = self.trail[idx];
            let vs = &mut self.vars[l.var().index()];
            vs.assign = LBool::Undef;
            vs.phase = l.is_pos();
            self.heap.insert(l.var(), &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = bound;
        self.theory_qhead = self.theory_qhead.min(bound);
        self.theory.backtrack_to(level);
        // Don't-care bypasses above the surviving trail lose their
        // justification (the satisfying literals may be gone): put those
        // variables back in decision order. `skipped` is level-sorted, so
        // this pops exactly the invalidated tail.
        while let Some(&(l, v)) = self.skipped.last() {
            if (l as usize) > level {
                self.heap.insert(v, &self.activity);
                self.skipped.pop();
            } else {
                break;
            }
        }
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.decrease_key_after_bump(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= self.var_decay;
        // Ramp toward stability: early search wants activities to chase the
        // conflict frontier hard, converged search wants them steady.
        if self.stats.conflicts.is_multiple_of(VAR_DECAY_RAMP) {
            self.var_decay = (self.var_decay + VAR_DECAY_STEP).min(VAR_DECAY_MAX);
        }
    }

    fn mark(&mut self, v: Var) {
        if !self.seen[v.index()] {
            self.seen[v.index()] = true;
            self.marked.push(v);
        }
    }

    fn clear_marks(&mut self) {
        for v in self.marked.drain(..) {
            self.seen[v.index()] = false;
        }
    }

    /// First-UIP conflict analysis. `conflict` is a set of true literals
    /// that are jointly inconsistent. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: Vec<Lit>) -> (Vec<Lit>, usize) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 for the asserting literal
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();

        // The conflict in clause form: negations of the inconsistent set.
        let mut reason_lits: Vec<Lit> = conflict.iter().map(|&l| !l).collect();
        let uip;

        loop {
            for &q in &reason_lits {
                let v = q.var();
                let lvl = self.vars[v.index()].level as usize;
                if !self.seen[v.index()] && lvl > 0 {
                    self.mark(v);
                    self.bump_var(v);
                    if lvl == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand: last marked literal on the trail.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[trail_idx];
            // Unmark so the trail scan skips it next iteration; it stays in
            // `marked` for final cleanup which is harmless (already false).
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                uip = pl;
                break;
            }
            match self.vars[pl.var().index()].reason {
                Reason::Clause(cref) => {
                    if self.db.is_learnt(cref) {
                        self.db.bump_activity(cref);
                        // Dynamic LBD: a learned clause pulled in as a reason
                        // gets its glue refreshed; an improvement protects it
                        // through the next database reduction.
                        let fresh = self.compute_lbd(self.db.lits(cref));
                        if fresh < self.db.lbd(cref) {
                            self.db.set_lbd(cref, fresh);
                            self.db.set_protected(cref, true);
                        }
                    }
                    // Skip lits[0] — it is pl itself.
                    reason_lits = self.db.lits(cref)[1..].to_vec();
                }
                Reason::Decision => unreachable!("UIP search expanded a decision"),
            }
        }
        learnt[0] = !uip;

        // Recursive minimisation of the non-asserting literals. The `seen`
        // marks for kept literals are still set, which the redundancy check
        // relies on.
        let before = learnt.len();
        let body: Vec<Lit> = learnt[1..].to_vec();
        let kept: Vec<Lit> = body
            .into_iter()
            .filter(|&l| !self.literal_redundant(l))
            .collect();
        learnt.truncate(1);
        learnt.extend(kept);
        self.stats.minimized_lits += (before - learnt.len()) as u64;
        self.clear_marks();

        // Backjump level: second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.vars[learnt[i].var().index()].level
                    > self.vars[learnt[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.vars[learnt[1].var().index()].level as usize
        };
        (learnt, bt)
    }

    /// Deep redundancy check: clause literal `l` is redundant if every
    /// literal in its reason cone is already marked `seen` (i.e. in the
    /// clause) or at level 0, transitively, without reaching a decision.
    fn literal_redundant(&mut self, l: Lit) -> bool {
        if self.vars[l.var().index()].reason == Reason::Decision {
            return false;
        }
        let mut stack = vec![l.var()];
        let mut tentative: Vec<Var> = Vec::new();
        while let Some(v) = stack.pop() {
            match self.vars[v.index()].reason {
                Reason::Decision => {
                    // Roll back marks made during this (failed) check.
                    for w in tentative {
                        self.seen[w.index()] = false;
                    }
                    return false;
                }
                Reason::Clause(cref) => {
                    for &q in &self.db.lits(cref)[1..] {
                        let qv = q.var();
                        if self.vars[qv.index()].level == 0 || self.seen[qv.index()] {
                            continue;
                        }
                        self.seen[qv.index()] = true;
                        self.marked.push(qv);
                        tentative.push(qv);
                        stack.push(qv);
                    }
                }
            }
        }
        // Every antecedent resolved into marked/level-0 literals. The marks
        // stay set as memoisation for subsequent checks (sound: each marked
        // var is implied by clause literals), and are wiped in clear_marks.
        true
    }

    /// Collect the assumptions responsible for forcing assumption `a` false.
    fn analyze_final(&mut self, a: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(a);
        if self.decision_level() == 0 {
            return;
        }
        self.mark(a.var());
        for idx in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[idx];
            if !self.seen[l.var().index()] {
                continue;
            }
            match self.vars[l.var().index()].reason {
                Reason::Decision => {
                    // All decisions are assumptions when this runs.
                    if l != a {
                        self.conflict_core.push(l);
                    }
                }
                Reason::Clause(cref) => {
                    let antecedents: Vec<Lit> = self.db.lits(cref)[1..].to_vec();
                    for q in antecedents {
                        if self.vars[q.var().index()].level > 0 {
                            self.mark(q.var());
                        }
                    }
                }
            }
        }
        self.clear_marks();
    }

    /// Compute the failed-assumption set from a conflict that occurred while
    /// only assumption decisions were on the trail.
    fn core_from_conflict(&mut self, conflict: &[Lit]) {
        self.conflict_core.clear();
        for &l in conflict {
            if self.vars[l.var().index()].level > 0 {
                self.mark(l.var());
            }
        }
        for idx in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[idx];
            if !self.seen[l.var().index()] {
                continue;
            }
            match self.vars[l.var().index()].reason {
                Reason::Decision => self.conflict_core.push(l),
                Reason::Clause(cref) => {
                    let antecedents: Vec<Lit> = self.db.lits(cref)[1..].to_vec();
                    for q in antecedents {
                        if self.vars[q.var().index()].level > 0 {
                            self.mark(q.var());
                        }
                    }
                }
            }
        }
        self.clear_marks();
    }

    /// Record a conflict in the restart EMAs. `lbd` is the freshly learned
    /// clause's glue; the trail size was sampled before backjumping.
    fn note_conflict_for_restarts(&mut self, lbd: u32, trail_len: usize) {
        self.conflicts_since_restart += 1;
        self.fast_lbd_ema += (lbd as f64 - self.fast_lbd_ema) / FAST_LBD_EMA_N;
        let t = trail_len as f64;
        self.trail_ema += (t - self.trail_ema) / TRAIL_EMA_N;
        // Blocking: a trail well above its long-run average means the search
        // is deep into filling in a model — let it finish rather than
        // restarting out from under it.
        if self.stats.conflicts >= BLOCK_WARMUP
            && self.conflicts_since_restart >= RESTART_MIN_CONFLICTS
            && t > BLOCK_R * self.trail_ema
        {
            self.conflicts_since_restart = 0;
            self.stats.blocked_restarts += 1;
        }
    }

    /// Should the search restart now? Recent glue markedly worse than the
    /// lifetime average means the current branch is producing weak clauses.
    fn restart_ready(&self) -> bool {
        if self.conflicts_since_restart < RESTART_MIN_CONFLICTS || self.stats.learned_total == 0 {
            return false;
        }
        let slow = self.stats.sum_lbd as f64 / self.stats.learned_total as f64;
        self.fast_lbd_ema * RESTART_K > slow
    }

    /// Reused-trail partial restart (Ramos et al., SAT'11): keep the prefix
    /// of decision levels whose decision variables are at least as active as
    /// the best variable the heap would offer next — a full restart would
    /// redo exactly those decisions. Returns the level to backtrack to,
    /// at least `floor` (the assumption levels, which always survive).
    fn reused_trail_level(&self, floor: usize) -> usize {
        let Some(best) = self.heap.peek() else {
            return self.decision_level();
        };
        let best_act = self.activity[best.index()];
        let mut lvl = floor;
        while lvl < self.decision_level() {
            let at = self.trail_lim[lvl];
            if at >= self.trail.len() {
                break;
            }
            let decision = self.trail[at].var();
            if self.activity[decision.index()] < best_act {
                break;
            }
            lvl += 1;
        }
        lvl
    }

    fn reduce_db(&mut self) {
        let mut learnts = self.db.learnt_refs();
        // Sort worst-first: high LBD, then low activity.
        learnts.sort_by(|&a, &b| {
            self.db.lbd(b).cmp(&self.db.lbd(a)).then(
                self.db
                    .activity(a)
                    .partial_cmp(&self.db.activity(b))
                    .unwrap(),
            )
        });
        let target = learnts.len() / 2;
        let mut removed = 0;
        for &c in &learnts {
            if removed >= target {
                break;
            }
            if self.db.lbd(c) <= 2 || self.db.lits(c).len() == 2 {
                continue; // glue and binary clauses are kept forever
            }
            if self.is_locked(c) {
                continue;
            }
            if self.db.is_protected(c) {
                // One-round reprieve earned by a recent LBD improvement;
                // consuming the bit means it must re-earn the next one.
                self.db.set_protected(c, false);
                continue;
            }
            self.db.delete(c);
            removed += 1;
        }
        self.stats.deleted_clauses += removed as u64;
        self.stats.reduces += 1;
        self.next_reduce = self.stats.conflicts + 2000 + 300 * self.stats.reduces;
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let l0 = self.db.lits(cref)[0];
        self.value_lit(l0) == LBool::True
            && self.vars[l0.var().index()].reason == Reason::Clause(cref)
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.vars[l.var().index()].level)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// Solve under the given assumptions (plus the selectors of every open
    /// scope, which are assumed true automatically).
    ///
    /// User assumptions come *before* scope selectors in the combined
    /// vector: per-query scopes get a fresh selector every query, so
    /// putting them last lets consecutive queries that share a stable
    /// assumption prefix (delivery model, property polarity) reuse the
    /// propagated trail below the per-query churn.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        let result = if self.scopes.is_empty() {
            self.solve_inner(assumptions)
        } else {
            let mut all: Vec<Lit> = Vec::with_capacity(self.scopes.len() + assumptions.len());
            all.extend_from_slice(assumptions);
            all.extend(self.scopes.iter().map(|sc| sc.sel.pos()));
            self.solve_inner(&all)
        };
        self.stats.learnt_clauses = self.db.num_learnt() as u64;
        result
    }

    /// Budget/deadline exit: retreat to the established assumption prefix
    /// (search decisions go, assumption levels stay for the next solve).
    fn exit_unknown(&mut self, assumptions: &[Lit]) -> SolveResult {
        let keep = self.decision_level().min(assumptions.len());
        self.cancel_until(keep);
        self.prev_assumptions = assumptions[..keep].to_vec();
        SolveResult::Unknown
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.conflict_core.clear();
        // Clauses added since the last solve may constrain variables that
        // were bypassed as don't-care on the still-standing trail, so every
        // bypass is re-opened for this solve.
        for (_, v) in self.skipped.drain(..) {
            self.heap.insert(v, &self.activity);
        }
        if !self.ok {
            self.prev_assumptions.clear();
            self.cancel_until(0);
            return SolveResult::Unsat;
        }
        // Trail reuse: assumption levels from the previous solve that match
        // this solve's assumption vector (position for position) are still
        // sound — clauses were only added, and incremental additions that
        // could not be attached mid-trail already retreated to level 0. Keep
        // the longest common prefix and retreat only past the divergence.
        let cap = self
            .decision_level()
            .min(assumptions.len())
            .min(self.prev_assumptions.len());
        let mut keep = 0usize;
        while keep < cap && self.prev_assumptions[keep] == assumptions[keep] {
            keep += 1;
        }
        self.cancel_until(keep);

        let budget_start = self.stats.conflicts;
        self.conflicts_since_restart = 0;

        loop {
            match self.propagate_all() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        self.prev_assumptions.clear();
                        return SolveResult::Unsat;
                    }
                    if self.decision_level() <= assumptions.len() {
                        // Every decision on the trail is an assumption, so
                        // this conflict refutes the assumption set itself.
                        // Levels below the conflicting one reached fixpoint
                        // conflict-free and stay for the next solve.
                        let dl = self.decision_level();
                        self.core_from_conflict(&conflict);
                        self.cancel_until(dl - 1);
                        self.prev_assumptions = assumptions[..dl - 1].to_vec();
                        return SolveResult::Unsat;
                    }
                    let trail_len = self.trail.len();
                    let conflict_depth = self.decision_level() as u64;
                    let (learnt, bt) = self.analyze(conflict);
                    self.cancel_until(bt);
                    let lbd = self.learn(learnt);
                    self.introspect.observe_conflict(lbd as u64, conflict_depth);
                    self.note_conflict_for_restarts(lbd, trail_len);
                    self.decay_var_activity();
                    self.db.decay_activity();

                    if let Some(b) = self.conflict_budget {
                        if self.stats.conflicts - budget_start >= b {
                            return self.exit_unknown(assumptions);
                        }
                    }
                    if self.deadline.is_some_and(|d| Instant::now() >= d) {
                        return self.exit_unknown(assumptions);
                    }
                    if self.stats.conflicts >= self.next_reduce {
                        self.reduce_db();
                    }
                }
                None => {
                    if self.decision_level() > assumptions.len() && self.restart_ready() {
                        self.stats.restarts += 1;
                        self.introspect
                            .observe_restart(self.conflicts_since_restart);
                        self.conflicts_since_restart = 0;
                        // Partial restart: levels the heap would immediately
                        // rebuild stay on the trail (and stay propagated).
                        let keep = self.reused_trail_level(assumptions.len());
                        self.cancel_until(keep);
                        continue;
                    }
                    // Establish assumptions as pseudo-decisions first.
                    if self.decision_level() < assumptions.len() {
                        let a = assumptions[self.decision_level()];
                        match self.value_lit(a) {
                            LBool::True => {
                                // Already satisfied: open a level to keep the
                                // decision-level/assumption alignment.
                                self.new_decision_level();
                            }
                            LBool::False => {
                                // The trail is consistent here — `a` is
                                // merely falsified — so every established
                                // level survives for the next solve.
                                self.analyze_final(a);
                                let dl = self.decision_level();
                                self.prev_assumptions = assumptions[..dl].to_vec();
                                return SolveResult::Unsat;
                            }
                            LBool::Undef => {
                                self.new_decision_level();
                                self.enqueue(a, Reason::Decision);
                            }
                        }
                        continue;
                    }
                    // Regular decision.
                    if self.stats.decisions.is_multiple_of(256)
                        && self.deadline.is_some_and(|d| Instant::now() >= d)
                    {
                        return self.exit_unknown(assumptions);
                    }
                    match self.pick_branch() {
                        Some(l) => {
                            self.stats.decisions += 1;
                            self.new_decision_level();
                            self.enqueue(l, Reason::Decision);
                        }
                        None => {
                            // Every *relevant* variable assigned and the
                            // theory consistent. Don't-care variables stay
                            // `Undef` in the model — any completion
                            // satisfies their (already-satisfied) clauses —
                            // except registered theory atoms, which are
                            // completed from the theory's own solution so
                            // the model stays theory-consistent. The full
                            // trail stays up for the next solve.
                            self.model = self.vars.iter().map(|v| v.assign).collect();
                            for (i, m) in self.model.iter_mut().enumerate() {
                                if !m.is_assigned() {
                                    if let Some(b) = self.theory.value_hint(Var(i as u32)) {
                                        *m = LBool::from_bool(b);
                                    }
                                }
                            }
                            self.prev_assumptions = assumptions.to_vec();
                            return SolveResult::Sat;
                        }
                    }
                }
            }
        }
    }

    /// Install a learned clause and return its LBD (for the restart EMAs).
    fn learn(&mut self, learnt: Vec<Lit>) -> u32 {
        let lbd = match learnt.len() {
            0 => {
                self.ok = false;
                0
            }
            1 => {
                // Unit clauses assert at level 0 (analyze returns bt = 0).
                debug_assert_eq!(self.decision_level(), 0);
                self.enqueue(learnt[0], Reason::Decision);
                1
            }
            _ => {
                let lbd = self.compute_lbd(&learnt);
                let cref = self.db.add(&learnt, true, lbd);
                self.attach(cref);
                self.enqueue(learnt[0], Reason::Clause(cref));
                lbd
            }
        };
        self.stats.learned_total += 1;
        self.stats.sum_lbd += lbd as u64;
        lbd
    }

    /// `true` if every clause mentioning `v` is deleted or already has a
    /// true literal: no remaining constraint can observe `v`'s value, so
    /// branching on it is pure waste (and, with a theory attached, a source
    /// of gratuitous theory conflicts).
    fn is_dont_care(&self, v: Var) -> bool {
        self.occs[v.index()].iter().all(|&cref| {
            self.db.is_deleted(cref)
                || self
                    .db
                    .lits(cref)
                    .iter()
                    .any(|&l| self.value_lit(l) == LBool::True)
        })
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.vars[v.index()].assign == LBool::Undef {
                if self.is_dont_care(v) {
                    self.skipped.push((self.decision_level() as u32, v));
                    continue;
                }
                // Theory atoms branch toward the value the current theory
                // model already satisfies — asserting that polarity can
                // never provoke a theory conflict, so conflicts only occur
                // where the Boolean structure genuinely forces them.
                let phase = self
                    .theory
                    .value_hint(v)
                    .unwrap_or(self.vars[v.index()].phase);
                return Some(v.lit(phase));
            }
        }
        None
    }

    /// Solve without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(solver: &mut SatSolver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_problem_is_sat() {
        let mut s = SatSolver::new_pure();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn single_unit() {
        let mut s = SatSolver::new_pure();
        let x = s.new_var();
        assert!(s.add_clause(&[x.pos()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(x), LBool::True);
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = SatSolver::new_pure();
        let x = s.new_var();
        assert!(s.add_clause(&[x.pos()]));
        assert!(!s.add_clause(&[x.neg()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = SatSolver::new_pure();
        let vs = vars(&mut s, 5);
        for w in vs.windows(2) {
            s.add_clause(&[w[0].neg(), w[1].pos()]); // w0 -> w1
        }
        s.add_clause(&[vs[0].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &x in &vs {
            assert_eq!(s.model_value(x), LBool::True);
        }
    }

    #[test]
    fn xor_constraint_sat() {
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos(), b.pos()]);
        s.add_clause(&[a.neg(), b.neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_ne!(s.model_value(a), s.model_value(b));
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        let mut s = SatSolver::new_pure();
        let p1 = s.new_var();
        let p2 = s.new_var();
        s.add_clause(&[p1.pos()]);
        s.add_clause(&[p2.pos()]);
        s.add_clause(&[p1.neg(), p2.neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    fn pigeonhole(s: &mut SatSolver, pigeons: usize, holes: usize) {
        let x: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            let c: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
            s.add_clause(&c);
        }
        for (i, row_a) in x.iter().enumerate() {
            for row_b in &x[i + 1..] {
                for (a, b) in row_a.iter().zip(row_b) {
                    s.add_clause(&[a.neg(), b.neg()]);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_unsat_family() {
        for n in 2..=6usize {
            let mut s = SatSolver::new_pure();
            pigeonhole(&mut s, n, n - 1);
            assert_eq!(s.solve(), SolveResult::Unsat, "PHP({n},{})", n - 1);
        }
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let mut s = SatSolver::new_pure();
        pigeonhole(&mut s, 5, 5);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut s = SatSolver::new_pure();
        let vs = vars(&mut s, 8);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![vs[0].pos(), vs[1].neg(), vs[2].pos()],
            vec![vs[1].pos(), vs[3].pos()],
            vec![vs[2].neg(), vs[4].pos()],
            vec![vs[4].neg(), vs[5].neg(), vs[6].pos()],
            vec![vs[6].neg(), vs[7].pos()],
            vec![vs[0].neg(), vs[7].neg()],
            vec![vs[3].neg(), vs[5].pos()],
        ];
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in &clauses {
            assert!(
                c.iter()
                    .any(|&l| s.model_value(l.var()).xor(l.is_neg()) == LBool::True),
                "clause {c:?} not satisfied"
            );
        }
    }

    #[test]
    fn assumptions_flip_verdict_and_give_core() {
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.neg(), b.pos()]);
        s.add_clause(&[a.neg(), b.neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[a.pos()]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(
            core.contains(&a.pos()),
            "core {core:?} should mention the assumption"
        );
        // Solver remains usable afterwards.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), LBool::False);
    }

    #[test]
    fn assumptions_consistent_subset() {
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.neg(), b.neg(), c.pos()]);
        assert_eq!(
            s.solve_with_assumptions(&[a.pos(), b.pos()]),
            SolveResult::Sat
        );
        assert_eq!(s.model_value(c), LBool::True);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos(), b.pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[a.neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(b), LBool::True);
        s.add_clause(&[b.neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[a.pos(), a.pos(), b.pos()]));
        assert!(s.add_clause(&[a.pos(), a.neg()])); // tautology: dropped
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        let mut s = SatSolver::new_pure();
        pigeonhole(&mut s, 6, 5);
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn lbd_bookkeeping_is_consistent_on_a_learning_workload() {
        let mut s = SatSolver::new_pure();
        pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = *s.stats();
        assert!(st.conflicts > 0, "PHP(7,6) must conflict");
        // Every conflict learns one clause, except terminal conflicts (at
        // level 0 or inside the assumption prefix) which exit instead.
        assert!(
            st.learned_total <= st.conflicts && st.learned_total + 1 >= st.conflicts,
            "learned_total={} vs conflicts={}",
            st.learned_total,
            st.conflicts
        );
        assert!(
            st.sum_lbd >= st.learned_total,
            "each learned clause has LBD >= 1"
        );
        // The lifetime glue average can never exceed the decision depth the
        // instance admits (here: #vars), a cheap internal-consistency bound.
        assert!(st.sum_lbd <= st.learned_total * s.num_vars() as u64);
    }

    #[test]
    fn restart_policy_fires_on_a_conflict_heavy_instance() {
        // PHP(7,6) generates thousands of conflicts with steadily varying
        // glue; the EMA policy must trigger at least one restart (and the
        // solver must still prove UNSAT).
        let mut s = SatSolver::new_pure();
        pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(
            s.stats().restarts > 0,
            "no restart in {} conflicts",
            s.stats().conflicts
        );
    }

    #[test]
    fn reused_trail_level_respects_the_floor() {
        // With no decisions taken, a partial restart keeps nothing and the
        // floor is returned untouched.
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos(), b.pos()]);
        assert_eq!(s.reused_trail_level(0), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// A theory that forbids a fixed pair of literals from being true
    /// together — a miniature mutex exercising the DPLL(T) plumbing.
    struct MutexTheory {
        a: Lit,
        b: Lit,
        stack: Vec<Lit>,
        marks: Vec<usize>,
    }

    impl MutexTheory {
        fn new(a: Lit, b: Lit) -> Self {
            MutexTheory {
                a,
                b,
                stack: vec![],
                marks: vec![],
            }
        }
    }

    impl Theory for MutexTheory {
        fn assert_true(&mut self, lit: Lit) -> TheoryResult {
            if lit == self.a || lit == self.b {
                self.stack.push(lit);
            }
            if self.stack.contains(&self.a) && self.stack.contains(&self.b) {
                return Err(vec![self.a, self.b]);
            }
            Ok(())
        }
        fn new_level(&mut self) {
            self.marks.push(self.stack.len());
        }
        fn backtrack_to(&mut self, levels_remaining: usize) {
            while self.marks.len() > levels_remaining {
                let m = self.marks.pop().unwrap();
                self.stack.truncate(m);
            }
        }
    }

    #[test]
    fn theory_conflict_makes_unsat() {
        // Vars are allocated before the theory knows their literals, so
        // construct with known future literals: first two vars are 0 and 1.
        let mut s = SatSolver::new(MutexTheory::new(Var(0).pos(), Var(1).pos()));
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos()]);
        s.add_clause(&[b.pos()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn theory_restricts_but_leaves_sat() {
        let mut s = SatSolver::new(MutexTheory::new(Var(0).pos(), Var(1).pos()));
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos(), b.pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let ma = s.model_value(a) == LBool::True;
        let mb = s.model_value(b) == LBool::True;
        assert!(ma || mb);
        assert!(!(ma && mb), "theory mutex violated by model");
    }

    #[test]
    fn theory_state_survives_backtracking() {
        // Force the solver to try both mutex literals down one branch and
        // verify it recovers by backtracking (SAT overall).
        let mut s = SatSolver::new(MutexTheory::new(Var(0).pos(), Var(1).pos()));
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        // (a \/ c) /\ (b \/ c): setting a=b=true conflicts in the theory,
        // but c=true satisfies everything.
        s.add_clause(&[a.pos(), c.pos()]);
        s.add_clause(&[b.pos(), c.pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let ma = s.model_value(a) == LBool::True;
        let mb = s.model_value(b) == LBool::True;
        assert!(!(ma && mb));
    }

    #[test]
    fn many_solves_are_stable() {
        let mut s = SatSolver::new_pure();
        let vs = vars(&mut s, 6);
        s.add_clause(&[vs[0].pos(), vs[1].pos(), vs[2].pos()]);
        s.add_clause(&[vs[3].neg(), vs[4].pos()]);
        for _ in 0..20 {
            assert_eq!(s.solve(), SolveResult::Sat);
        }
    }

    #[test]
    fn scope_clauses_active_until_pop() {
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        s.add_clause(&[a.pos()]);
        s.push_scope();
        s.add_clause(&[a.neg()]); // contradicts the permanent unit, scoped
        assert_eq!(s.solve(), SolveResult::Unsat, "scoped clause must bind");
        s.pop_scope();
        assert_eq!(s.solve(), SolveResult::Sat, "popped clause must be gone");
        assert_eq!(s.model_value(a), LBool::True);
    }

    #[test]
    fn popped_blocking_clauses_do_not_leak() {
        // Enumerate the 3 models of (a \/ b) inside a scope via blocking
        // clauses, pop, and verify the full model set is reachable again.
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos(), b.pos()]);
        let enumerate = |s: &mut SatSolver| {
            let mut count = 0;
            while s.solve() == SolveResult::Sat {
                count += 1;
                assert!(count <= 3, "more models than possible");
                let block: Vec<Lit> = [a, b]
                    .iter()
                    .map(|&v| {
                        if s.model_value(v) == LBool::True {
                            v.neg()
                        } else {
                            v.pos()
                        }
                    })
                    .collect();
                s.add_clause(&block);
            }
            count
        };
        s.push_scope();
        assert_eq!(enumerate(&mut s), 3);
        s.pop_scope();
        s.push_scope();
        assert_eq!(enumerate(&mut s), 3, "first scope's blocks leaked");
        s.pop_scope();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pop_scope_sweeps_dead_clauses_from_the_database() {
        // Blocking clauses added inside a scope must not accumulate in the
        // clause database across pops — a long-lived session would drag
        // them through every future propagation.
        let mut s = SatSolver::new_pure();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        let c: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
        s.add_clause(&c);
        let baseline = s.num_clauses();
        for _round in 0..3 {
            s.push_scope();
            // Enumerate all models over the first three vars, blocking each.
            while s.solve() == SolveResult::Sat {
                let block: Vec<Lit> = vars
                    .iter()
                    .take(3)
                    .map(|&v| {
                        if s.model_value(v) == LBool::True {
                            v.neg()
                        } else {
                            v.pos()
                        }
                    })
                    .collect();
                s.add_clause(&block);
            }
            s.pop_scope();
            assert!(
                s.num_clauses() <= baseline + 2,
                "dead scope clauses piled up: {} live after pop (baseline {baseline})",
                s.num_clauses(),
            );
            assert_eq!(s.solve(), SolveResult::Sat, "solver poisoned by pop");
        }
    }

    #[test]
    fn nested_scopes_pop_in_lifo_order() {
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        s.push_scope();
        s.add_clause(&[a.pos()]);
        s.push_scope();
        s.add_clause(&[b.pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), LBool::True);
        assert_eq!(s.model_value(b), LBool::True);
        s.pop_scope(); // b's unit retracted, a's still active
        s.add_clause(&[b.neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), LBool::True);
        assert_eq!(s.model_value(b), LBool::False);
        s.pop_scope();
        assert_eq!(s.num_scopes(), 0);
    }

    #[test]
    fn learned_clauses_survive_pop() {
        // Solve a hard UNSAT core inside a scope twice: the permanent
        // pigeonhole clauses stay, so conflicts learned in the first solve
        // must make the second solve cheaper even across a pop.
        let mut s = SatSolver::new_pure();
        pigeonhole(&mut s, 6, 5);
        s.push_scope();
        let before = s.stats().conflicts;
        assert_eq!(s.solve(), SolveResult::Unsat);
        let first = s.stats().conflicts - before;
        s.pop_scope();
        s.push_scope();
        let before = s.stats().conflicts;
        assert_eq!(s.solve(), SolveResult::Unsat);
        let second = s.stats().conflicts - before;
        s.pop_scope();
        assert!(first > 0, "PHP(6,5) must conflict");
        assert!(
            second < first,
            "learned clauses did not survive the pop: {first} then {second}"
        );
    }

    #[test]
    fn scoped_solving_matches_from_scratch() {
        // Pseudo-random 3-CNFs: solving base+extra inside a scope must
        // agree with a fresh solver fed both clause sets directly.
        let mut seed = 0x5eed5eedu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _round in 0..50 {
            let nvars = 4 + (next() % 5) as usize;
            let clause = |next: &mut dyn FnMut() -> u64| -> Vec<Lit> {
                (0..3)
                    .map(|_| {
                        let v = Var((next() % nvars as u64) as u32);
                        if next().is_multiple_of(2) {
                            v.pos()
                        } else {
                            v.neg()
                        }
                    })
                    .collect()
            };
            let base: Vec<Vec<Lit>> = (0..next() % 10).map(|_| clause(&mut next)).collect();
            let extra: Vec<Vec<Lit>> = (0..1 + next() % 10).map(|_| clause(&mut next)).collect();

            let mut scoped = SatSolver::new_pure();
            for _ in 0..nvars {
                scoped.new_var();
            }
            for c in &base {
                scoped.add_clause(c);
            }
            scoped.push_scope();
            for c in &extra {
                scoped.add_clause(c);
            }
            let with_extra = scoped.solve();
            scoped.pop_scope();
            let base_only = scoped.solve();

            let mut fresh = SatSolver::new_pure();
            for _ in 0..nvars {
                fresh.new_var();
            }
            for c in base.iter().chain(&extra) {
                fresh.add_clause(c);
            }
            assert_eq!(with_extra, fresh.solve(), "scoped vs from-scratch diverged");

            let mut fresh_base = SatSolver::new_pure();
            for _ in 0..nvars {
                fresh_base.new_var();
            }
            for c in &base {
                fresh_base.add_clause(c);
            }
            assert_eq!(
                base_only,
                fresh_base.solve(),
                "pop did not restore the base problem"
            );
        }
    }

    #[test]
    fn scopes_compose_with_assumptions_and_cores() {
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        s.push_scope();
        s.add_clause(&[a.neg(), b.pos()]);
        s.add_clause(&[a.neg(), b.neg()]);
        assert_eq!(s.solve_with_assumptions(&[a.pos()]), SolveResult::Unsat);
        assert!(
            s.unsat_core().contains(&a.pos()),
            "user assumption must appear in the core alongside scope selectors"
        );
        s.pop_scope();
        assert_eq!(s.solve_with_assumptions(&[a.pos()]), SolveResult::Sat);
    }

    #[test]
    fn past_deadline_reports_unknown() {
        let mut s = SatSolver::new_pure();
        pigeonhole(&mut s, 6, 5);
        s.set_deadline(Some(Instant::now() - std::time::Duration::from_millis(1)));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_deadline(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn blocking_clause_enumeration_terminates() {
        // Enumerate all models of (a \/ b) over 2 vars via blocking clauses.
        let mut s = SatSolver::new_pure();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos(), b.pos()]);
        let mut count = 0;
        while s.solve() == SolveResult::Sat {
            count += 1;
            assert!(count <= 3, "more models than possible");
            let block: Vec<Lit> = [a, b]
                .iter()
                .map(|&v| {
                    if s.model_value(v) == LBool::True {
                        v.neg()
                    } else {
                        v.pos()
                    }
                })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 3, "a\\/b has exactly 3 models");
    }
}
