//! Differential fuzzing of the CDCL core against the `naive` oracle.
//!
//! Every generated CNF is solved twice — once by the Glucose-class solver
//! in `sat.rs`, once by `naive::brute_force_check` over a term encoding of
//! the same formula — and the verdicts must agree. Every SAT answer is
//! additionally validated clause-by-clause before it is trusted, so a bug
//! that produced a bogus model (rather than a wrong verdict) is still
//! caught. Generators cover sparse and dense clause/variable ratios,
//! unit-heavy instances that stress propagation, and scoped/assumption
//! interleavings that stress the incremental machinery.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use smt::dimacs::Cnf;
use smt::naive::brute_force_check;
use smt::sat::{SatSolver, SolveResult};
use smt::{LBool, Lit, TermPool, Var};

/// Decide a CNF with the brute-force oracle by encoding each clause as a
/// disjunction over fresh Boolean term variables.
fn oracle_sat(cnf: &Cnf) -> bool {
    let mut pool = TermPool::new();
    let vars: Vec<_> = (0..cnf.num_vars)
        .map(|i| pool.bool_var(format!("v{i}")))
        .collect();
    let clauses: Vec<_> = cnf
        .clauses
        .iter()
        .map(|c| {
            let lits: Vec<_> = c
                .iter()
                .map(|&l| {
                    let v = vars[(l.unsigned_abs() - 1) as usize];
                    if l > 0 {
                        v
                    } else {
                        pool.not(v)
                    }
                })
                .collect();
            pool.or(lits)
        })
        .collect();
    brute_force_check(&pool, &clauses, 0).is_some()
}

/// Load a CNF into a fresh pure-SAT solver.
fn load(cnf: &Cnf) -> (SatSolver, Vec<Var>) {
    let mut s = SatSolver::new_pure();
    let vars: Vec<Var> = (0..cnf.num_vars).map(|_| s.new_var()).collect();
    for c in &cnf.clauses {
        let lits: Vec<Lit> = c
            .iter()
            .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
            .collect();
        s.add_clause(&lits);
    }
    (s, vars)
}

/// Assert that the solver's model satisfies every clause. Don't-care elision
/// can leave variables unassigned in a pure-SAT model (the solver promises
/// any completion works); mirror `extract_model` by completing `Undef` to
/// `false` and check every original clause under that total assignment.
fn assert_model_valid(
    s: &SatSolver,
    vars: &[Var],
    clauses: &[Vec<i32>],
) -> Result<(), TestCaseError> {
    for c in clauses {
        let sat = c.iter().any(|&l| {
            let val = s.model_value(vars[(l.unsigned_abs() - 1) as usize]);
            if l > 0 {
                val == LBool::True
            } else {
                val != LBool::True
            }
        });
        prop_assert!(sat, "model leaves clause {c:?} unsatisfied");
    }
    Ok(())
}

/// CNFs across a spread of clause/variable ratios, from underconstrained
/// (almost surely SAT) to overconstrained (almost surely UNSAT).
fn arb_cnf_ratio() -> impl Strategy<Value = Cnf> {
    (2usize..=6, 1usize..=5).prop_flat_map(|(nv, ratio)| {
        prop::collection::vec(
            prop::collection::vec(
                (1..=nv as i32, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v }),
                1..=3,
            ),
            1..=nv * ratio,
        )
        .prop_map(move |clauses| Cnf {
            num_vars: nv,
            clauses,
        })
    })
}

/// Unit-heavy CNFs: a majority of unit clauses forcing long propagation
/// chains (and frequent top-level conflicts) through the watcher lists.
fn arb_cnf_unit_heavy() -> impl Strategy<Value = Cnf> {
    (3usize..=6).prop_flat_map(|nv| {
        let unit =
            (1..=nv as i32, any::<bool>()).prop_map(|(v, neg)| vec![if neg { -v } else { v }]);
        let wide = prop::collection::vec(
            (1..=nv as i32, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v }),
            2..=3,
        );
        (
            prop::collection::vec(unit, 2..=9),
            prop::collection::vec(wide, 0..=3),
        )
            .prop_map(move |(mut units, wides)| {
                units.extend(wides);
                Cnf {
                    num_vars: nv,
                    clauses: units,
                }
            })
    })
}

/// A base CNF plus an extra clause set to load behind a scope selector, plus
/// a raw assumption vector.
fn arb_scoped_case() -> impl Strategy<Value = (Cnf, Vec<Vec<i32>>, Vec<i32>)> {
    arb_cnf_ratio().prop_flat_map(|base| {
        let nv = base.num_vars;
        let lit = (1..=nv as i32, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v });
        let extra = prop::collection::vec(prop::collection::vec(lit.clone(), 1..=3), 0..=4);
        let assumptions = prop::collection::vec(lit, 0..=2);
        (Just(base), extra, assumptions)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Verdict parity with the naive oracle across clause/var ratios.
    #[test]
    fn ratio_spread_matches_oracle(cnf in arb_cnf_ratio()) {
        let (mut s, vars) = load(&cnf);
        let verdict = s.solve();
        prop_assert_eq!(verdict == SolveResult::Sat, oracle_sat(&cnf));
        if verdict == SolveResult::Sat {
            assert_model_valid(&s, &vars, &cnf.clauses)?;
        }
    }

    /// Verdict parity on unit-heavy instances.
    #[test]
    fn unit_heavy_matches_oracle(cnf in arb_cnf_unit_heavy()) {
        let (mut s, vars) = load(&cnf);
        let verdict = s.solve();
        prop_assert_eq!(verdict == SolveResult::Sat, oracle_sat(&cnf));
        if verdict == SolveResult::Sat {
            assert_model_valid(&s, &vars, &cnf.clauses)?;
        }
    }

    /// Scoped clauses + assumptions: the incremental solver must agree with
    /// the oracle on (base ∧ scoped ∧ assumptions), and again on plain base
    /// after the scope pops — learned clauses may survive but must never
    /// change verdicts.
    #[test]
    fn scoped_assumptions_match_oracle((base, extra, assumptions) in arb_scoped_case()) {
        let (mut s, vars) = load(&base);

        s.push_scope();
        for c in &extra {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
                .collect();
            s.add_clause(&lits);
        }
        let asm: Vec<Lit> = assumptions
            .iter()
            .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
            .collect();

        // Oracle formula: base ∧ extra ∧ unit(assumptions).
        let mut combined = base.clone();
        combined.clauses.extend(extra.iter().cloned());
        combined.clauses.extend(assumptions.iter().map(|&l| vec![l]));
        let verdict = s.solve_with_assumptions(&asm);
        prop_assert_eq!(verdict == SolveResult::Sat, oracle_sat(&combined));
        if verdict == SolveResult::Sat {
            let mut live = base.clauses.clone();
            live.extend(extra.iter().cloned());
            live.extend(assumptions.iter().map(|&l| vec![l]));
            assert_model_valid(&s, &vars, &live)?;
        }

        // After the pop the scoped clauses must stop constraining anything.
        s.pop_scope();
        let verdict = s.solve();
        prop_assert_eq!(verdict == SolveResult::Sat, oracle_sat(&base));
        if verdict == SolveResult::Sat {
            assert_model_valid(&s, &vars, &base.clauses)?;
        }
    }
}
