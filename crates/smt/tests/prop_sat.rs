//! Property tests of the pure SAT core: random CNFs checked against
//! brute-force enumeration, DIMACS round-trips, and model validity.

use proptest::prelude::*;
use smt::dimacs::Cnf;
use smt::sat::SolveResult;

/// Random CNF over `nv` variables: literals are nonzero ints in ±nv.
fn arb_cnf() -> impl Strategy<Value = Cnf> {
    (2usize..9).prop_flat_map(|nv| {
        prop::collection::vec(
            prop::collection::vec(
                (1..=nv as i32, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v }),
                1..4,
            ),
            1..16,
        )
        .prop_map(move |clauses| Cnf {
            num_vars: nv,
            clauses,
        })
    })
}

/// Brute-force SAT check.
fn brute_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars;
    (0..(1u32 << n)).any(|bits| {
        cnf.clauses.iter().all(|c| {
            c.iter().any(|&l| {
                let v = (l.unsigned_abs() - 1) as usize;
                let val = bits >> v & 1 == 1;
                if l > 0 {
                    val
                } else {
                    !val
                }
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Verdict parity with brute force.
    #[test]
    fn cdcl_matches_brute_force(cnf in arb_cnf()) {
        let (verdict, _) = cnf.solve();
        let expected = brute_sat(&cnf);
        prop_assert_eq!(verdict == SolveResult::Sat, expected);
    }

    /// Any SAT model satisfies every clause.
    #[test]
    fn models_are_valid(cnf in arb_cnf()) {
        let (verdict, model) = cnf.solve();
        if verdict == SolveResult::Sat {
            let model = model.unwrap();
            for c in &cnf.clauses {
                prop_assert!(
                    c.iter().any(|l| model.contains(l)),
                    "clause {:?} unsatisfied by {:?}", c, model
                );
            }
        }
    }

    /// DIMACS serialisation round-trips and preserves the verdict.
    #[test]
    fn dimacs_roundtrip_preserves_verdict(cnf in arb_cnf()) {
        let text = cnf.to_dimacs();
        let back = Cnf::parse(&text).unwrap();
        prop_assert_eq!(&back, &cnf);
        prop_assert_eq!(back.solve().0, cnf.solve().0);
    }
}
