//! Scope-invariant property tests for the incremental solver.
//!
//! Random interleavings of `push_scope` / `pop_scope` / `check_assuming`
//! are replayed against the brute-force oracle on the *currently live*
//! assertion set, checking three invariants the session layer's reuse
//! savings depend on:
//!
//! 1. every verdict (scoped or assumption-driven) matches the oracle on
//!    exactly the assertions visible at that moment;
//! 2. popping a scope restores the previous verdict — clauses loaded
//!    behind a selector stop constraining anything once it retires;
//! 3. learned clauses survive pops (selector guarding makes them
//!    scope-safe), so the learnt-clause count never shrinks across a pop.

use proptest::prelude::*;
use smt::naive::brute_force_check;
use smt::{SatResult, SmtSolver, TermId, TermPool};

/// One step of a random incremental-session script.
#[derive(Clone, Debug)]
enum Op {
    /// Open a scope and assert the given constraints inside it.
    Push(Vec<C>),
    /// Close the innermost scope (no-op at depth 0).
    Pop,
    /// Permanently assert at the current scope depth.
    Assert(C),
    /// `check_assuming` with these constraints as assumptions.
    CheckAssuming(Vec<C>),
    /// Plain `check`.
    Check,
}

/// A tiny constraint over 3 int vars and 2 bool vars, mirrored into both
/// the real solver and the oracle pool.
#[derive(Clone, Copy, Debug)]
enum C {
    /// `x - y <= c`.
    Le(u8, u8, i64),
    /// `x - y > c` (negated difference bound).
    Gt(u8, u8, i64),
    /// A Boolean variable or its negation.
    B(u8, bool),
    /// `b -> (x - y <= c)`.
    BImp(u8, u8, u8, i64),
}

const N_INT: usize = 3;
const N_BOOL: usize = 2;

fn arb_c() -> impl Strategy<Value = C> {
    prop_oneof![
        (0u8..N_INT as u8, 0u8..N_INT as u8, -3i64..4).prop_map(|(x, y, c)| C::Le(x, y, c)),
        (0u8..N_INT as u8, 0u8..N_INT as u8, -3i64..4).prop_map(|(x, y, c)| C::Gt(x, y, c)),
        (0u8..N_BOOL as u8, any::<bool>()).prop_map(|(b, pos)| C::B(b, pos)),
        (
            0u8..N_BOOL as u8,
            0u8..N_INT as u8,
            0u8..N_INT as u8,
            -3i64..4
        )
            .prop_map(|(b, x, y, c)| C::BImp(b, x, y, c)),
    ]
}

fn arb_script() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(arb_c(), 1..=3).prop_map(Op::Push),
            Just(Op::Pop),
            arb_c().prop_map(Op::Assert),
            prop::collection::vec(arb_c(), 0..=2).prop_map(Op::CheckAssuming),
            Just(Op::Check),
        ],
        1..12,
    )
}

/// Builds the same constraint in a solver or an oracle pool.
struct Ctx {
    ints: Vec<TermId>,
    bools: Vec<TermId>,
}

impl Ctx {
    fn build(&self, pool: &mut TermPool, c: C) -> TermId {
        match c {
            C::Le(x, y, k) => {
                let x = self.ints[x as usize % N_INT];
                let y = self.ints[y as usize % N_INT];
                let yk = pool.add_const(y, k);
                pool.le(x, yk)
            }
            C::Gt(x, y, k) => {
                let le = self.build(pool, C::Le(x, y, k));
                pool.not(le)
            }
            C::B(b, pos) => {
                let t = self.bools[b as usize % N_BOOL];
                if pos {
                    t
                } else {
                    pool.not(t)
                }
            }
            C::BImp(b, x, y, k) => {
                let ant = self.build(pool, C::B(b, true));
                let con = self.build(pool, C::Le(x, y, k));
                pool.implies(ant, con)
            }
        }
    }
}

fn fresh_ctx(pool: &mut TermPool) -> Ctx {
    Ctx {
        ints: (0..N_INT).map(|i| pool.int_var(format!("x{i}"))).collect(),
        bools: (0..N_BOOL)
            .map(|i| pool.bool_var(format!("b{i}")))
            .collect(),
    }
}

/// Oracle verdict for a conjunction of constraints. Difference constants
/// stay in [-3, 3] and only 3 int vars exist, so bound 9 is complete.
fn oracle(cs: &[C]) -> bool {
    let mut pool = TermPool::new();
    let ctx = fresh_ctx(&mut pool);
    let terms: Vec<TermId> = cs.iter().map(|&c| ctx.build(&mut pool, c)).collect();
    brute_force_check(&pool, &terms, 9).is_some()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn scoped_sessions_match_oracle(script in arb_script()) {
        let mut s = SmtSolver::new();
        let ctx = fresh_ctx(s.pool_mut());

        // Shadow stack of live constraint frames; frame 0 is permanent.
        let mut frames: Vec<Vec<C>> = vec![Vec::new()];
        // Verdict observed at each depth before pushing deeper, to check
        // stability across pops.
        let mut verdict_at_depth: Vec<Option<bool>> = vec![None];
        let mut learnt_before_push: Vec<u64> = Vec::new();

        for op in script {
            match op {
                Op::Push(cs) => {
                    let here = oracle(&frames.concat());
                    verdict_at_depth[frames.len() - 1] = Some(here);
                    learnt_before_push.push(s.stats().learnt_clauses);
                    s.push_scope();
                    frames.push(Vec::new());
                    verdict_at_depth.push(None);
                    for c in cs {
                        let t = ctx.build(s.pool_mut(), c);
                        s.assert_term(t);
                        frames.last_mut().unwrap().push(c);
                    }
                }
                Op::Pop => {
                    if frames.len() > 1 {
                        s.pop_scope();
                        frames.pop();
                        verdict_at_depth.pop();
                        let floor = learnt_before_push.pop().unwrap();
                        let verdict = s.check();
                        // Selector-guarded learning: a pop deactivates the
                        // scope's clauses but never erases learnt ones, so
                        // (absent a database reduction, which these tiny
                        // scripts cannot trigger) the learnt count observed
                        // before the push is a floor afterwards.
                        if s.stats().reduces == 0 {
                            prop_assert!(
                                s.stats().learnt_clauses >= floor,
                                "pop erased learnt clauses: {} < {}",
                                s.stats().learnt_clauses,
                                floor
                            );
                        }
                        // Verdict stability: same live assertions, same
                        // verdict as before the push (if one was taken).
                        let expect = oracle(&frames.concat());
                        prop_assert_eq!(verdict == SatResult::Sat, expect);
                        if let Some(prev) = verdict_at_depth[frames.len() - 1] {
                            prop_assert_eq!(expect, prev, "verdict changed across push/pop");
                        }
                    }
                }
                Op::Assert(c) => {
                    let t = ctx.build(s.pool_mut(), c);
                    s.assert_term(t);
                    frames.last_mut().unwrap().push(c);
                }
                Op::CheckAssuming(asms) => {
                    let terms: Vec<TermId> =
                        asms.iter().map(|&c| ctx.build(s.pool_mut(), c)).collect();
                    let verdict = s.check_assuming(&terms);
                    let mut all = frames.concat();
                    all.extend(asms.iter().copied());
                    prop_assert_eq!(verdict == SatResult::Sat, oracle(&all));
                }
                Op::Check => {
                    let verdict = s.check();
                    prop_assert_eq!(verdict == SatResult::Sat, oracle(&frames.concat()));
                }
            }
        }

        // Unwind everything: the base frame's verdict must be intact.
        while s.num_scopes() > 0 {
            s.pop_scope();
            frames.pop();
        }
        prop_assert_eq!(s.check() == SatResult::Sat, oracle(&frames.concat()));
    }
}
