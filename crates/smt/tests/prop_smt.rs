//! Property-based differential tests: the DPLL(T) solver against
//! brute-force enumeration and the Floyd–Warshall feasibility oracle.

use proptest::prelude::*;
use smt::naive::{brute_force_check, difference_feasible};
use smt::{SatResult, SmtSolver, TermId};

/// A small random formula AST we can build into any solver.
#[derive(Clone, Debug)]
enum F {
    Lit(bool),
    Cmp(u8, u8, u8, i64), // op, var_a, var_b, const offset
    BoolVar(u8),
    Not(Box<F>),
    And(Box<F>, Box<F>),
    Or(Box<F>, Box<F>),
    Implies(Box<F>, Box<F>),
    Iff(Box<F>, Box<F>),
}

fn leaf() -> impl Strategy<Value = F> {
    prop_oneof![
        any::<bool>().prop_map(F::Lit),
        (0u8..6, 0u8..3, 0u8..3, -3i64..4).prop_map(|(op, a, b, c)| F::Cmp(op, a, b, c)),
        (0u8..2).prop_map(F::BoolVar),
    ]
}

fn formula() -> impl Strategy<Value = F> {
    leaf().prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| F::Not(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Implies(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| F::Iff(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(f: &F, s: &mut SmtSolver, ints: &[TermId], bools: &[TermId]) -> TermId {
    match f {
        F::Lit(true) => s.tru(),
        F::Lit(false) => s.fls(),
        F::BoolVar(i) => bools[*i as usize % bools.len()],
        F::Cmp(op, a, b, c) => {
            let ta = ints[*a as usize % ints.len()];
            let tb = ints[*b as usize % ints.len()];
            let tbc = s.add_const(tb, *c);
            match op % 6 {
                0 => s.le(ta, tbc),
                1 => s.lt(ta, tbc),
                2 => s.ge(ta, tbc),
                3 => s.gt(ta, tbc),
                4 => s.eq(ta, tbc),
                _ => s.ne(ta, tbc),
            }
        }
        F::Not(x) => {
            let t = build(x, s, ints, bools);
            s.not(t)
        }
        F::And(a, b) => {
            let ta = build(a, s, ints, bools);
            let tb = build(b, s, ints, bools);
            s.and2(ta, tb)
        }
        F::Or(a, b) => {
            let ta = build(a, s, ints, bools);
            let tb = build(b, s, ints, bools);
            s.or2(ta, tb)
        }
        F::Implies(a, b) => {
            let ta = build(a, s, ints, bools);
            let tb = build(b, s, ints, bools);
            s.implies(ta, tb)
        }
        F::Iff(a, b) => {
            let ta = build(a, s, ints, bools);
            let tb = build(b, s, ints, bools);
            s.iff(ta, tb)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Verdict parity with brute force over a bounded integer domain.
    /// Constants are in [-3, 3] and at most 3 int variables exist, so any
    /// satisfiable conjunction has a model within [-9, 9]: differences
    /// between any two variables are bounded by the largest constant chain.
    #[test]
    fn solver_matches_brute_force(fs in prop::collection::vec(formula(), 1..4)) {
        let mut s = SmtSolver::new();
        let ints: Vec<TermId> = (0..3).map(|i| s.int_var(format!("x{i}"))).collect();
        let bools: Vec<TermId> = (0..2).map(|i| s.bool_var(format!("b{i}"))).collect();
        let mut roots = Vec::new();
        for f in &fs {
            let t = build(f, &mut s, &ints, &bools);
            s.assert_term(t);
            roots.push(t);
        }
        let verdict = s.check();
        let oracle = brute_force_check(s.pool(), &roots, 9);
        match (verdict, &oracle) {
            (SatResult::Sat, Some(_)) | (SatResult::Unsat, None) => {}
            (SatResult::Sat, None) => {
                // The solver found a model outside the brute-force bound?
                // Impossible for this fragment; but verify the model anyway
                // before failing, to produce a useful message.
                let m = s.model().unwrap();
                for &r in &roots {
                    prop_assert_eq!(
                        m.eval_bool(s.pool(), r),
                        Some(true),
                        "solver SAT but model does not satisfy"
                    );
                }
                prop_assert!(false, "solver SAT, brute force UNSAT within bound");
            }
            (SatResult::Unsat, Some(m)) => {
                prop_assert!(false, "solver UNSAT but witness exists: {:?}", m.ints);
            }
            (SatResult::Unknown, _) => prop_assert!(false, "unexpected Unknown"),
        }
    }

    /// Any SAT model must actually satisfy every asserted root.
    #[test]
    fn models_satisfy_assertions(fs in prop::collection::vec(formula(), 1..5)) {
        let mut s = SmtSolver::new();
        let ints: Vec<TermId> = (0..3).map(|i| s.int_var(format!("x{i}"))).collect();
        let bools: Vec<TermId> = (0..2).map(|i| s.bool_var(format!("b{i}"))).collect();
        let mut roots = Vec::new();
        for f in &fs {
            let t = build(f, &mut s, &ints, &bools);
            s.assert_term(t);
            roots.push(t);
        }
        if s.check() == SatResult::Sat {
            let m = s.model().unwrap();
            for &r in &roots {
                prop_assert_eq!(m.eval_bool(s.pool(), r), Some(true));
            }
        }
    }

    /// Incremental solving is equivalent to batch solving.
    #[test]
    fn incremental_equals_batch(fs in prop::collection::vec(formula(), 2..5)) {
        let build_all = |solver: &mut SmtSolver| -> Vec<TermId> {
            let ints: Vec<TermId> = (0..3).map(|i| solver.int_var(format!("x{i}"))).collect();
            let bools: Vec<TermId> = (0..2).map(|i| solver.bool_var(format!("b{i}"))).collect();
            fs.iter().map(|f| build(f, solver, &ints, &bools)).collect()
        };
        // Batch: assert everything, check once.
        let mut batch = SmtSolver::new();
        for t in build_all(&mut batch) {
            batch.assert_term(t);
        }
        let batch_verdict = batch.check();
        // Incremental: check after every assertion; the last verdict must
        // match, and verdicts must be monotonically SAT -> UNSAT.
        let mut inc = SmtSolver::new();
        let roots = build_all(&mut inc);
        let mut last = SatResult::Sat;
        let mut seen_unsat = false;
        for t in roots {
            inc.assert_term(t);
            last = inc.check();
            if last == SatResult::Unsat {
                seen_unsat = true;
            } else {
                prop_assert!(!seen_unsat, "SAT after UNSAT is impossible when only adding");
            }
        }
        prop_assert_eq!(last, batch_verdict);
    }

    /// Difference-logic conjunctions against Floyd–Warshall.
    #[test]
    fn idl_conjunctions_match_floyd_warshall(
        edges in prop::collection::vec((0u32..5, 0u32..5, -5i64..6), 1..12)
    ) {
        let clean: Vec<(u32, u32, i64)> =
            edges.into_iter().filter(|(a, b, _)| a != b).collect();
        prop_assume!(!clean.is_empty());
        let mut s = SmtSolver::new();
        let vars: Vec<TermId> = (0..5).map(|i| s.int_var(format!("v{i}"))).collect();
        for &(a, b, c) in &clean {
            // v_a - v_b <= c
            let diff = s.sub(vars[a as usize], vars[b as usize]);
            let k = s.int_const(c);
            let t = s.le(diff, k);
            s.assert_term(t);
        }
        let verdict = s.check();
        let feasible = difference_feasible(5, &clean);
        prop_assert_eq!(verdict == SatResult::Sat, feasible);
    }

    /// check_assuming never changes the permanent assertion set.
    #[test]
    fn assumptions_are_transient(f1 in formula(), f2 in formula()) {
        let mut s = SmtSolver::new();
        let ints: Vec<TermId> = (0..3).map(|i| s.int_var(format!("x{i}"))).collect();
        let bools: Vec<TermId> = (0..2).map(|i| s.bool_var(format!("b{i}"))).collect();
        let t1 = build(&f1, &mut s, &ints, &bools);
        let t2 = build(&f2, &mut s, &ints, &bools);
        s.assert_term(t1);
        let before = s.check();
        let _ = s.check_assuming(&[t2]);
        let after = s.check();
        prop_assert_eq!(before, after);
    }
}
