//! Golden regression corpus: small DIMACS instances with known verdicts.
//!
//! The corpus pins the CDCL core's behaviour on hand-picked shapes —
//! planted satisfiable 3-SAT, propagation-only chains, underconstrained
//! wide clauses, an odd inequality ring, and three pigeonhole instances
//! (the 6-into-5 one is the learning stress case: it forces
//! hundreds of conflicts and a deep learnt-clause stack, the shape that
//! historically exposed first-UIP and watch-list bugs during the
//! Glucose-class rewrite; the 7-into-6 one is long enough that the
//! dynamic restart policy provably fires). Besides verdicts, the test
//! checks that every
//! SAT answer carries a clause-validating model and that the `Stats`
//! counters a solve leaves behind are internally consistent.

use smt::dimacs::Cnf;
use smt::sat::{SatSolver, SolveResult};
use smt::{LBool, Lit, Stats, Var};

const CORPUS: &[(&str, &str, bool)] = &[
    (
        "sat_planted_20.cnf",
        include_str!("dimacs/sat_planted_20.cnf"),
        true,
    ),
    (
        "sat_chain_units.cnf",
        include_str!("dimacs/sat_chain_units.cnf"),
        true,
    ),
    (
        "sat_wide_12.cnf",
        include_str!("dimacs/sat_wide_12.cnf"),
        true,
    ),
    (
        "unsat_php_4_3.cnf",
        include_str!("dimacs/unsat_php_4_3.cnf"),
        false,
    ),
    (
        "unsat_php_6_5.cnf",
        include_str!("dimacs/unsat_php_6_5.cnf"),
        false,
    ),
    (
        "unsat_php_7_6.cnf",
        include_str!("dimacs/unsat_php_7_6.cnf"),
        false,
    ),
    (
        "unsat_xor_ring_9.cnf",
        include_str!("dimacs/unsat_xor_ring_9.cnf"),
        false,
    ),
];

fn solve_collecting_stats(cnf: &Cnf) -> (SolveResult, SatSolver, Vec<Var>) {
    let mut s = SatSolver::new_pure();
    let vars: Vec<Var> = (0..cnf.num_vars).map(|_| s.new_var()).collect();
    for c in &cnf.clauses {
        let lits: Vec<Lit> = c
            .iter()
            .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
            .collect();
        s.add_clause(&lits);
    }
    let verdict = s.solve();
    (verdict, s, vars)
}

fn assert_stats_consistent(name: &str, st: &Stats) {
    assert_eq!(st.solves, 1, "{name}: exactly one solve recorded");
    assert!(st.clauses_added > 0, "{name}: problem clauses recorded");
    // Each conflict learns at most one clause (assumption-level conflicts
    // learn none), and unit learnts never enter the clause database.
    assert!(
        st.learned_total <= st.conflicts,
        "{name}: learned {} > conflicts {}",
        st.learned_total,
        st.conflicts
    );
    assert!(
        st.learnt_clauses + st.deleted_clauses <= st.learned_total,
        "{name}: live {} + deleted {} learnt clauses exceed lifetime total {}",
        st.learnt_clauses,
        st.deleted_clauses,
        st.learned_total
    );
    // Every learnt clause has LBD >= 1, so the glue sum bounds the count.
    assert!(
        st.sum_lbd >= st.learned_total,
        "{name}: sum_lbd {} below learned_total {}",
        st.sum_lbd,
        st.learned_total
    );
    assert_eq!(st.theory_conflicts, 0, "{name}: pure SAT has no theory");
    assert!(
        st.conflicts == 0 || st.decisions > 0 || st.propagations > 0,
        "{name}: conflicts without any search activity"
    );
}

#[test]
fn corpus_verdicts_and_stats() {
    for &(name, text, expect_sat) in CORPUS {
        let cnf = Cnf::parse(text).unwrap_or_else(|e| panic!("{name}: parse failed: {e:?}"));
        let (verdict, s, vars) = solve_collecting_stats(&cnf);
        assert_eq!(
            verdict == SolveResult::Sat,
            expect_sat,
            "{name}: verdict {verdict:?}"
        );
        if expect_sat {
            // Validate the model before trusting it; Undef (don't-care
            // elided) variables may take either value, complete with false.
            for c in &cnf.clauses {
                let sat = c.iter().any(|&l| {
                    let val = s.model_value(vars[(l.unsigned_abs() - 1) as usize]);
                    if l > 0 {
                        val == LBool::True
                    } else {
                        val != LBool::True
                    }
                });
                assert!(sat, "{name}: model leaves clause {c:?} unsatisfied");
            }
        }
        assert_stats_consistent(name, s.stats());
    }
}

#[test]
fn pigeonhole_6_5_exercises_learning() {
    let cnf = Cnf::parse(include_str!("dimacs/unsat_php_6_5.cnf")).unwrap();
    let (verdict, s, _) = solve_collecting_stats(&cnf);
    assert_eq!(verdict, SolveResult::Unsat);
    let st = s.stats();
    assert!(
        st.conflicts >= 20,
        "expected a conflict-heavy refutation, got {}",
        st.conflicts
    );
    assert!(
        st.learned_total >= 10,
        "expected clause learning, got {}",
        st.learned_total
    );
    assert!(st.propagations > st.decisions, "BCP should dominate");
}

#[test]
fn pigeonhole_7_6_fires_the_restart_policy() {
    // The 6-into-5 instance refutes before the EMA restart window closes;
    // this one is the smallest corpus member whose refutation is long
    // enough that the Glucose-style dynamic restarts actually fire, so it
    // pins the policy (and its interval sampling) against regression.
    let cnf = Cnf::parse(include_str!("dimacs/unsat_php_7_6.cnf")).unwrap();
    let (verdict, s, _) = solve_collecting_stats(&cnf);
    assert_eq!(verdict, SolveResult::Unsat);
    let st = s.stats();
    assert!(
        st.restarts > 0,
        "expected the restart EMAs to fire at least once, got {} restarts \
         over {} conflicts",
        st.restarts,
        st.conflicts
    );
    // Each restart records its conflict interval; a conflict-heavy solve
    // with restarts must leave the distribution populated.
    let intervals = s.introspect().restart_interval.count();
    assert_eq!(
        intervals, st.restarts,
        "one sampled interval per restart (got {intervals} samples for {} restarts)",
        st.restarts
    );
}

#[test]
fn chain_instance_is_pure_propagation() {
    let cnf = Cnf::parse(include_str!("dimacs/sat_chain_units.cnf")).unwrap();
    let (verdict, s, vars) = solve_collecting_stats(&cnf);
    assert_eq!(verdict, SolveResult::Sat);
    // The unit at the root forces the whole chain at level 0.
    assert_eq!(s.stats().conflicts, 0);
    for v in vars {
        assert_eq!(s.model_value(v), LBool::True);
    }
}

#[test]
fn corpus_roundtrips_through_dimacs_writer() {
    for &(name, text, _) in CORPUS {
        let cnf = Cnf::parse(text).unwrap();
        let back = Cnf::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(back, cnf, "{name}: to_dimacs/parse not a round trip");
    }
}
