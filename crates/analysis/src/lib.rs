//! # analysis — static communication analysis over compiled MCAPI programs
//!
//! A pre-verification pass over [`mcapi::program::Program`]s (flat,
//! loop-free code) producing three artefacts:
//!
//! 1. **Lint findings** ([`Finding`]): orphan receives (no reachable
//!    sender targets the endpoint), waits on never-issued requests,
//!    definite deadlocks over the blocking-dependency graph, statically
//!    false / tautological assertions, and statically infeasible branch
//!    arms. The MCAPI-lite frontend maps findings back to source spans
//!    via [`mcapi::program::Thread::origins`] and renders them with the
//!    caret machinery (`mcapi-smc lint`).
//! 2. **Pruning facts** ([`StaticFacts`]): per-pc forced branch outcomes
//!    and constant send payloads, consumed by the path engine's pruner
//!    (`symbolic::paths::PathPruner`) to discharge infeasible plans
//!    without solver queries and to tighten receive-value domains.
//! 3. **A triage verdict** ([`triage::StaticVerdict`]): scenarios the
//!    analysis can decide soundly (see `crate::triage` for the argument)
//!    are settled with zero engine work by the portfolio driver.
//!
//! Everything rests on per-thread constant propagation
//! (`crate::constprop`), which reuses the interpreter's own expression
//! evaluators so the static story can never diverge from execution.

#![warn(missing_docs)]

pub mod comm;
pub mod constprop;
pub mod triage;

use comm::{sends_by_endpoint, straight_run, RunEnd, SendSite, StraightRun};
use constprop::{eval_cond, flow, ThreadFlow, Val};
use mcapi::program::{Instr, Program};
use mcapi::types::EndpointAddr;
use std::collections::BTreeMap;

pub use triage::{StaticVerdict, TriageConfig};

/// How serious a finding is. `Error`-class findings describe programs
/// that can never work as written; `Warning`-class findings are dead or
/// redundant communication structure.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but not definitely broken (dead arms, no-op waits,
    /// tautological assertions).
    Warning,
    /// Definitely broken: unmatchable receives, definite deadlocks,
    /// statically false assertions.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// What kind of defect a finding reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FindingKind {
    /// A receive whose endpoint no reachable send targets.
    OrphanReceive,
    /// A wait on a request no path can have issued.
    DanglingWait,
    /// A thread provably blocked forever (blocking-dependency cycle).
    DefiniteDeadlock,
    /// An assertion whose condition is statically false.
    AssertStaticallyFalse,
    /// An assertion whose condition is statically true on every path.
    AssertTautology,
    /// A branch whose condition is constant: one arm can never execute.
    InfeasibleArm,
    /// A variable that is never read (frontend-lowered programs only).
    UnusedVariable,
    /// A request handle that is never waited on (frontend-lowered
    /// programs only).
    UnusedRequest,
}

/// One diagnostic produced by the analysis.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Defect class.
    pub kind: FindingKind,
    /// Error or warning.
    pub severity: Severity,
    /// Offending thread index.
    pub thread: usize,
    /// Offending instruction index (first relevant copy for ops that were
    /// unrolled into several instructions).
    pub pc: usize,
    /// Pre-order structured-op ordinal (`Thread::origins[pc]`), when the
    /// program carries an origin table — the frontend's span key.
    pub op: Option<u32>,
    /// Human-readable description; names the thread and op index itself
    /// so the finding survives outside span-aware renderers.
    pub message: String,
}

/// Facts the path engine's pruner consumes. Both tables are parallel to
/// each thread's `code`.
#[derive(Clone, Debug, Default)]
pub struct StaticFacts {
    /// `forced[t][pc] = Some(outcome)`: the branch at `t:pc` takes
    /// `outcome` in every execution (its condition is constant).
    pub forced: Vec<Vec<Option<bool>>>,
    /// `const_payloads[t][pc] = Some(v)`: the send at `t:pc` always
    /// carries exactly `v` (its payload expression is constant on every
    /// reaching path).
    pub const_payloads: Vec<Vec<Option<i64>>>,
}

impl StaticFacts {
    /// An empty fact table (used when the analysis is disabled or the
    /// program has non-forward flat code it refuses to reason about).
    pub fn empty(program: &Program) -> StaticFacts {
        StaticFacts {
            forced: program
                .threads
                .iter()
                .map(|t| vec![None; t.code.len()])
                .collect(),
            const_payloads: program
                .threads
                .iter()
                .map(|t| vec![None; t.code.len()])
                .collect(),
        }
    }

    /// Number of forced-branch facts.
    pub fn forced_count(&self) -> usize {
        self.forced.iter().flatten().filter(|f| f.is_some()).count()
    }
}

/// Everything one analysis run produced.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Lint findings, ordered by (thread, pc).
    pub findings: Vec<Finding>,
    /// Pruning facts for the path engine.
    pub facts: StaticFacts,
    /// A statically decided verdict, when triage applies.
    pub static_verdict: Option<StaticVerdict>,
    /// The static path-space size (saturated just past the triage budget).
    pub static_paths: u64,
}

impl AnalysisReport {
    /// Findings at `severity` or worse.
    pub fn count_at_least(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity >= severity)
            .count()
    }
}

/// Is every branch/jump edge strictly forward? Compiled programs always
/// are; hand-written flat JSON might not be, and the analysis refuses to
/// reason about cyclic code rather than risk an unsound claim.
fn forward_only(program: &Program) -> bool {
    program.threads.iter().all(|t| {
        t.code.iter().enumerate().all(|(pc, ins)| match ins {
            Instr::Branch { else_target, .. } => *else_target > pc,
            Instr::Jump { target } => *target > pc,
            _ => true,
        })
    })
}

/// Just the pruning facts (the path engine's entry point — it has no use
/// for findings or triage).
pub fn facts(program: &Program) -> StaticFacts {
    if !forward_only(program) {
        return StaticFacts::empty(program);
    }
    let flows: Vec<ThreadFlow> = program.threads.iter().map(flow).collect();
    facts_from_flows(program, &flows)
}

fn facts_from_flows(program: &Program, flows: &[ThreadFlow]) -> StaticFacts {
    let mut f = StaticFacts::empty(program);
    for (t, thread) in program.threads.iter().enumerate() {
        f.forced[t].clone_from(&flows[t].forced);
        for (pc, ins) in thread.code.iter().enumerate() {
            let value = match ins {
                Instr::Send { value, .. } | Instr::SendI { value, .. } => value,
                _ => continue,
            };
            let Some(vals) = flows[t].in_vals[pc].as_deref() else {
                continue;
            };
            if let Val::Const(c) = constprop::eval_expr(value, vals) {
                f.const_payloads[t][pc] = Some(c);
            }
        }
    }
    f
}

/// Run the full analysis under the default [`TriageConfig`].
pub fn analyze(program: &Program) -> AnalysisReport {
    analyze_with(program, &TriageConfig::default())
}

/// Run the full analysis: constant propagation, the communication graph,
/// match-potential and deadlock findings, assertion/arm classification,
/// pruning facts, and triage.
pub fn analyze_with(program: &Program, cfg: &TriageConfig) -> AnalysisReport {
    if !forward_only(program) {
        return AnalysisReport {
            findings: Vec::new(),
            facts: StaticFacts::empty(program),
            static_verdict: None,
            static_paths: triage::static_path_product(program, cfg.max_static_paths),
        };
    }
    let flows: Vec<ThreadFlow> = program.threads.iter().map(flow).collect();
    let runs: Vec<StraightRun> = program
        .threads
        .iter()
        .enumerate()
        .map(|(t, th)| straight_run(t, th))
        .collect();
    let sends_to = sends_by_endpoint(program, &flows);

    let mut findings = Vec::new();
    match_potential_findings(program, &flows, &sends_to, &mut findings);
    deadlock_findings(program, &runs, &sends_to, &mut findings);
    classification_findings(program, &flows, &mut findings);
    findings.sort_by_key(|f| (f.thread, f.pc));

    let static_verdict = triage::triage(program, &flows, &runs, &findings, cfg);
    AnalysisReport {
        findings,
        facts: facts_from_flows(program, &flows),
        static_verdict,
        static_paths: triage::static_path_product(program, cfg.max_static_paths),
    }
}

/// The `thread `name` op N:` site prefix every finding message carries
/// (mirrors `McapiError::Validation` messages).
fn site(program: &Program, thread: usize, pc: usize) -> String {
    let t = &program.threads[thread];
    match t.origins.get(pc) {
        Some(op) => format!("thread `{}` op {op}", t.name),
        None => format!("thread `{}` pc {pc}", t.name),
    }
}

fn finding(
    program: &Program,
    kind: FindingKind,
    severity: Severity,
    thread: usize,
    pc: usize,
    what: String,
) -> Finding {
    Finding {
        kind,
        severity,
        thread,
        pc,
        op: program.threads[thread].origins.get(pc).copied(),
        message: format!("{}: {what}", site(program, thread, pc)),
    }
}

/// Orphan receives and dangling waits.
fn match_potential_findings(
    program: &Program,
    flows: &[ThreadFlow],
    sends_to: &BTreeMap<EndpointAddr, Vec<SendSite>>,
    findings: &mut Vec<Finding>,
) {
    for (t, thread) in program.threads.iter().enumerate() {
        for (pc, ins) in thread.code.iter().enumerate() {
            if !flows[t].reachable(pc) {
                continue;
            }
            match ins {
                Instr::Recv { port, .. } | Instr::RecvI { port, .. } => {
                    let ep = EndpointAddr::new(t, *port);
                    if sends_to.get(&ep).is_some_and(|s| !s.is_empty()) {
                        continue;
                    }
                    let (severity, what) = match ins {
                        Instr::Recv { .. } => (
                            Severity::Error,
                            format!(
                                "receive on port {port} can never be matched: no reachable \
                                 send targets endpoint {ep} (definite deadlock once reached)"
                            ),
                        ),
                        _ => (
                            Severity::Warning,
                            format!(
                                "non-blocking receive on port {port} can never complete: \
                                 no reachable send targets endpoint {ep}"
                            ),
                        ),
                    };
                    findings.push(finding(
                        program,
                        FindingKind::OrphanReceive,
                        severity,
                        t,
                        pc,
                        what,
                    ));
                }
                Instr::Wait { req } => {
                    let issued = flows[t].in_reqs[pc]
                        .as_ref()
                        .is_some_and(|reqs| reqs[req.0 as usize]);
                    if !issued {
                        findings.push(finding(
                            program,
                            FindingKind::DanglingWait,
                            Severity::Warning,
                            t,
                            pc,
                            format!(
                                "wait on {req:?}, which no send_i/recv_i on any path \
                                 can have issued; the wait is a no-op"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

/// Definite-deadlock findings from the blocking-dependency fixpoint.
/// Orphan receives (endpoint with no reachable sender at all) are already
/// reported by [`match_potential_findings`]; this reports the cyclic
/// cases, where senders exist but are provably stuck themselves.
fn deadlock_findings(
    program: &Program,
    runs: &[StraightRun],
    sends_to: &BTreeMap<EndpointAddr, Vec<SendSite>>,
    findings: &mut Vec<Finding>,
) {
    let dead = comm::definitely_deadlocked(program, runs, sends_to);
    if dead.is_empty() {
        return;
    }
    let stuck: Vec<&str> = dead
        .iter()
        .map(|&(t, _)| program.threads[t].name.as_str())
        .collect();
    let stuck = stuck.join(", ");
    for &(t, pc) in &dead {
        let RunEnd::Blocked { endpoint, .. } = runs[t].end else {
            continue;
        };
        if sends_to.get(&endpoint).is_none_or(|s| s.is_empty()) {
            continue; // already reported as an orphan receive
        }
        findings.push(finding(
            program,
            FindingKind::DefiniteDeadlock,
            Severity::Error,
            t,
            pc,
            format!(
                "definite deadlock: `{}` blocks here waiting on {endpoint}, and every \
                 thread that could send there is itself blocked forever \
                 (stuck set: {stuck})",
                program.threads[t].name
            ),
        ));
    }
}

/// Assertion and branch-arm classification, aggregated per structured op:
/// an unrolled `repeat` flattens one source op into many instructions,
/// and a source-level claim ("this arm is dead", "this assert is a
/// tautology") must hold for *every* unrolled copy.
fn classification_findings(program: &Program, flows: &[ThreadFlow], findings: &mut Vec<Finding>) {
    // Key: Ok(origin ordinal) when the program carries an origin table,
    // Err(pc) (every pc its own group) when it does not.
    type OriginKey = Result<u32, usize>;
    for (t, thread) in program.threads.iter().enumerate() {
        let mut asserts: BTreeMap<OriginKey, Vec<usize>> = BTreeMap::new();
        let mut branches: BTreeMap<OriginKey, Vec<usize>> = BTreeMap::new();
        for (pc, ins) in thread.code.iter().enumerate() {
            if !flows[t].reachable(pc) {
                continue;
            }
            let key = thread.origins.get(pc).copied().ok_or(pc);
            match ins {
                Instr::Assert { .. } => asserts.entry(key).or_default().push(pc),
                Instr::Branch { .. } => branches.entry(key).or_default().push(pc),
                _ => {}
            }
        }
        for pcs in asserts.values() {
            let evals: Vec<Option<bool>> = pcs
                .iter()
                .map(|&pc| {
                    let Instr::Assert { cond, .. } = &thread.code[pc] else {
                        unreachable!()
                    };
                    flows[t].in_vals[pc]
                        .as_deref()
                        .and_then(|vals| eval_cond(cond, vals))
                })
                .collect();
            if let Some(i) = evals.iter().position(|e| *e == Some(false)) {
                let pc = pcs[i];
                let Instr::Assert { message, .. } = &thread.code[pc] else {
                    unreachable!()
                };
                findings.push(finding(
                    program,
                    FindingKind::AssertStaticallyFalse,
                    Severity::Error,
                    t,
                    pc,
                    format!("assertion `{message}` is statically false"),
                ));
            } else if evals.iter().all(|e| *e == Some(true)) {
                let pc = pcs[0];
                let Instr::Assert { message, .. } = &thread.code[pc] else {
                    unreachable!()
                };
                findings.push(finding(
                    program,
                    FindingKind::AssertTautology,
                    Severity::Warning,
                    t,
                    pc,
                    format!("assertion `{message}` is statically true on every path"),
                ));
            }
        }
        for pcs in branches.values() {
            let forced: Vec<Option<bool>> = pcs.iter().map(|&pc| flows[t].forced[pc]).collect();
            let (outcome, dead_arm) = if forced.iter().all(|f| *f == Some(true)) {
                ("true", "else")
            } else if forced.iter().all(|f| *f == Some(false)) {
                ("false", "then")
            } else {
                continue;
            };
            findings.push(finding(
                program,
                FindingKind::InfeasibleArm,
                Severity::Warning,
                t,
                pcs[0],
                format!(
                    "branch condition is statically {outcome}; \
                     the {dead_arm} arm can never execute"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcapi::builder::ProgramBuilder;
    use mcapi::expr::{Cond, Expr};
    use mcapi::program::Op;
    use mcapi::types::CmpOp;

    fn kinds(report: &AnalysisReport) -> Vec<FindingKind> {
        report.findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn orphan_receive_is_an_error_naming_the_endpoint() {
        let mut b = ProgramBuilder::new("orphan");
        let a = b.thread("a");
        let c = b.thread("c");
        b.recv(a, 0);
        b.send_const(c, a, 1, 5); // wrong port
        b.port(a, 1);
        let p = b.build().unwrap();
        let report = analyze(&p);
        let f = &report.findings[0];
        assert_eq!(f.kind, FindingKind::OrphanReceive);
        assert_eq!(f.severity, Severity::Error);
        assert!(f.message.contains("thread `a` op 0"), "{}", f.message);
        assert!(f.message.contains("endpoint 0:0"), "{}", f.message);
        assert_eq!(report.static_verdict, None, "errors block triage");
    }

    #[test]
    fn dangling_wait_is_a_warning_and_does_not_block_triage() {
        let mut b = ProgramBuilder::new("dangle");
        let t = b.thread("t");
        let r = b.fresh_req(t);
        b.wait(t, r);
        let p = b.build().unwrap();
        let report = analyze(&p);
        assert_eq!(kinds(&report), vec![FindingKind::DanglingWait]);
        assert_eq!(report.findings[0].severity, Severity::Warning);
        assert_eq!(report.static_verdict, Some(StaticVerdict::Safe));
    }

    #[test]
    fn cyclic_blocking_is_reported_once_per_stuck_thread() {
        let mut b = ProgramBuilder::new("cycle");
        let a = b.thread("a");
        let c = b.thread("c");
        b.recv(a, 0);
        b.send_const(a, c, 0, 1);
        b.recv(c, 0);
        b.send_const(c, a, 0, 2);
        let p = b.build().unwrap();
        let report = analyze(&p);
        let dead: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::DefiniteDeadlock)
            .collect();
        assert_eq!(dead.len(), 2);
        assert!(
            dead[0].message.contains("stuck set: a, c"),
            "{}",
            dead[0].message
        );
    }

    #[test]
    fn constant_conditions_classify_arms_and_asserts() {
        let mut b = ProgramBuilder::new("consts");
        let t = b.thread("t");
        let x = b.fresh_var(t);
        b.assign(t, x, Expr::Const(7));
        b.push_op(
            t,
            Op::If {
                cond: Cond::cmp(CmpOp::Ge, Expr::Var(x), Expr::Const(5)),
                then_ops: vec![],
                else_ops: vec![Op::Send {
                    to: EndpointAddr::new(0, 0),
                    value: Expr::Const(0),
                }],
            },
        );
        b.assert_cond(
            t,
            Cond::cmp(CmpOp::Eq, Expr::Var(x), Expr::Const(7)),
            "x is seven",
        );
        let p = b.build().unwrap();
        let report = analyze(&p);
        assert_eq!(
            kinds(&report),
            vec![FindingKind::InfeasibleArm, FindingKind::AssertTautology]
        );
        assert!(report.findings[0].message.contains("statically true"));
        assert!(report.findings[1]
            .message
            .contains("statically true on every path"));
        // Tautologies and dead arms are warnings: triage still settles.
        assert_eq!(report.static_verdict, Some(StaticVerdict::Safe));
        assert_eq!(report.facts.forced_count(), 1);
    }

    #[test]
    fn unrolled_loop_copies_aggregate_per_source_op() {
        // A branch on the loop counter takes different arms on different
        // iterations: neither arm is dead at the source level, so no
        // infeasible-arm finding may fire even though every unrolled copy
        // is individually forced.
        let mut b = ProgramBuilder::new("loop");
        let t = b.thread("t");
        let u = b.thread("u");
        let i = b.fresh_var(t);
        b.repeat(t, 3, |body| {
            body.push_op(Op::If {
                cond: Cond::cmp(CmpOp::Ge, Expr::Var(i), Expr::Const(1)),
                then_ops: vec![Op::Send {
                    to: EndpointAddr::new(1, 0),
                    value: Expr::Var(i),
                }],
                else_ops: vec![],
            });
            body.assign(i, Expr::Var(i).plus(1));
        });
        for _ in 0..2 {
            b.recv(u, 0);
        }
        let p = b.build().unwrap();
        let report = analyze(&p);
        assert!(
            !kinds(&report).contains(&FindingKind::InfeasibleArm),
            "{:?}",
            report.findings
        );
        // The per-copy facts still exist for the pruner.
        assert_eq!(report.facts.forced_count(), 3);
        // Iteration payloads are constant: 1 and 2.
        let consts: Vec<i64> = report.facts.const_payloads[0]
            .iter()
            .flatten()
            .copied()
            .collect();
        assert_eq!(consts, vec![1, 2]);
    }

    #[test]
    fn facts_refuse_cyclic_flat_code() {
        use mcapi::program::{Instr, Thread};
        let p = Program {
            name: "cyclic".into(),
            threads: vec![Thread {
                name: "t".into(),
                ops: vec![],
                num_vars: 0,
                num_reqs: 0,
                ports: vec![],
                code: vec![Instr::Jump { target: 0 }],
                origins: vec![],
            }],
        };
        let f = facts(&p);
        assert_eq!(f.forced_count(), 0);
        let report = analyze(&p);
        assert!(report.findings.is_empty());
        assert_eq!(report.static_verdict, None);
    }
}
