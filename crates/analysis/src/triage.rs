//! Sound pre-verification triage: settle a scenario statically when — and
//! only when — every engine would provably return the same verdict.
//!
//! Two rules, both delivery-model independent (the facts they rest on
//! involve no message matching at all):
//!
//! - **Violation**: some thread's deterministic straight-run prefix
//!   reaches an assertion whose condition is statically false. The prefix
//!   executes in every maximal execution (locals start at zero, sends
//!   never block, all branches up to that point are forced), so every
//!   maximal execution fails an assertion — the explicit baseline finds
//!   it exhaustively, the trace engines see it on any generated trace,
//!   and the path engine hits it on its first plan.
//! - **Safe**: every statically reachable assertion is a tautology under
//!   the constant-propagation join (true for *every* combination of
//!   branch outcomes and received values), and no error-class finding
//!   (orphan receive / definite deadlock) clouds the picture. No
//!   execution can fail an assertion, so every engine answers `Safe`.
//!
//! Both rules are guarded by the static path count: when a thread's
//! branch space exceeds the caller's path budget, the path engine would
//! answer `Unknown (truncated)` rather than a verdict, so triage stands
//! aside. The guard is what keeps triaged verdicts bit-identical to full
//! engine runs — the property the differential test enforces.

use crate::comm::{RunEnd, StraightRun};
use crate::constprop::{eval_cond, static_path_count, ThreadFlow};
use crate::{Finding, Severity};
use mcapi::program::{Instr, Program};

/// Triage thresholds.
#[derive(Clone, Copy, Debug)]
pub struct TriageConfig {
    /// Only triage when the program's static path space (product of
    /// per-thread branch-outcome counts) is within this budget — the
    /// same budget the path engine enumerates under, so a triaged
    /// scenario is one the engines would have fully covered.
    pub max_static_paths: u64,
}

impl Default for TriageConfig {
    fn default() -> Self {
        // Matches the portfolio driver's default `max_paths`.
        TriageConfig {
            max_static_paths: 64,
        }
    }
}

/// A statically decided verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StaticVerdict {
    /// No execution can fail an assertion.
    Safe,
    /// Every maximal execution fails an assertion; the payload is the
    /// failing assertion's message.
    Violation(String),
}

/// The program's static path space: the product over threads of their
/// branch-outcome counts, saturating at `cap + 1`.
pub fn static_path_product(program: &Program, cap: u64) -> u64 {
    let mut product: u64 = 1;
    for thread in &program.threads {
        product = product.saturating_mul(static_path_count(thread, cap));
        if product > cap {
            return cap + 1;
        }
    }
    product
}

/// Apply the triage rules. `None` means "run the engines" — triage never
/// guesses.
pub fn triage(
    program: &Program,
    flows: &[ThreadFlow],
    runs: &[StraightRun],
    findings: &[Finding],
    cfg: &TriageConfig,
) -> Option<StaticVerdict> {
    if static_path_product(program, cfg.max_static_paths) > cfg.max_static_paths {
        return None;
    }
    for (t, run) in runs.iter().enumerate() {
        if let RunEnd::FailedAssert { pc } = run.end {
            let message = match &program.threads[t].code[pc] {
                Instr::Assert { message, .. } => message.clone(),
                other => unreachable!("FailedAssert points at {other:?}"),
            };
            return Some(StaticVerdict::Violation(message));
        }
    }
    if findings.iter().any(|f| f.severity == Severity::Error) {
        return None;
    }
    for (t, thread) in program.threads.iter().enumerate() {
        for (pc, ins) in thread.code.iter().enumerate() {
            let Instr::Assert { cond, .. } = ins else {
                continue;
            };
            let Some(vals) = flows[t].in_vals[pc].as_deref() else {
                continue; // unreachable assert: can't fail
            };
            if eval_cond(cond, vals) != Some(true) {
                return None;
            }
        }
    }
    Some(StaticVerdict::Safe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use mcapi::builder::ProgramBuilder;
    use mcapi::expr::{Cond, Expr};
    use mcapi::types::CmpOp;

    #[test]
    fn assert_free_programs_triage_safe() {
        let report = analyze(&workloads::fig1::fig1());
        assert_eq!(report.static_verdict, Some(StaticVerdict::Safe));
    }

    #[test]
    fn straight_run_constant_violations_triage_violation() {
        let mut b = ProgramBuilder::new("p");
        let t = b.thread("t");
        let x = b.fresh_var(t);
        b.assign(t, x, Expr::Const(3));
        b.assert_cond(
            t,
            Cond::cmp(CmpOp::Ge, Expr::Var(x), Expr::Const(5)),
            "x at least five",
        );
        let p = b.build().unwrap();
        let report = analyze(&p);
        assert_eq!(
            report.static_verdict,
            Some(StaticVerdict::Violation("x at least five".into()))
        );
    }

    #[test]
    fn value_dependent_asserts_are_never_triaged() {
        // branchy asserts on received values: triage must stand aside.
        let report = analyze(&workloads::branchy(2));
        assert_eq!(report.static_verdict, None);
    }

    #[test]
    fn deadlock_findings_block_the_safe_verdict() {
        let mut b = ProgramBuilder::new("stuck");
        let a = b.thread("a");
        let c = b.thread("c");
        b.recv(a, 0);
        b.send_const(a, c, 0, 1);
        b.recv(c, 0);
        b.send_const(c, a, 0, 2);
        let p = b.build().unwrap();
        let report = analyze(&p);
        assert_eq!(report.static_verdict, None);
    }

    #[test]
    fn a_wide_path_space_disables_triage() {
        use mcapi::program::Op;
        // 7 value-dependent branches = 128 static paths > the 64 budget;
        // even though the program is assert-free, triage stands aside
        // because the path engine would answer Unknown (truncated).
        let mut b = ProgramBuilder::new("wide");
        let c = b.thread("consumer");
        let prod = b.thread("producer");
        for _ in 0..7 {
            let v = b.recv(c, 0);
            b.push_op(
                c,
                Op::If {
                    cond: Cond::cmp(CmpOp::Ge, Expr::Var(v), Expr::Const(1)),
                    then_ops: vec![],
                    else_ops: vec![],
                },
            );
            b.send_const(prod, c, 0, 1);
        }
        let p = b.build().unwrap();
        assert_eq!(static_path_product(&p, 64), 65);
        let report = analyze(&p);
        assert_eq!(report.static_verdict, None);
    }
}
