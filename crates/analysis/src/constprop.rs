//! Per-thread constant propagation over compiled (loop-free) code.
//!
//! Compiled MCAPI threads only ever branch and jump *forward* (the
//! structured DSL is loop-free and `repeat` is unrolled at compile time),
//! so one pass in increasing-pc order visits every instruction after all
//! of its predecessors — a worklist is unnecessary. The lattice per
//! variable is `Const(c)` / `Any`, with unreachable program points
//! represented by an absent state. Receives are the only source of
//! `Any`: every value a thread computes before its first receive is a
//! compile-time constant (locals start at zero).
//!
//! Evaluation delegates to [`mcapi::expr::Expr::eval`] /
//! [`mcapi::expr::Cond::eval`] on a materialised local array, so the
//! analysis agrees with the interpreter bit-for-bit (including the
//! saturating `+` semantics) — the soundness of every downstream
//! consumer (branch-arm classification, triage, pruning facts) rests on
//! this evaluator never disagreeing with a real execution.

use mcapi::expr::{Cond, Expr};
use mcapi::program::{Instr, Thread};

/// One variable's abstract value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Val {
    /// The variable holds exactly this value on every path reaching here.
    Const(i64),
    /// The variable may hold different values on different paths (or
    /// depends on a received message).
    Any,
}

impl Val {
    fn join(self, other: Val) -> Val {
        match (self, other) {
            (Val::Const(a), Val::Const(b)) if a == b => Val::Const(a),
            _ => Val::Any,
        }
    }
}

/// Evaluate `e` under abstract values; `Some(c)` only when every variable
/// the expression reads is a known constant.
pub fn eval_expr(e: &Expr, vals: &[Val]) -> Val {
    let mut vs = Vec::new();
    e.vars(&mut vs);
    if vs
        .iter()
        .any(|v| !matches!(vals.get(v.0 as usize), Some(Val::Const(_))))
    {
        return Val::Any;
    }
    Val::Const(e.eval(&materialise(vals)))
}

/// Evaluate `c` under abstract values; `Some(b)` only when every variable
/// the condition reads is a known constant.
pub fn eval_cond(c: &Cond, vals: &[Val]) -> Option<bool> {
    let mut vs = Vec::new();
    c.vars(&mut vs);
    if vs
        .iter()
        .any(|v| !matches!(vals.get(v.0 as usize), Some(Val::Const(_))))
    {
        return None;
    }
    Some(c.eval(&materialise(vals)))
}

/// Build a concrete locals array for the interpreter's evaluators.
/// `Any` slots are filled with 0; callers only evaluate expressions whose
/// variables are all `Const`, so the filler is never read.
fn materialise(vals: &[Val]) -> Vec<i64> {
    vals.iter()
        .map(|v| match v {
            Val::Const(c) => *c,
            Val::Any => 0,
        })
        .collect()
}

/// The result of constant propagation over one thread.
#[derive(Clone, Debug)]
pub struct ThreadFlow {
    /// `in_vals[pc]`: abstract locals on entry to `pc`; `None` =
    /// statically unreachable.
    pub in_vals: Vec<Option<Vec<Val>>>,
    /// `in_reqs[pc][r]`: request `r` may have been issued (by a `send_i`
    /// or `recv_i`) on some path reaching `pc`.
    pub in_reqs: Vec<Option<Vec<bool>>>,
    /// Branches whose condition is a compile-time constant:
    /// `forced[pc] = Some(outcome)` means the branch at `pc` takes
    /// `outcome` (`true` = fall-through/then) on every execution.
    pub forced: Vec<Option<bool>>,
}

impl ThreadFlow {
    /// Is `pc` reachable on any path (under the analysis'
    /// over-approximation — receives may hold any value)?
    pub fn reachable(&self, pc: usize) -> bool {
        self.in_vals.get(pc).is_some_and(Option::is_some)
    }
}

/// Run the forward dataflow over one compiled thread.
pub fn flow(thread: &Thread) -> ThreadFlow {
    let n = thread.code.len();
    let mut in_vals: Vec<Option<Vec<Val>>> = vec![None; n + 1];
    let mut in_reqs: Vec<Option<Vec<bool>>> = vec![None; n + 1];
    let mut forced: Vec<Option<bool>> = vec![None; n];
    in_vals[0] = Some(vec![Val::Const(0); thread.num_vars]);
    in_reqs[0] = Some(vec![false; thread.num_reqs]);

    for pc in 0..n {
        let Some(vals) = in_vals[pc].clone() else {
            continue;
        };
        let reqs = in_reqs[pc].clone().unwrap_or_default();
        let mut flow_to = |target: usize, vals: &[Val], reqs: &[bool]| {
            debug_assert!(target > pc, "compiled code only flows forward");
            match &mut in_vals[target] {
                Some(existing) => {
                    for (e, v) in existing.iter_mut().zip(vals) {
                        *e = e.join(*v);
                    }
                }
                slot @ None => *slot = Some(vals.to_vec()),
            }
            match &mut in_reqs[target] {
                Some(existing) => {
                    for (e, r) in existing.iter_mut().zip(reqs) {
                        *e |= *r;
                    }
                }
                slot @ None => *slot = Some(reqs.to_vec()),
            }
        };
        match &thread.code[pc] {
            Instr::Assign { var, expr } => {
                let mut next = vals.clone();
                next[var.0 as usize] = eval_expr(expr, &vals);
                flow_to(pc + 1, &next, &reqs);
            }
            Instr::Recv { var, .. } => {
                let mut next = vals.clone();
                next[var.0 as usize] = Val::Any;
                flow_to(pc + 1, &next, &reqs);
            }
            Instr::RecvI { var, req, .. } => {
                let mut next = vals.clone();
                next[var.0 as usize] = Val::Any;
                let mut nreqs = reqs.clone();
                nreqs[req.0 as usize] = true;
                flow_to(pc + 1, &next, &nreqs);
            }
            Instr::SendI { req, .. } => {
                let mut nreqs = reqs.clone();
                nreqs[req.0 as usize] = true;
                flow_to(pc + 1, &vals, &nreqs);
            }
            Instr::Send { .. } | Instr::Assert { .. } | Instr::Wait { .. } => {
                // A failing assert stops execution, but treating its
                // successor as reachable is the sound over-approximation.
                flow_to(pc + 1, &vals, &reqs);
            }
            Instr::Branch { cond, else_target } => match eval_cond(cond, &vals) {
                Some(true) => {
                    forced[pc] = Some(true);
                    flow_to(pc + 1, &vals, &reqs);
                }
                Some(false) => {
                    forced[pc] = Some(false);
                    flow_to(*else_target, &vals, &reqs);
                }
                None => {
                    flow_to(pc + 1, &vals, &reqs);
                    flow_to(*else_target, &vals, &reqs);
                }
            },
            Instr::Jump { target } => flow_to(*target, &vals, &reqs),
        }
    }

    ThreadFlow {
        in_vals,
        in_reqs,
        forced,
    }
}

/// Number of static control-flow paths through one thread's code,
/// saturating at `cap + 1`. Counts *all* branch outcomes (not just
/// feasible ones) — this is the space the path enumerator walks, so the
/// triage guard uses it to predict enumeration effort.
pub fn static_path_count(thread: &Thread, cap: u64) -> u64 {
    let n = thread.code.len();
    // paths[pc] = number of paths from pc to exit; reverse order works
    // because all edges go forward.
    let mut paths = vec![0u64; n + 1];
    paths[n] = 1;
    for pc in (0..n).rev() {
        paths[pc] = match &thread.code[pc] {
            Instr::Branch { else_target, .. } => paths[pc + 1].saturating_add(paths[*else_target]),
            Instr::Jump { target } => paths[*target],
            _ => paths[pc + 1],
        }
        .min(cap + 1);
    }
    paths[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcapi::builder::ProgramBuilder;
    use mcapi::expr::{Cond, Expr};
    use mcapi::program::Op;
    use mcapi::types::CmpOp;

    #[test]
    fn constants_fold_through_assignments_and_force_branches() {
        let mut b = ProgramBuilder::new("p");
        let t = b.thread("t");
        let x = b.fresh_var(t);
        b.assign(t, x, Expr::Const(4));
        b.assign(t, x, Expr::Var(x).plus(1));
        b.push_op(
            t,
            Op::If {
                cond: Cond::cmp(CmpOp::Ge, Expr::Var(x), Expr::Const(5)),
                then_ops: vec![Op::Assign {
                    var: x,
                    expr: Expr::Const(0),
                }],
                else_ops: vec![Op::Assign {
                    var: x,
                    expr: Expr::Const(1),
                }],
            },
        );
        let p = b.build().unwrap();
        let f = flow(&p.threads[0]);
        // The branch is at pc 2 and is forced true (5 >= 5).
        assert_eq!(f.forced[2], Some(true));
        // The else arm (after the then-arm's jump) is unreachable.
        let else_pc = match &p.threads[0].code[2] {
            Instr::Branch { else_target, .. } => *else_target,
            other => panic!("{other:?}"),
        };
        assert!(!f.reachable(else_pc));
        assert!(f.reachable(3));
    }

    #[test]
    fn receives_kill_constness_and_issue_tracking_sees_recv_i() {
        let mut b = ProgramBuilder::new("p");
        let t = b.thread("t");
        let u = b.thread("u");
        let v = b.recv(t, 0);
        let (w, r) = b.recv_i(t, 0);
        b.wait(t, r);
        b.assign(t, v, Expr::Var(w));
        b.send_const(u, t, 0, 1);
        b.send_const(u, t, 0, 2);
        let p = b.build().unwrap();
        let f = flow(&p.threads[0]);
        // After the recv at pc 0 the variable is Any.
        assert_eq!(f.in_vals[1].as_ref().unwrap()[v.0 as usize], Val::Any);
        // The request is not issued before pc 1, and is at the wait.
        assert!(!f.in_reqs[1].as_ref().unwrap()[r.0 as usize]);
        assert!(f.in_reqs[2].as_ref().unwrap()[r.0 as usize]);
    }

    #[test]
    fn static_path_counts_multiply_per_branch() {
        let p = workloads::branchy(2);
        let consumer = &p.threads[0];
        assert_eq!(static_path_count(consumer, 1024), 4);
        let straight = &p.threads[1];
        assert_eq!(static_path_count(straight, 1024), 1);
    }
}
