//! The communication graph and the deterministic straight-run walk.
//!
//! Both sides of the match-potential analysis live here: the *graph* side
//! collects every statically reachable send per destination endpoint; the
//! *walk* side executes each thread's deterministic prefix (constants
//! only, forced branches only, stopping at the first blocking or
//! value-dependent instruction). The walk's stop states feed the
//! definite-deadlock fixpoint ([`definitely_deadlocked`]) and the triage
//! pass's violation rule (`crate::triage`).

use crate::constprop::{eval_cond, eval_expr, ThreadFlow, Val};
use mcapi::program::{Instr, Program, Thread};
use mcapi::types::EndpointAddr;
use std::collections::BTreeMap;

/// One statically reachable send instruction.
#[derive(Clone, Copy, Debug)]
pub struct SendSite {
    /// Sending thread index.
    pub thread: usize,
    /// Instruction index within that thread.
    pub pc: usize,
}

/// Every reachable send, grouped by destination endpoint.
///
/// Reachability is the constant-propagation over-approximation: sends in
/// arms that a forced branch rules out are excluded (they can never
/// execute), sends behind value-dependent branches are included (they
/// might).
pub fn sends_by_endpoint(
    program: &Program,
    flows: &[ThreadFlow],
) -> BTreeMap<EndpointAddr, Vec<SendSite>> {
    let mut map: BTreeMap<EndpointAddr, Vec<SendSite>> = BTreeMap::new();
    for (t, thread) in program.threads.iter().enumerate() {
        for (pc, ins) in thread.code.iter().enumerate() {
            if !flows[t].reachable(pc) {
                continue;
            }
            if let Instr::Send { to, .. } | Instr::SendI { to, .. } = ins {
                map.entry(*to).or_default().push(SendSite { thread: t, pc });
            }
        }
    }
    map
}

/// Why a straight-run walk stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunEnd {
    /// The walk reached the end of the thread's code.
    Finished,
    /// A value-dependent branch (or an assertion the walk cannot decide):
    /// everything beyond this point may or may not execute.
    Uncertain {
        /// The undecidable instruction.
        pc: usize,
    },
    /// The thread definitely reaches `pc` and blocks there until a
    /// message arrives at `endpoint` (a blocking receive, or a wait on a
    /// pending non-blocking receive).
    Blocked {
        /// The blocking instruction.
        pc: usize,
        /// The endpoint a message must reach to unblock the thread.
        endpoint: EndpointAddr,
    },
    /// The thread definitely reaches an assertion whose condition is
    /// statically false: every maximal execution of the program either
    /// fails this assertion or an earlier undecided one.
    FailedAssert {
        /// The failing assertion.
        pc: usize,
    },
}

/// Result of one thread's deterministic prefix walk.
#[derive(Clone, Debug)]
pub struct StraightRun {
    /// Why (and where) the walk stopped.
    pub end: RunEnd,
    /// Endpoints sent to during the prefix, in execution order. These
    /// messages are sent in *every* maximal execution of the program:
    /// sends never block, and everything before the stop point is
    /// deterministic.
    pub sends: Vec<EndpointAddr>,
}

/// Execute thread `t`'s deterministic prefix abstractly: locals start at
/// zero, assignments fold constants, forced branches are followed, and
/// the walk stops at the first receive, blocking wait, value-dependent
/// branch, or undecidable assertion.
pub fn straight_run(t: usize, thread: &Thread) -> StraightRun {
    let mut vals = vec![Val::Const(0); thread.num_vars];
    // `Some(endpoint)` = a posted, still-pending non-blocking receive.
    let mut pending: Vec<Option<EndpointAddr>> = vec![None; thread.num_reqs];
    let mut sends = Vec::new();
    let mut pc = 0usize;
    let mut steps = 0usize;
    let end = loop {
        if pc >= thread.code.len() {
            break RunEnd::Finished;
        }
        steps += 1;
        if steps > thread.code.len() {
            // Cyclic flat code (cannot come out of `compile`, but flat
            // JSON programs are not forced through it): give up.
            break RunEnd::Uncertain { pc };
        }
        match &thread.code[pc] {
            Instr::Assign { var, expr } => {
                vals[var.0 as usize] = eval_expr(expr, &vals);
                pc += 1;
            }
            Instr::Send { to, .. } => {
                sends.push(*to);
                pc += 1;
            }
            Instr::SendI { to, req, .. } => {
                sends.push(*to);
                pending[req.0 as usize] = None;
                pc += 1;
            }
            Instr::Recv { port, .. } => {
                break RunEnd::Blocked {
                    pc,
                    endpoint: EndpointAddr::new(t, *port),
                };
            }
            Instr::RecvI { port, var, req } => {
                vals[var.0 as usize] = Val::Any;
                pending[req.0 as usize] = Some(EndpointAddr::new(t, *port));
                pc += 1;
            }
            Instr::Wait { req } => match pending[req.0 as usize] {
                // Waiting on a pending receive blocks until a message
                // arrives; waiting on a send request or a never-issued
                // request completes immediately.
                Some(endpoint) => break RunEnd::Blocked { pc, endpoint },
                None => pc += 1,
            },
            Instr::Assert { cond, .. } => match eval_cond(cond, &vals) {
                Some(true) => pc += 1,
                Some(false) => break RunEnd::FailedAssert { pc },
                // The assert may fail (stopping the thread) or pass:
                // nothing beyond it is certain.
                None => break RunEnd::Uncertain { pc },
            },
            Instr::Branch { cond, else_target } => match eval_cond(cond, &vals) {
                Some(true) => pc += 1,
                Some(false) => pc = *else_target,
                None => break RunEnd::Uncertain { pc },
            },
            Instr::Jump { target } => {
                if *target <= pc {
                    break RunEnd::Uncertain { pc };
                }
                pc = *target;
            }
        }
    };
    StraightRun { end, sends }
}

/// The definite-deadlock fixpoint over the blocking-dependency graph.
///
/// Returns the largest set `D` of threads such that each `T ∈ D` is
/// blocked at its straight-run stop point waiting on endpoint `E_T`, and
/// no message can ever arrive there:
///
/// - no thread's deterministic prefix sends to `E_T` (prefix sends
///   happen in every maximal execution), and
/// - every reachable send targeting `E_T` belongs to a thread in `D` at
///   or beyond its own blocking point.
///
/// Greatest-fixpoint argument: start from all blocked threads and remove
/// any thread a message *might* reach (a prefix send anywhere, or any
/// reachable send from a thread outside `D`). What remains is mutually
/// stuck: each member waits on an endpoint fed only by other members'
/// post-blocking code, which never runs. The result pairs each deadlocked
/// thread with its blocking pc.
pub fn definitely_deadlocked(
    program: &Program,
    runs: &[StraightRun],
    sends_to: &BTreeMap<EndpointAddr, Vec<SendSite>>,
) -> Vec<(usize, usize)> {
    let blocked: Vec<Option<EndpointAddr>> = runs
        .iter()
        .map(|r| match r.end {
            RunEnd::Blocked { endpoint, .. } => Some(endpoint),
            _ => None,
        })
        .collect();
    let mut in_d: Vec<bool> = blocked.iter().map(Option::is_some).collect();
    let prefix_sends: Vec<&EndpointAddr> = runs.iter().flat_map(|r| r.sends.iter()).collect();
    loop {
        let mut changed = false;
        for t in 0..program.threads.len() {
            if !in_d[t] {
                continue;
            }
            let ep = blocked[t].expect("threads in D are blocked");
            let fed_by_prefix = prefix_sends.iter().any(|&&s| s == ep);
            let fed_from_outside = sends_to
                .get(&ep)
                .is_some_and(|sites| sites.iter().any(|s| !in_d[s.thread]));
            if fed_by_prefix || fed_from_outside {
                in_d[t] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (0..program.threads.len())
        .filter(|&t| in_d[t])
        .map(|t| match runs[t].end {
            RunEnd::Blocked { pc, .. } => (t, pc),
            _ => unreachable!("threads in D are blocked"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constprop::flow;
    use mcapi::builder::ProgramBuilder;

    fn flows_of(p: &Program) -> Vec<ThreadFlow> {
        p.threads.iter().map(flow).collect()
    }

    #[test]
    fn prefix_sends_and_blocking_points_are_tracked() {
        let mut b = ProgramBuilder::new("p");
        let a = b.thread("a");
        let c = b.thread("c");
        b.send_const(a, c, 0, 1);
        b.recv(a, 0);
        b.send_const(a, c, 0, 2); // after the blocking point
        b.recv(c, 0);
        let p = b.build().unwrap();
        let run = straight_run(0, &p.threads[0]);
        assert_eq!(run.sends, vec![EndpointAddr::new(1, 0)]);
        assert_eq!(
            run.end,
            RunEnd::Blocked {
                pc: 1,
                endpoint: EndpointAddr::new(0, 0)
            }
        );
    }

    #[test]
    fn mutual_wait_cycle_is_a_definite_deadlock() {
        // a waits for c, c waits for a; each would reply only afterwards.
        let mut b = ProgramBuilder::new("cycle");
        let a = b.thread("a");
        let c = b.thread("c");
        b.recv(a, 0);
        b.send_const(a, c, 0, 1);
        b.recv(c, 0);
        b.send_const(c, a, 0, 2);
        let p = b.build().unwrap();
        let flows = flows_of(&p);
        let runs: Vec<_> = p
            .threads
            .iter()
            .enumerate()
            .map(|(t, th)| straight_run(t, th))
            .collect();
        let sends = sends_by_endpoint(&p, &flows);
        let dead = definitely_deadlocked(&p, &runs, &sends);
        assert_eq!(dead, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn a_prefix_send_breaks_the_apparent_cycle() {
        // Same shape, but a sends before receiving: no deadlock.
        let mut b = ProgramBuilder::new("handshake");
        let a = b.thread("a");
        let c = b.thread("c");
        b.send_const(a, c, 0, 1);
        b.recv(a, 0);
        b.recv(c, 0);
        b.send_const(c, a, 0, 2);
        let p = b.build().unwrap();
        let flows = flows_of(&p);
        let runs: Vec<_> = p
            .threads
            .iter()
            .enumerate()
            .map(|(t, th)| straight_run(t, th))
            .collect();
        let sends = sends_by_endpoint(&p, &flows);
        assert!(definitely_deadlocked(&p, &runs, &sends).is_empty());
    }

    #[test]
    fn value_dependent_senders_keep_receivers_out_of_the_deadlock_set() {
        // The producer's send is behind a branch on a received value: the
        // consumer's receive *might* be fed, so no definite deadlock.
        use mcapi::expr::{Cond, Expr};
        use mcapi::program::Op;
        use mcapi::types::CmpOp;
        let mut b = ProgramBuilder::new("maybe");
        let c = b.thread("consumer");
        let prod = b.thread("producer");
        let outside = b.thread("outside");
        b.recv(c, 0);
        let v = b.recv(prod, 0);
        b.push_op(
            prod,
            Op::If {
                cond: Cond::cmp(CmpOp::Ge, Expr::Var(v), Expr::Const(1)),
                then_ops: vec![Op::Send {
                    to: EndpointAddr::new(0, 0),
                    value: Expr::Const(7),
                }],
                else_ops: vec![],
            },
        );
        b.send_const(outside, prod, 0, 3);
        let p = b.build().unwrap();
        let flows = flows_of(&p);
        let runs: Vec<_> = p
            .threads
            .iter()
            .enumerate()
            .map(|(t, th)| straight_run(t, th))
            .collect();
        let sends = sends_by_endpoint(&p, &flows);
        // producer is unblocked by outside's send; consumer is fed by the
        // producer's conditional send (producer ends up outside D).
        assert!(definitely_deadlocked(&p, &runs, &sends).is_empty());
    }
}
