//! Structured portfolio results: per-scenario outcomes and the aggregate
//! [`PortfolioReport`], serialisable to JSON and renderable as a table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Collapsed verdict of one scenario (engine-agnostic).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VerdictKind {
    /// No reachable assertion violation (within the engine's soundness
    /// envelope — the trace's branch outcomes for the symbolic engine).
    Safe,
    /// A confirmed assertion violation.
    Violation,
    /// Budget exhausted or otherwise inconclusive.
    Unknown,
    /// Never ran: a race-mode portfolio was cancelled first.
    Skipped,
}

impl fmt::Display for VerdictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerdictKind::Safe => "safe",
            VerdictKind::Violation => "VIOLATION",
            VerdictKind::Unknown => "unknown",
            VerdictKind::Skipped => "skipped",
        };
        f.write_str(s)
    }
}

/// Everything recorded about one finished (or skipped) scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Unique scenario name (`point/delivery/engine`).
    pub scenario: String,
    /// Workload family tag (`race`, `ring`, ...).
    pub family: String,
    /// Delivery model tag.
    pub delivery: String,
    /// Engine tag.
    pub engine: String,
    /// Collapsed verdict.
    pub verdict: VerdictKind,
    /// Violated property messages, or the `Unknown` reason.
    pub detail: String,
    /// The verdict was settled by the static triage pre-pass with zero
    /// engine work ([`crate::runner::PortfolioConfig::static_triage`]).
    #[serde(default)]
    pub statically_decided: bool,
    /// Static-analysis findings (lint warnings and errors) on the
    /// scenario's program; recorded whenever the triage pre-pass runs.
    #[serde(default)]
    pub lint_findings: usize,
    /// Wall-clock time spent on this scenario.
    pub wall_ms: u64,
    /// Spurious witnesses blocked (symbolic over-approximation only).
    pub refinements: usize,
    /// SAT variable count of the encoding (symbolic only).
    pub sat_vars: usize,
    /// SAT clause count of the encoding (symbolic only).
    pub sat_clauses: usize,
    /// Match pairs fed to the encoder (symbolic only).
    pub match_pairs: usize,
    /// States explored by match-pair generation (symbolic only).
    pub matchgen_states: usize,
    /// States visited (explicit engine only).
    pub states: usize,
    /// Transitions applied (explicit engine only).
    pub transitions: usize,
    /// Did this scenario reuse a shared-session encoding built by an
    /// earlier scenario at the same grid point (symbolic only)?
    pub reused_encoding: bool,
    /// SMT checks this scenario issued (symbolic only).
    pub sat_checks: usize,
    /// Solver conflicts this scenario cost (delta, symbolic only).
    pub conflicts: u64,
    /// Solver propagations this scenario cost (delta, symbolic only).
    pub propagations: u64,
    /// Control-flow paths analysed (1 for single-trace symbolic engines,
    /// the feasible-path count for `symbolic-paths`).
    pub paths_explored: usize,
    /// Control-flow paths proven unreachable and skipped
    /// (`symbolic-paths` only).
    pub paths_pruned: usize,
    /// Transitions applied by directed schedule searches
    /// (`symbolic-paths` only).
    #[serde(default)]
    pub directed_transitions: u64,
    /// Schedule extensions pruned by the Mazurkiewicz normal-form test
    /// (`symbolic-paths` and explicit engines; zero when canonical
    /// exploration is disabled).
    #[serde(default)]
    pub canonical_skipped: u64,
    /// µs spent building encodings (symbolic only).
    #[serde(default)]
    pub encode_us: u64,
    /// µs spent inside SMT checks (symbolic only).
    #[serde(default)]
    pub solve_us: u64,
    /// µs spent in directed-scheduler searches (`symbolic-paths` only).
    #[serde(default)]
    pub schedule_us: u64,
    /// µs spent enumerating and pruning paths (`symbolic-paths` only).
    #[serde(default)]
    pub enumerate_us: u64,
    /// The full solver-stats delta this scenario cost (symbolic only;
    /// `conflicts`/`propagations` above are kept as headline duplicates
    /// for older report consumers).
    #[serde(default)]
    pub solver: smt::Stats,
    /// Sampled solver distributions this scenario cost (symbolic only):
    /// LBD, conflict decision-depth, restart intervals.
    #[serde(default)]
    pub introspect: smt::Introspect,
}

impl ScenarioOutcome {
    /// A placeholder outcome for a scenario cancelled before it started.
    pub fn skipped(scenario: String, family: String, delivery: String, engine: String) -> Self {
        ScenarioOutcome {
            scenario,
            family,
            delivery,
            engine,
            verdict: VerdictKind::Skipped,
            detail: "cancelled by race mode".into(),
            statically_decided: false,
            lint_findings: 0,
            wall_ms: 0,
            refinements: 0,
            sat_vars: 0,
            sat_clauses: 0,
            match_pairs: 0,
            matchgen_states: 0,
            states: 0,
            transitions: 0,
            reused_encoding: false,
            sat_checks: 0,
            conflicts: 0,
            propagations: 0,
            paths_explored: 0,
            paths_pruned: 0,
            directed_transitions: 0,
            canonical_skipped: 0,
            encode_us: 0,
            solve_us: 0,
            schedule_us: 0,
            enumerate_us: 0,
            solver: smt::Stats::default(),
            introspect: smt::Introspect::default(),
        }
    }
}

/// Schema version stamped on every [`ScenarioEvent`]; bump on any
/// incompatible field change so downstream log consumers can dispatch.
pub const EVENT_SCHEMA_VERSION: u32 = 1;

/// One line of the structured run log (`--events-out`): a flattened,
/// schema-versioned view of a [`ScenarioOutcome`] with the wall-clock
/// phase breakdown. Field set is stability-tested; extend only with
/// `#[serde(default)]` fields or a schema bump.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// [`EVENT_SCHEMA_VERSION`] at emission time.
    #[serde(default)]
    pub schema_version: u32,
    /// Unique scenario name (`point/delivery/engine`).
    pub scenario: String,
    /// Workload family tag.
    pub family: String,
    /// Delivery model tag.
    pub delivery: String,
    /// Engine tag.
    pub engine: String,
    /// Collapsed verdict.
    pub verdict: VerdictKind,
    /// Violated property messages, or the `Unknown` reason.
    pub detail: String,
    /// Wall-clock for the whole scenario, ms.
    pub wall_ms: u64,
    /// Encoding-build phase, µs.
    pub encode_us: u64,
    /// SMT-solve phase, µs.
    pub solve_us: u64,
    /// Directed-schedule phase, µs.
    pub schedule_us: u64,
    /// Path-enumeration + pruning phase, µs.
    pub enumerate_us: u64,
    /// SMT checks issued.
    pub sat_checks: usize,
    /// Solver conflicts (delta).
    pub conflicts: u64,
    /// Solver propagations (delta).
    pub propagations: u64,
    /// Control-flow paths analysed.
    pub paths_explored: usize,
    /// Control-flow paths pruned.
    pub paths_pruned: usize,
    /// Explicit-engine states visited.
    pub states: usize,
    /// Did the scenario reuse a shared-session encoding?
    pub reused_encoding: bool,
    /// Was the verdict settled by static triage with zero engine work?
    #[serde(default)]
    pub statically_decided: bool,
    /// Static-analysis findings on the scenario's program.
    #[serde(default)]
    pub lint_findings: usize,
}

impl ScenarioEvent {
    /// The event record for one finished outcome.
    pub fn from_outcome(o: &ScenarioOutcome) -> ScenarioEvent {
        ScenarioEvent {
            schema_version: EVENT_SCHEMA_VERSION,
            scenario: o.scenario.clone(),
            family: o.family.clone(),
            delivery: o.delivery.clone(),
            engine: o.engine.clone(),
            verdict: o.verdict,
            detail: o.detail.clone(),
            wall_ms: o.wall_ms,
            encode_us: o.encode_us,
            solve_us: o.solve_us,
            schedule_us: o.schedule_us,
            enumerate_us: o.enumerate_us,
            sat_checks: o.sat_checks,
            conflicts: o.conflicts,
            propagations: o.propagations,
            paths_explored: o.paths_explored,
            paths_pruned: o.paths_pruned,
            states: o.states,
            reused_encoding: o.reused_encoding,
            statically_decided: o.statically_decided,
            lint_findings: o.lint_findings,
        }
    }
}

/// Aggregate result of one portfolio run.
///
/// ```
/// use driver::report::{PortfolioReport, ScenarioOutcome, VerdictKind};
///
/// let mut o = ScenarioOutcome::skipped(
///     "fig1/unordered/explicit".into(),
///     "fig1".into(),
///     "unordered".into(),
///     "explicit".into(),
/// );
/// o.verdict = VerdictKind::Safe;
/// let report = PortfolioReport::from_outcomes("sweep", 4, 12, vec![o]);
/// assert_eq!(report.safe, 1);
/// assert_eq!(report.violations, 0);
/// let json = report.to_json();
/// let back: PortfolioReport = serde_json::from_str(&json).unwrap();
/// assert_eq!(back.safe, report.safe);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortfolioReport {
    /// `"race"` or `"sweep"`.
    pub mode: String,
    /// Worker threads used.
    pub threads: usize,
    /// Total wall-clock for the whole batch.
    pub wall_ms: u64,
    /// Scenario counts by verdict.
    pub safe: usize,
    /// Scenarios with a confirmed violation.
    pub violations: usize,
    /// Inconclusive scenarios (budget exhausted, ...).
    pub unknown: usize,
    /// Scenarios cancelled by race mode before running.
    pub skipped: usize,
    /// SMT encodings actually built. With session reuse this is strictly
    /// less than the number of symbolic scenarios that solved something;
    /// without it, equal.
    pub encodings_built: usize,
    /// Solver conflicts summed over all scenarios.
    pub total_conflicts: u64,
    /// Solver propagations summed over all scenarios.
    pub total_propagations: u64,
    /// SMT checks summed over all scenarios.
    pub total_sat_checks: usize,
    /// Control-flow paths explored, summed over all scenarios.
    pub total_paths_explored: usize,
    /// Control-flow paths pruned as unreachable, summed over all
    /// scenarios.
    pub total_paths_pruned: usize,
    /// Directed-search transitions summed over all scenarios.
    #[serde(default)]
    pub total_directed_transitions: u64,
    /// Canonical-prune skips summed over all scenarios.
    #[serde(default)]
    pub total_canonical_skipped: u64,
    /// Scenarios settled by the static triage pre-pass (zero engine work).
    #[serde(default)]
    pub statically_decided: usize,
    /// Static-analysis findings summed over all scenarios.
    #[serde(default)]
    pub total_lint_findings: usize,
    /// Per-scenario records, in submission order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl PortfolioReport {
    /// Aggregate outcomes into a report (counts are derived here).
    pub fn from_outcomes(
        mode: &str,
        threads: usize,
        wall_ms: u64,
        outcomes: Vec<ScenarioOutcome>,
    ) -> PortfolioReport {
        let count = |k: VerdictKind| outcomes.iter().filter(|o| o.verdict == k).count();
        // An encoding was built exactly by the symbolic scenarios that ran
        // a solver (sat_vars > 0) without finding a session to share.
        let encodings_built = outcomes
            .iter()
            .filter(|o| o.sat_vars > 0 && !o.reused_encoding)
            .count();
        PortfolioReport {
            mode: mode.to_string(),
            threads,
            wall_ms,
            safe: count(VerdictKind::Safe),
            violations: count(VerdictKind::Violation),
            unknown: count(VerdictKind::Unknown),
            skipped: count(VerdictKind::Skipped),
            encodings_built,
            total_conflicts: outcomes.iter().map(|o| o.conflicts).sum(),
            total_propagations: outcomes.iter().map(|o| o.propagations).sum(),
            total_sat_checks: outcomes.iter().map(|o| o.sat_checks).sum(),
            total_paths_explored: outcomes.iter().map(|o| o.paths_explored).sum(),
            total_paths_pruned: outcomes.iter().map(|o| o.paths_pruned).sum(),
            total_directed_transitions: outcomes.iter().map(|o| o.directed_transitions).sum(),
            total_canonical_skipped: outcomes.iter().map(|o| o.canonical_skipped).sum(),
            statically_decided: outcomes.iter().filter(|o| o.statically_decided).count(),
            total_lint_findings: outcomes.iter().map(|o| o.lint_findings).sum(),
            outcomes,
        }
    }

    /// Did any scenario confirm a violation?
    pub fn found_violation(&self) -> bool {
        self.violations > 0
    }

    /// Pretty-printed JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }

    /// The structured run log: one compact JSON [`ScenarioEvent`] per
    /// line (JSONL), in submission order. This is what `--events-out`
    /// writes.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            let ev = ScenarioEvent::from_outcome(o);
            out.push_str(&serde_json::to_string(&ev).expect("event serialisation cannot fail"));
            out.push('\n');
        }
        out
    }

    /// Report the whole run into `reg`: per-scenario counters under each
    /// layer's stable names (labelled by engine and delivery), a
    /// per-scenario wall-time histogram, and portfolio-level gauges.
    pub fn record_metrics(&self, reg: &mut metrics::Registry) {
        reg.gauge_set(
            "mcapi_portfolio_threads",
            "Worker threads used by the portfolio run",
            &[],
            self.threads as f64,
        );
        reg.gauge_set(
            "mcapi_portfolio_wall_seconds",
            "Wall-clock of the whole portfolio run",
            &[],
            self.wall_ms as f64 / 1000.0,
        );
        reg.counter_add(
            "mcapi_portfolio_encodings_built_total",
            "SMT encodings actually built (cache misses)",
            &[],
            self.encodings_built as u64,
        );
        reg.counter_add(
            "mcapi_portfolio_statically_decided_total",
            "Scenarios settled by the static triage pre-pass (zero engine work)",
            &[],
            self.statically_decided as u64,
        );
        reg.counter_add(
            "mcapi_portfolio_lint_findings_total",
            "Static-analysis findings across all scenario programs",
            &[],
            self.total_lint_findings as u64,
        );
        for (verdict, n) in [
            ("safe", self.safe),
            ("violation", self.violations),
            ("unknown", self.unknown),
            ("skipped", self.skipped),
        ] {
            reg.counter_add(
                "mcapi_portfolio_scenarios_total",
                "Scenarios by collapsed verdict",
                &[("verdict", verdict)],
                n as u64,
            );
        }
        for o in &self.outcomes {
            let labels: &[(&str, &str)] = &[
                ("engine", o.engine.as_str()),
                ("delivery", o.delivery.as_str()),
            ];
            reg.histogram_observe(
                "mcapi_scenario_wall_seconds",
                "Per-scenario wall-clock distribution",
                labels,
                metrics::TIME_BUCKETS_SECONDS,
                o.wall_ms as f64 / 1000.0,
            );
            match o.engine.as_str() {
                "explicit" => {
                    explicit::stats::record_exploration_counters(
                        reg,
                        labels,
                        o.states as u64,
                        o.transitions as u64,
                        o.canonical_skipped,
                    );
                }
                _ => {
                    o.solver.record(reg, labels);
                    o.introspect.record(reg, labels);
                    symbolic::checker::record_check_counters(
                        reg,
                        labels,
                        o.sat_checks as u64,
                        o.refinements as u64,
                        o.paths_explored as u64,
                        o.paths_pruned as u64,
                        o.directed_transitions,
                        o.canonical_skipped,
                    );
                    symbolic::checker::PhaseTimings {
                        encode_us: o.encode_us,
                        solve_us: o.solve_us,
                        schedule_us: o.schedule_us,
                        enumerate_us: o.enumerate_us,
                    }
                    .record(reg, labels);
                }
            }
        }
    }

    /// The run in Prometheus text exposition format: a fresh
    /// [`metrics::Registry`], [`PortfolioReport::record_metrics`], render.
    /// Deterministic for a given report; the format is snapshot-tested.
    pub fn to_prometheus(&self) -> String {
        let mut reg = metrics::Registry::new();
        self.record_metrics(&mut reg);
        reg.render_prometheus()
    }

    /// Markdown-style table of all outcomes plus a summary line.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| scenario | verdict | wall ms | refine | vars | clauses | pairs | states | reuse | conf | detail |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|");
        for o in &self.outcomes {
            let states = if o.engine == "explicit" {
                o.states
            } else {
                o.matchgen_states
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                o.scenario,
                o.verdict,
                o.wall_ms,
                o.refinements,
                o.sat_vars,
                o.sat_clauses,
                o.match_pairs,
                states,
                if o.reused_encoding { "y" } else { "-" },
                o.conflicts,
                o.detail.replace('|', "/"),
            );
        }
        let _ = writeln!(
            out,
            "\n{} mode on {} thread(s): {} scenarios in {} ms — {} safe, {} violations, {} unknown, {} skipped; {} statically decided, {} lint findings; {} encodings built, {} sat checks, {} conflicts, {} propagations; {} paths explored, {} pruned; {} directed transitions, {} canonical-skipped",
            self.mode,
            self.threads,
            self.outcomes.len(),
            self.wall_ms,
            self.safe,
            self.violations,
            self.unknown,
            self.skipped,
            self.statically_decided,
            self.total_lint_findings,
            self.encodings_built,
            self.total_sat_checks,
            self.total_conflicts,
            self.total_propagations,
            self.total_paths_explored,
            self.total_paths_pruned,
            self.total_directed_transitions,
            self.total_canonical_skipped,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, verdict: VerdictKind) -> ScenarioOutcome {
        let mut o = ScenarioOutcome::skipped(
            name.into(),
            "race".into(),
            "unordered".into(),
            "explicit".into(),
        );
        o.verdict = verdict;
        o
    }

    #[test]
    fn counts_partition_the_outcomes() {
        let outcomes = vec![
            outcome("a", VerdictKind::Safe),
            outcome("b", VerdictKind::Violation),
            outcome("c", VerdictKind::Violation),
            outcome("d", VerdictKind::Unknown),
            outcome("e", VerdictKind::Skipped),
        ];
        let r = PortfolioReport::from_outcomes("race", 2, 5, outcomes);
        assert_eq!((r.safe, r.violations, r.unknown, r.skipped), (1, 2, 1, 1));
        assert_eq!(
            r.safe + r.violations + r.unknown + r.skipped,
            r.outcomes.len()
        );
        assert!(r.found_violation());
    }

    #[test]
    fn json_roundtrip_preserves_outcomes() {
        let r =
            PortfolioReport::from_outcomes("sweep", 8, 1234, vec![outcome("x", VerdictKind::Safe)]);
        let back: PortfolioReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back.outcomes.len(), 1);
        assert_eq!(back.outcomes[0].scenario, "x");
        assert_eq!(back.threads, 8);
        assert_eq!(back.outcomes[0].verdict, VerdictKind::Safe);
    }

    #[test]
    fn table_lists_every_scenario() {
        let r = PortfolioReport::from_outcomes(
            "sweep",
            1,
            1,
            vec![
                outcome("alpha", VerdictKind::Safe),
                outcome("beta", VerdictKind::Unknown),
            ],
        );
        let t = r.render_table();
        assert!(t.contains("| alpha |"));
        assert!(t.contains("| beta |"));
        assert!(t.contains("2 scenarios"));
    }
}
