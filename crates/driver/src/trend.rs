//! Append-only performance trend records.
//!
//! `exp_portfolio --trend FILE` appends one schema-versioned JSON line
//! per run to a `BENCH_trend.jsonl` ledger, so CI can chart how the
//! deterministic counters (conflicts, propagations, SAT checks, path
//! reductions) and wall clock evolve across commits. Records carry the
//! short git revision and the UTC date of the run; the schema version
//! lets future readers skip or migrate old lines instead of breaking.

use serde::{Deserialize, Serialize};

use crate::report::PortfolioReport;

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Version stamped into every [`TrendRecord`]. Bump when a field is
/// renamed or its meaning changes; adding `#[serde(default)]` fields is
/// backwards compatible and does not require a bump.
pub const TREND_SCHEMA_VERSION: u32 = 1;

/// One appended run in the trend ledger.
///
/// Everything except `wall_ms` and the git/date stamps is deterministic
/// for a fixed grid, so regressions in the counter columns are real
/// behaviour changes rather than machine noise.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrendRecord {
    /// Ledger schema version ([`TREND_SCHEMA_VERSION`] at write time).
    #[serde(default)]
    pub schema_version: u32,
    /// Short git revision of the working tree (`"unknown"` outside a
    /// repository).
    pub git_rev: String,
    /// UTC calendar date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Seconds since the Unix epoch at record time.
    pub unix_time: u64,
    /// Human-readable grid description (families and scales swept).
    pub grid: String,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Wall-clock for the whole portfolio, in milliseconds (noisy).
    pub wall_ms: u64,
    /// Total SAT queries issued (deterministic).
    pub sat_checks: usize,
    /// Total CDCL conflicts (deterministic).
    pub conflicts: u64,
    /// Total unit propagations (deterministic).
    pub propagations: u64,
    /// Incremental encodings built (vs. reused; deterministic).
    pub encodings_built: usize,
    /// Control-flow paths explored by the branch-complete engine.
    pub paths_explored: usize,
    /// Paths pruned before a directed run was attempted.
    pub paths_pruned: usize,
    /// Transitions applied by directed schedule searches (deterministic).
    #[serde(default)]
    pub directed_transitions: u64,
    /// Schedule extensions pruned by the Mazurkiewicz normal-form test
    /// (deterministic).
    #[serde(default)]
    pub canonical_skipped: u64,
    /// Scenarios settled by the static triage pre-pass with zero engine
    /// work (deterministic).
    #[serde(default)]
    pub statically_decided: usize,
}

impl TrendRecord {
    /// Build a record from a finished portfolio run, stamping the current
    /// git revision and clock.
    pub fn from_report(report: &PortfolioReport, grid: &str) -> TrendRecord {
        let unix_time = unix_time_now();
        TrendRecord {
            schema_version: TREND_SCHEMA_VERSION,
            git_rev: git_rev(),
            date: utc_date(unix_time),
            unix_time,
            grid: grid.to_string(),
            scenarios: report.outcomes.len(),
            wall_ms: report.wall_ms,
            sat_checks: report.total_sat_checks,
            conflicts: report.total_conflicts,
            propagations: report.total_propagations,
            encodings_built: report.encodings_built,
            paths_explored: report.total_paths_explored,
            paths_pruned: report.total_paths_pruned,
            directed_transitions: report.total_directed_transitions,
            canonical_skipped: report.total_canonical_skipped,
            statically_decided: report.statically_decided,
        }
    }
}

/// Seconds since the Unix epoch (0 if the system clock predates it).
fn unix_time_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The short revision of `HEAD`, or `"unknown"` when git is unavailable
/// (e.g. running from an exported tarball).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Convert epoch seconds to a `YYYY-MM-DD` UTC date using the standard
/// civil-from-days algorithm (no date-time dependency in the tree).
pub fn utc_date(unix_time: u64) -> String {
    let days = (unix_time / 86_400) as i64;
    // Shift epoch from 1970-01-01 to 0000-03-01 so leap days land at the
    // end of the 400-year era.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Append `record` as one compact JSON line to `path`, creating the file
/// if needed. Append-only: existing lines are never rewritten.
pub fn append_record(path: &Path, record: &TrendRecord) -> Result<(), String> {
    let line = serde_json::to_string(record).map_err(|e| format!("cannot encode record: {e}"))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    writeln!(file, "{line}").map_err(|e| format!("cannot append to {}: {e}", path.display()))
}

/// Parse every line of a trend ledger. Blank lines are skipped; a
/// malformed line aborts with its 1-based line number so a corrupted
/// ledger is caught in CI rather than silently truncated.
pub fn load_records(path: &Path) -> Result<Vec<TrendRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: TrendRecord =
            serde_json::from_str(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        records.push(record);
    }
    Ok(records)
}

/// Render the last `last` records as a GitHub-flavoured markdown table
/// (newest row last), for `$GITHUB_STEP_SUMMARY`.
pub fn render_markdown(records: &[TrendRecord], last: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### Portfolio perf trend (last {last} runs)");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| date | rev | scenarios | wall ms | sat checks | conflicts | propagations | encodings | paths (pruned) | directed (canon-skipped) | static |"
    );
    let _ = writeln!(
        out,
        "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|"
    );
    let start = records.len().saturating_sub(last);
    for r in &records[start..] {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} ({}) | {} ({}) | {} |",
            r.date,
            r.git_rev,
            r.scenarios,
            r.wall_ms,
            r.sat_checks,
            r.conflicts,
            r.propagations,
            r.encodings_built,
            r.paths_explored,
            r.paths_pruned,
            r.directed_transitions,
            r.canonical_skipped,
            r.statically_decided,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rev: &str) -> TrendRecord {
        TrendRecord {
            schema_version: TREND_SCHEMA_VERSION,
            git_rev: rev.to_string(),
            date: "2026-08-08".to_string(),
            unix_time: 1_786_147_200,
            grid: "fig1,ring@1".to_string(),
            scenarios: 24,
            wall_ms: 120,
            sat_checks: 96,
            conflicts: 1234,
            propagations: 56_789,
            encodings_built: 12,
            paths_explored: 40,
            paths_pruned: 8,
            directed_transitions: 2_048,
            canonical_skipped: 512,
            statically_decided: 6,
        }
    }

    #[test]
    fn utc_date_handles_epoch_and_leap_days() {
        assert_eq!(utc_date(0), "1970-01-01");
        // 2000-02-29 12:00:00 UTC
        assert_eq!(utc_date(951_825_600), "2000-02-29");
        // 2026-08-08 00:00:00 UTC
        assert_eq!(utc_date(1_786_147_200), "2026-08-08");
    }

    #[test]
    fn append_then_load_roundtrips_two_records() {
        let dir = std::env::temp_dir().join(format!("trend-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trend.jsonl");
        let _ = std::fs::remove_file(&path);

        append_record(&path, &sample("aaa1111")).unwrap();
        append_record(&path, &sample("bbb2222")).unwrap();
        let records = load_records(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].git_rev, "aaa1111");
        assert_eq!(records[1].git_rev, "bbb2222");
        assert!(records
            .iter()
            .all(|r| r.schema_version == TREND_SCHEMA_VERSION));

        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let dir = std::env::temp_dir().join(format!("trend-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{not json\n").unwrap();
        let err = load_records(&path).unwrap_err();
        assert!(err.contains(":1:"), "{err}");
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn markdown_table_keeps_only_last_n() {
        let records = vec![sample("old0000"), sample("new1111"), sample("new2222")];
        let md = render_markdown(&records, 2);
        assert!(!md.contains("old0000"), "{md}");
        assert!(md.contains("new1111"), "{md}");
        assert!(md.contains("new2222"), "{md}");
        assert!(md.contains("| date |"), "{md}");
    }
}
