//! # driver — parallel portfolio verification
//!
//! The PPoPP'11 reproduction checks one `(program, delivery model,
//! match-pair generator)` configuration at a time. This crate turns that
//! single-shot checker into a **portfolio**: a batch of scenarios — a
//! workload-family parameter grid crossed with delivery models and
//! verification engines — fanned out across a work-stealing thread pool,
//! with per-scenario budgets and a structured, serialisable report.
//!
//! The same idea drives neighbouring tools: hybrid MPI verifiers run
//! symbolic and explicit engines side by side, and schedule-sweeping
//! checkers run many configurations per program. Here every portfolio can
//! include the explicit-state ground truth next to both symbolic
//! match-pair generators, so cross-validation is a batch property rather
//! than a separate test suite.
//!
//! ## Pipeline
//!
//! 1. [`workloads::grid`] enumerates program points ([`FamilySpec`]).
//! 2. [`scenario::cross`] crosses them with
//!    [`mcapi::types::DeliveryModel`]s and [`scenario::Engine`]s.
//! 3. [`runner::run_portfolio`] executes the batch on a
//!    [`pool::WorkStealingPool`] in either [`runner::Mode::Race`]
//!    (cancel on first violation) or [`runner::Mode::Sweep`]
//!    (run everything).
//! 4. The [`report::PortfolioReport`] aggregates verdicts, refinement
//!    counts and solver statistics, as JSON or a table.
//!
//! ## Example
//!
//! ```
//! use driver::prelude::*;
//! use mcapi::types::DeliveryModel;
//!
//! // Small grid: every family at scale 1, all deliveries, all engines.
//! let scenarios = cross(
//!     &workloads::grid::default_grid(1),
//!     &DeliveryModel::ALL,
//!     &Engine::ALL,
//! );
//! assert!(scenarios.len() >= 20);
//!
//! let cfg = PortfolioConfig { threads: 4, mode: Mode::Sweep, ..Default::default() };
//! let report = run_portfolio(&scenarios, &cfg);
//! assert_eq!(report.outcomes.len(), scenarios.len());
//! // The assertion families contain reachable violations.
//! assert!(report.found_violation());
//! ```

#![warn(missing_docs)]

pub mod pool;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod trend;

pub use report::{PortfolioReport, ScenarioEvent, ScenarioOutcome, VerdictKind};
pub use runner::{
    fill_explicit_outcome, fill_symbolic_outcome, run_batch, run_portfolio, run_portfolio_traced,
    run_scenario, Mode, PortfolioConfig,
};
pub use scenario::{
    batch_by_grid_point, corpus_files, corpus_scenarios, corpus_specs, cross, Engine, GridBatch,
    ProgramSpec, Scenario,
};
pub use trend::{TrendRecord, TREND_SCHEMA_VERSION};
pub use workloads::grid::FamilySpec;

/// Everything needed to assemble and run a portfolio.
pub mod prelude {
    pub use crate::pool::{CancelToken, WorkStealingPool};
    pub use crate::report::{PortfolioReport, ScenarioOutcome, VerdictKind};
    pub use crate::runner::{
        fill_explicit_outcome, fill_symbolic_outcome, run_batch, run_portfolio,
        run_portfolio_traced, run_scenario, Mode, PortfolioConfig,
    };
    pub use crate::scenario::{
        batch_by_grid_point, corpus_files, corpus_scenarios, corpus_specs, cross, Engine,
        GridBatch, ProgramSpec, Scenario,
    };
    pub use workloads::grid::{default_grid, family_grid, FamilySpec, FAMILIES};
}
