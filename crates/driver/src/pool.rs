//! A small work-stealing thread pool for embarrassingly-parallel job
//! batches with cooperative cancellation.
//!
//! Jobs are dealt round-robin into per-worker deques. A worker pops from
//! the *front* of its own deque and, when empty, steals from the *back* of
//! the first non-empty victim's, so owner and thieves contend on opposite
//! ends (mutexed deques rather than lock-free Chase–Lev: portfolio jobs
//! run for milliseconds to seconds, so queue contention is noise). Every
//! job produces exactly one output; cancellation is cooperative via
//! [`CancelToken`], which the job closure is expected to consult so
//! already-queued work can drain as cheap skips.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Shared cancellation flag ("stop starting new work").
///
/// ```
/// use driver::pool::CancelToken;
///
/// let t = CancelToken::new();
/// let u = t.clone();
/// assert!(!u.is_cancelled());
/// t.cancel();
/// assert!(u.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flip the flag; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Has any clone cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Fixed-width pool; see the module docs for the stealing discipline.
///
/// ```
/// use driver::pool::{CancelToken, WorkStealingPool};
///
/// let pool = WorkStealingPool::new(4);
/// let jobs: Vec<u64> = (0..100).collect();
/// let out = pool.run(jobs, &CancelToken::new(), |_idx, job, _cancel| job * 2);
/// assert_eq!(out[21], 42);
/// assert_eq!(out.len(), 100);
/// ```
pub struct WorkStealingPool {
    workers: usize,
}

impl WorkStealingPool {
    /// `workers` is clamped to at least 1.
    pub fn new(workers: usize) -> WorkStealingPool {
        WorkStealingPool {
            workers: workers.max(1),
        }
    }

    /// The effective worker count (after clamping).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run every job, returning outputs in job order. The closure receives
    /// the job's original index, the job itself, and the cancel token; it
    /// is called exactly once per job (cancelled batches still call it so
    /// the caller can record a "skipped" output).
    pub fn run<J, O, F>(&self, jobs: Vec<J>, cancel: &CancelToken, f: F) -> Vec<O>
    where
        J: Send,
        O: Send,
        F: Fn(usize, J, &CancelToken) -> O + Sync,
    {
        self.run_traced(jobs, cancel, None, f)
    }

    /// [`WorkStealingPool::run`] with an optional [`trace::Tracer`]: when
    /// given, each worker thread installs a `worker-<i>` lane for its
    /// lifetime, so spans opened anywhere inside the job closure land on
    /// that worker's timeline. With `None` this is exactly `run` —
    /// tracing stays zero-cost.
    pub fn run_traced<J, O, F>(
        &self,
        jobs: Vec<J>,
        cancel: &CancelToken,
        tracer: Option<&trace::Tracer>,
        f: F,
    ) -> Vec<O>
    where
        J: Send,
        O: Send,
        F: Fn(usize, J, &CancelToken) -> O + Sync,
    {
        let n = jobs.len();
        let deques: Vec<Mutex<VecDeque<(usize, J)>>> = (0..self.workers)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        for (i, job) in jobs.into_iter().enumerate() {
            deques[i % self.workers].lock().unwrap().push_back((i, job));
        }
        let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for me in 0..self.workers {
                let deques = &deques;
                let results = &results;
                let f = &f;
                scope.spawn(move || {
                    let _lane = tracer.map(|t| t.install(&format!("worker-{me}")));
                    loop {
                        let job = deques[me].lock().unwrap().pop_front().or_else(|| {
                            // Own deque empty: steal from the back of the
                            // first non-empty victim.
                            (0..deques.len())
                                .filter(|&v| v != me)
                                .find_map(|v| deques[v].lock().unwrap().pop_back())
                        });
                        let Some((idx, job)) = job else { break };
                        let out = f(idx, job, cancel);
                        *results[idx].lock().unwrap() = Some(out);
                    }
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every queued job produces exactly one output")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run_exactly_once_in_order() {
        let pool = WorkStealingPool::new(3);
        let ran = AtomicUsize::new(0);
        let out = pool.run(
            (0..50).collect(),
            &CancelToken::new(),
            |idx, job: usize, _| {
                ran.fetch_add(1, Ordering::SeqCst);
                (idx, job * job)
            },
        );
        assert_eq!(ran.load(Ordering::SeqCst), 50);
        for (i, (idx, sq)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*sq, i * i);
        }
    }

    #[test]
    fn zero_workers_degrades_to_one() {
        let pool = WorkStealingPool::new(0);
        assert_eq!(pool.workers(), 1);
        let out = pool.run(vec![7u64], &CancelToken::new(), |_, j, _| j + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn cancellation_is_visible_to_later_jobs() {
        // Single worker => deterministic order: job 0 cancels, the rest see it.
        let pool = WorkStealingPool::new(1);
        let out = pool.run(
            (0..10).collect(),
            &CancelToken::new(),
            |idx, _: usize, cancel| {
                if idx == 0 {
                    cancel.cancel();
                }
                cancel.is_cancelled()
            },
        );
        assert!(out.iter().all(|&seen| seen));
    }

    #[test]
    fn stealing_drains_unbalanced_queues() {
        // More workers than jobs and vice versa both complete.
        for workers in [1, 2, 8] {
            let pool = WorkStealingPool::new(workers);
            let out = pool.run((0..5).collect(), &CancelToken::new(), |_, j: u32, _| j);
            assert_eq!(out, vec![0, 1, 2, 3, 4]);
        }
    }
}
