//! Scenario model: one verification job = workload grid point × delivery
//! model × engine.

use mcapi::types::DeliveryModel;
use symbolic::checker::MatchGen;
use workloads::grid::FamilySpec;

/// Which verification engine runs a scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The paper's symbolic pipeline with the chosen match-pair generator.
    Symbolic(MatchGen),
    /// The explicit-state breadth-first ground truth
    /// ([`explicit::GraphExplorer`]), kept in every portfolio as the
    /// cross-validation baseline.
    Explicit,
}

impl Engine {
    /// Stable tag used in names, tables and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            Engine::Symbolic(MatchGen::Precise) => "symbolic-precise",
            Engine::Symbolic(MatchGen::OverApprox) => "symbolic-overapprox",
            Engine::Explicit => "explicit",
        }
    }

    /// Every engine, for grid crossing.
    pub const ALL: [Engine; 3] = [
        Engine::Symbolic(MatchGen::Precise),
        Engine::Symbolic(MatchGen::OverApprox),
        Engine::Explicit,
    ];
}

/// One unit of portfolio work.
///
/// ```
/// use driver::scenario::{Engine, Scenario};
/// use mcapi::types::DeliveryModel;
/// use workloads::grid::FamilySpec;
///
/// let s = Scenario::new(
///     FamilySpec::Fig1,
///     DeliveryModel::Unordered,
///     Engine::Explicit,
/// );
/// assert_eq!(s.name(), "fig1/unordered/explicit");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// The workload grid point to build and check.
    pub spec: FamilySpec,
    /// The network delivery discipline under test.
    pub delivery: DeliveryModel,
    /// The engine that runs the check.
    pub engine: Engine,
}

impl Scenario {
    /// Assemble a scenario from its three coordinates.
    pub fn new(spec: FamilySpec, delivery: DeliveryModel, engine: Engine) -> Scenario {
        Scenario {
            spec,
            delivery,
            engine,
        }
    }

    /// Unique human-readable identifier: `point/delivery/engine`.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}",
            self.spec.name(),
            self.delivery,
            self.engine.tag()
        )
    }
}

/// Cross a set of workload grid points with delivery models and engines.
/// This is the batch shape the CLI's `portfolio`/`sweep` subcommands run.
///
/// ```
/// use driver::scenario::{cross, Engine};
/// use mcapi::types::DeliveryModel;
/// use workloads::grid::default_grid;
///
/// let scenarios = cross(
///     &default_grid(2),
///     &DeliveryModel::ALL,
///     &Engine::ALL,
/// );
/// assert!(scenarios.len() >= 20);
/// ```
pub fn cross(
    specs: &[FamilySpec],
    deliveries: &[DeliveryModel],
    engines: &[Engine],
) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(specs.len() * deliveries.len() * engines.len());
    for &spec in specs {
        for &delivery in deliveries {
            for &engine in engines {
                out.push(Scenario::new(spec, delivery, engine));
            }
        }
    }
    out
}

/// The scenarios of one workload grid point, with their submission indices
/// preserved so batched runners can report outcomes in the original order.
///
/// Every scenario in a batch shares the compiled program, and the symbolic
/// ones share traces, match pairs and — through
/// [`symbolic::session::SessionPool`] — SMT encodings.
#[derive(Clone, Debug)]
pub struct GridBatch {
    /// The grid point all scenarios in this batch verify.
    pub spec: FamilySpec,
    /// `(submission index, scenario)` pairs, in submission order.
    pub items: Vec<(usize, Scenario)>,
}

/// Group scenarios by grid point (first-mention order), the unit of
/// session reuse.
///
/// ```
/// use driver::scenario::{batch_by_grid_point, cross, Engine};
/// use mcapi::types::DeliveryModel;
/// use workloads::grid::default_grid;
///
/// let scenarios = cross(&default_grid(1), &DeliveryModel::ALL, &Engine::ALL);
/// let batches = batch_by_grid_point(&scenarios);
/// assert_eq!(batches.len(), default_grid(1).len());
/// assert_eq!(batches.iter().map(|b| b.items.len()).sum::<usize>(), scenarios.len());
/// ```
pub fn batch_by_grid_point(scenarios: &[Scenario]) -> Vec<GridBatch> {
    let mut batches: Vec<GridBatch> = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        match batches.iter_mut().find(|b| b.spec == s.spec) {
            Some(b) => b.items.push((i, *s)),
            None => batches.push(GridBatch {
                spec: s.spec,
                items: vec![(i, *s)],
            }),
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_partitions_and_preserves_indices() {
        let scenarios = cross(
            &workloads::grid::default_grid(2),
            &DeliveryModel::ALL,
            &Engine::ALL,
        );
        let batches = batch_by_grid_point(&scenarios);
        let mut seen: Vec<usize> = batches
            .iter()
            .flat_map(|b| b.items.iter().map(|(i, _)| *i))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..scenarios.len()).collect::<Vec<_>>());
        for b in &batches {
            for (i, s) in &b.items {
                assert_eq!(s.spec, b.spec);
                assert_eq!(scenarios[*i].name(), s.name());
            }
        }
    }

    #[test]
    fn names_are_unique_across_the_cross_product() {
        let scenarios = cross(
            &workloads::grid::default_grid(2),
            &DeliveryModel::ALL,
            &Engine::ALL,
        );
        let names: std::collections::BTreeSet<String> =
            scenarios.iter().map(Scenario::name).collect();
        assert_eq!(names.len(), scenarios.len());
    }

    #[test]
    fn engine_tags_are_distinct() {
        let tags: std::collections::BTreeSet<&str> = Engine::ALL.iter().map(Engine::tag).collect();
        assert_eq!(tags.len(), Engine::ALL.len());
    }
}
