//! Scenario model: one verification job = workload grid point × delivery
//! model × engine.

use mcapi::types::DeliveryModel;
use symbolic::checker::MatchGen;
use workloads::grid::FamilySpec;

/// Which verification engine runs a scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The paper's symbolic pipeline with the chosen match-pair generator.
    Symbolic(MatchGen),
    /// The explicit-state breadth-first ground truth
    /// ([`explicit::GraphExplorer`]), kept in every portfolio as the
    /// cross-validation baseline.
    Explicit,
}

impl Engine {
    /// Stable tag used in names, tables and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            Engine::Symbolic(MatchGen::Precise) => "symbolic-precise",
            Engine::Symbolic(MatchGen::OverApprox) => "symbolic-overapprox",
            Engine::Explicit => "explicit",
        }
    }

    /// Every engine, for grid crossing.
    pub const ALL: [Engine; 3] = [
        Engine::Symbolic(MatchGen::Precise),
        Engine::Symbolic(MatchGen::OverApprox),
        Engine::Explicit,
    ];
}

/// One unit of portfolio work.
///
/// ```
/// use driver::scenario::{Engine, Scenario};
/// use mcapi::types::DeliveryModel;
/// use workloads::grid::FamilySpec;
///
/// let s = Scenario::new(
///     FamilySpec::Fig1,
///     DeliveryModel::Unordered,
///     Engine::Explicit,
/// );
/// assert_eq!(s.name(), "fig1/unordered/explicit");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// The workload grid point to build and check.
    pub spec: FamilySpec,
    /// The network delivery discipline under test.
    pub delivery: DeliveryModel,
    /// The engine that runs the check.
    pub engine: Engine,
}

impl Scenario {
    /// Assemble a scenario from its three coordinates.
    pub fn new(spec: FamilySpec, delivery: DeliveryModel, engine: Engine) -> Scenario {
        Scenario { spec, delivery, engine }
    }

    /// Unique human-readable identifier: `point/delivery/engine`.
    pub fn name(&self) -> String {
        format!("{}/{}/{}", self.spec.name(), self.delivery, self.engine.tag())
    }
}

/// Cross a set of workload grid points with delivery models and engines.
/// This is the batch shape the CLI's `portfolio`/`sweep` subcommands run.
///
/// ```
/// use driver::scenario::{cross, Engine};
/// use mcapi::types::DeliveryModel;
/// use workloads::grid::default_grid;
///
/// let scenarios = cross(
///     &default_grid(2),
///     &DeliveryModel::ALL,
///     &Engine::ALL,
/// );
/// assert!(scenarios.len() >= 20);
/// ```
pub fn cross(
    specs: &[FamilySpec],
    deliveries: &[DeliveryModel],
    engines: &[Engine],
) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(specs.len() * deliveries.len() * engines.len());
    for &spec in specs {
        for &delivery in deliveries {
            for &engine in engines {
                out.push(Scenario::new(spec, delivery, engine));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_across_the_cross_product() {
        let scenarios = cross(
            &workloads::grid::default_grid(2),
            &DeliveryModel::ALL,
            &Engine::ALL,
        );
        let names: std::collections::BTreeSet<String> =
            scenarios.iter().map(Scenario::name).collect();
        assert_eq!(names.len(), scenarios.len());
    }

    #[test]
    fn engine_tags_are_distinct() {
        let tags: std::collections::BTreeSet<&str> =
            Engine::ALL.iter().map(Engine::tag).collect();
        assert_eq!(tags.len(), Engine::ALL.len());
    }
}
