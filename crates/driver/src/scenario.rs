//! Scenario model: one verification job = program source × delivery
//! model × engine, where a program source is a workload grid point or an
//! MCAPI-lite file from a corpus directory.

use mcapi::program::Program;
use mcapi::types::DeliveryModel;
use std::path::Path;
use std::sync::Arc;
use symbolic::checker::MatchGen;
use workloads::grid::FamilySpec;

/// Where a scenario's program comes from.
///
/// The portfolio originally only knew [`FamilySpec`] grid points; the
/// MCAPI-lite frontend adds file-backed programs, which cross with
/// delivery models and engines exactly like grid points.
#[derive(Clone, PartialEq, Debug)]
pub enum ProgramSpec {
    /// A point in a workload family's parameter grid, built on demand.
    Grid(FamilySpec),
    /// An already-built program (parsed from a `.mcapi` file or
    /// assembled by hand), shared cheaply across the cross-product.
    Source {
        /// Stable name used in scenario names and reports (for corpus
        /// files: the file stem).
        name: String,
        /// The compiled program.
        program: Arc<Program>,
    },
}

impl ProgramSpec {
    /// A file-backed (or hand-built) program spec.
    pub fn source(name: impl Into<String>, program: Program) -> ProgramSpec {
        ProgramSpec::Source {
            name: name.into(),
            program: Arc::new(program),
        }
    }

    /// Compact unique name of this program, e.g. `ring4x2` or the corpus
    /// file stem.
    pub fn name(&self) -> String {
        match self {
            ProgramSpec::Grid(spec) => spec.name(),
            ProgramSpec::Source { name, .. } => name.clone(),
        }
    }

    /// The family tag printed in reports (`"corpus"` for file-backed
    /// programs).
    pub fn family(&self) -> String {
        match self {
            ProgramSpec::Grid(spec) => spec.family().to_string(),
            ProgramSpec::Source { .. } => "corpus".to_string(),
        }
    }

    /// Build (or clone) the compiled program.
    pub fn build(&self) -> Program {
        match self {
            ProgramSpec::Grid(spec) => spec.build(),
            ProgramSpec::Source { program, .. } => (**program).clone(),
        }
    }
}

impl From<FamilySpec> for ProgramSpec {
    fn from(spec: FamilySpec) -> ProgramSpec {
        ProgramSpec::Grid(spec)
    }
}

/// Load every `*.mcapi` file in `dir` as a [`ProgramSpec::Source`],
/// sorted by file name for reproducible batch orders. Parse or lowering
/// failures abort with the file path and the frontend's caret diagnostic.
///
/// Specs are named `corpus/<stem>` so a corpus file called `fig1.mcapi`
/// can never collide with the `fig1` grid point when both run in one
/// portfolio (scenario names key report rows).
pub fn corpus_specs(dir: &Path) -> Result<Vec<ProgramSpec>, String> {
    let paths = corpus_files(dir)?;
    let mut specs = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let program =
            frontend::parse_program(&text).map_err(|e| format!("{}:\n{e}", path.display()))?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        specs.push(ProgramSpec::source(format!("corpus/{stem}"), program));
    }
    Ok(specs)
}

/// List every `*.mcapi` file in `dir`, sorted by file name for
/// reproducible batch orders. Shared by [`corpus_specs`] and the CLI's
/// `corpus-check` subcommand so both walk the corpus identically.
pub fn corpus_files(dir: &Path) -> Result<Vec<std::path::PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "mcapi"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Load a corpus directory and cross it with delivery models and
/// engines — the file-driven analogue of [`cross`] over a grid.
pub fn corpus_scenarios(
    dir: &Path,
    deliveries: &[DeliveryModel],
    engines: &[Engine],
) -> Result<Vec<Scenario>, String> {
    Ok(cross(&corpus_specs(dir)?, deliveries, engines))
}

/// Which verification engine runs a scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The paper's symbolic pipeline with the chosen match-pair generator
    /// (one trace: verdicts are scoped to that trace's branch outcomes).
    Symbolic(MatchGen),
    /// The branch-complete symbolic engine (`symbolic::paths`): every
    /// feasible control-flow path is enumerated and checked, so verdicts
    /// are whole-program like the explicit baseline's.
    SymbolicPaths,
    /// The explicit-state breadth-first ground truth
    /// ([`explicit::GraphExplorer`]), kept in every portfolio as the
    /// cross-validation baseline.
    Explicit,
}

impl Engine {
    /// Stable tag used in names, tables and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            Engine::Symbolic(MatchGen::Precise) => "symbolic-precise",
            Engine::Symbolic(MatchGen::OverApprox) => "symbolic-overapprox",
            Engine::SymbolicPaths => "symbolic-paths",
            Engine::Explicit => "explicit",
        }
    }

    /// Every engine, for grid crossing.
    pub const ALL: [Engine; 4] = [
        Engine::Symbolic(MatchGen::Precise),
        Engine::Symbolic(MatchGen::OverApprox),
        Engine::SymbolicPaths,
        Engine::Explicit,
    ];
}

/// One unit of portfolio work.
///
/// ```
/// use driver::scenario::{Engine, Scenario};
/// use mcapi::types::DeliveryModel;
/// use workloads::grid::FamilySpec;
///
/// let s = Scenario::new(
///     FamilySpec::Fig1,
///     DeliveryModel::Unordered,
///     Engine::Explicit,
/// );
/// assert_eq!(s.name(), "fig1/unordered/explicit");
/// ```
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The program to build and check (grid point or corpus file).
    pub spec: ProgramSpec,
    /// The network delivery discipline under test.
    pub delivery: DeliveryModel,
    /// The engine that runs the check.
    pub engine: Engine,
}

impl Scenario {
    /// Assemble a scenario from its three coordinates.
    pub fn new(spec: impl Into<ProgramSpec>, delivery: DeliveryModel, engine: Engine) -> Scenario {
        Scenario {
            spec: spec.into(),
            delivery,
            engine,
        }
    }

    /// Unique human-readable identifier: `point/delivery/engine`.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}",
            self.spec.name(),
            self.delivery,
            self.engine.tag()
        )
    }
}

/// Cross a set of workload grid points with delivery models and engines.
/// This is the batch shape the CLI's `portfolio`/`sweep` subcommands run.
///
/// ```
/// use driver::scenario::{cross, Engine};
/// use mcapi::types::DeliveryModel;
/// use workloads::grid::default_grid;
///
/// let scenarios = cross(
///     &default_grid(2),
///     &DeliveryModel::ALL,
///     &Engine::ALL,
/// );
/// assert!(scenarios.len() >= 20);
/// ```
pub fn cross<S>(specs: &[S], deliveries: &[DeliveryModel], engines: &[Engine]) -> Vec<Scenario>
where
    S: Clone + Into<ProgramSpec>,
{
    let mut out = Vec::with_capacity(specs.len() * deliveries.len() * engines.len());
    for spec in specs {
        for &delivery in deliveries {
            for &engine in engines {
                out.push(Scenario::new(spec.clone(), delivery, engine));
            }
        }
    }
    out
}

/// The scenarios of one workload grid point, with their submission indices
/// preserved so batched runners can report outcomes in the original order.
///
/// Every scenario in a batch shares the compiled program, and the symbolic
/// ones share traces, match pairs and — through
/// [`symbolic::session::SessionPool`] — SMT encodings.
#[derive(Clone, Debug)]
pub struct GridBatch {
    /// The program all scenarios in this batch verify.
    pub spec: ProgramSpec,
    /// `(submission index, scenario)` pairs, in submission order.
    pub items: Vec<(usize, Scenario)>,
}

/// Group scenarios by grid point (first-mention order), the unit of
/// session reuse.
///
/// ```
/// use driver::scenario::{batch_by_grid_point, cross, Engine};
/// use mcapi::types::DeliveryModel;
/// use workloads::grid::default_grid;
///
/// let scenarios = cross(&default_grid(1), &DeliveryModel::ALL, &Engine::ALL);
/// let batches = batch_by_grid_point(&scenarios);
/// assert_eq!(batches.len(), default_grid(1).len());
/// assert_eq!(batches.iter().map(|b| b.items.len()).sum::<usize>(), scenarios.len());
/// ```
pub fn batch_by_grid_point(scenarios: &[Scenario]) -> Vec<GridBatch> {
    let mut batches: Vec<GridBatch> = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        match batches.iter_mut().find(|b| b.spec == s.spec) {
            Some(b) => b.items.push((i, s.clone())),
            None => batches.push(GridBatch {
                spec: s.spec.clone(),
                items: vec![(i, s.clone())],
            }),
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_partitions_and_preserves_indices() {
        let scenarios = cross(
            &workloads::grid::default_grid(2),
            &DeliveryModel::ALL,
            &Engine::ALL,
        );
        let batches = batch_by_grid_point(&scenarios);
        let mut seen: Vec<usize> = batches
            .iter()
            .flat_map(|b| b.items.iter().map(|(i, _)| *i))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..scenarios.len()).collect::<Vec<_>>());
        for b in &batches {
            for (i, s) in &b.items {
                assert_eq!(s.spec, b.spec);
                assert_eq!(scenarios[*i].name(), s.name());
            }
        }
    }

    #[test]
    fn names_are_unique_across_the_cross_product() {
        let scenarios = cross(
            &workloads::grid::default_grid(2),
            &DeliveryModel::ALL,
            &Engine::ALL,
        );
        let names: std::collections::BTreeSet<String> =
            scenarios.iter().map(Scenario::name).collect();
        assert_eq!(names.len(), scenarios.len());
    }

    #[test]
    fn engine_tags_are_distinct() {
        let tags: std::collections::BTreeSet<&str> = Engine::ALL.iter().map(Engine::tag).collect();
        assert_eq!(tags.len(), Engine::ALL.len());
    }

    /// A scratch directory that cleans up after itself.
    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("driver-corpus-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn corpus_specs_load_sorted_and_cross_like_grid_points() {
        let tmp = TempDir::new("ok");
        std::fs::write(
            tmp.0.join("b-ring.mcapi"),
            "program b { thread t0 { var x; send(t1:0, 1); x = recv(0); }
                         thread t1 { var y; y = recv(0); send(t0:0, y); } }",
        )
        .unwrap();
        std::fs::write(
            tmp.0.join("a-pair.mcapi"),
            "program a { thread t0 { send(t1:0, 7); } thread t1 { var v; v = recv(0); } }",
        )
        .unwrap();
        std::fs::write(tmp.0.join("notes.txt"), "not a program").unwrap();

        let specs = corpus_specs(&tmp.0).unwrap();
        assert_eq!(
            specs.iter().map(ProgramSpec::name).collect::<Vec<_>>(),
            ["corpus/a-pair", "corpus/b-ring"]
        );
        assert!(specs.iter().all(|s| s.family() == "corpus"));
        assert_eq!(specs[0].build().threads.len(), 2);

        let scenarios =
            corpus_scenarios(&tmp.0, &[DeliveryModel::Unordered], &Engine::ALL).unwrap();
        assert_eq!(scenarios.len(), 2 * Engine::ALL.len());
        assert_eq!(
            scenarios[0].name(),
            "corpus/a-pair/unordered/symbolic-precise"
        );
        // Corpus scenarios batch by program exactly like grid points.
        let batches = batch_by_grid_point(&scenarios);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].items.len(), Engine::ALL.len());
    }

    #[test]
    fn corpus_parse_errors_carry_the_file_and_caret() {
        let tmp = TempDir::new("bad");
        std::fs::write(tmp.0.join("broken.mcapi"), "program p { thread t0 { x } }").unwrap();
        let err = corpus_specs(&tmp.0).unwrap_err();
        assert!(err.contains("broken.mcapi"), "{err}");
        assert!(err.contains('^'), "{err}");
    }

    #[test]
    fn grid_and_source_specs_mix_in_one_cross() {
        let program = FamilySpec::Fig1.build();
        let specs = vec![
            ProgramSpec::Grid(FamilySpec::Fig1),
            ProgramSpec::source("from-file", program),
        ];
        let scenarios = cross(&specs, &[DeliveryModel::Unordered], &[Engine::Explicit]);
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].spec.family(), "fig1");
        assert_eq!(scenarios[1].spec.family(), "corpus");
        assert_eq!(scenarios[1].name(), "from-file/unordered/explicit");
    }
}
