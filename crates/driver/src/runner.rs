//! The portfolio runner: fan a scenario batch out across the pool, collect
//! [`ScenarioOutcome`]s, aggregate a [`PortfolioReport`].

use crate::pool::{CancelToken, WorkStealingPool};
use crate::report::{PortfolioReport, ScenarioOutcome, VerdictKind};
use crate::scenario::{batch_by_grid_point, Engine, GridBatch, Scenario};
use explicit::{ExploreConfig, GraphExplorer};
use mcapi::program::Program;
use std::time::Instant;
use symbolic::checker::{
    check_program, check_program_pooled, CheckConfig, CheckReport, MatchGen, Verdict,
};
use symbolic::paths::{check_program_paths_pooled, PathsConfig};
use symbolic::session::SessionPool;

/// What happens after the first confirmed violation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Cancel the rest of the batch ("find any bug fast").
    Race,
    /// Run every scenario to completion ("map the whole grid").
    Sweep,
}

impl Mode {
    /// Stable tag used in reports (`"race"` / `"sweep"`).
    pub fn tag(&self) -> &'static str {
        match self {
            Mode::Race => "race",
            Mode::Sweep => "sweep",
        }
    }
}

/// Portfolio-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct PortfolioConfig {
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// Stop-on-first-violation ([`Mode::Race`]) or run-everything
    /// ([`Mode::Sweep`]).
    pub mode: Mode,
    /// Per-scenario wall-clock budget for the *symbolic* solve/refine loop
    /// (maps to [`CheckConfig::budget_ms`]). `None` = unbounded. The
    /// explicit engine is bounded by [`PortfolioConfig::max_states`]
    /// instead — it has no wall-clock knob.
    pub budget_ms: Option<u64>,
    /// Explicit-engine state-count cap (its analogue of a time budget).
    pub max_states: usize,
    /// Validate symbolic witnesses by concrete replay.
    pub validate: bool,
    /// Batch scenarios by grid point and share one incremental SMT
    /// encoding per (trace, match pairs) across delivery models, match
    /// generators and sibling control-flow paths (see
    /// [`symbolic::session::CheckSession`]). Disable to re-encode every
    /// scenario from scratch, PR-1 style (the CLI's `--no-session-reuse`).
    pub session_reuse: bool,
    /// Path budget for the `symbolic-paths` engine: exceeding it degrades
    /// the scenario verdict to unknown, never to a silent safe.
    pub max_paths: usize,
    /// Explore only the canonical representative of each Mazurkiewicz
    /// trace class: the directed searches behind `symbolic-paths` and the
    /// explicit engine's state graph both prune non-canonical schedule
    /// extensions (see [`mcapi::canon`]). On by default; the CLI's
    /// `--no-canonical` sweeps every interleaving instead.
    pub canonical: bool,
    /// Run the static triage pre-pass ([`analysis::analyze_with`]) before
    /// dispatching engines: scenarios whose verdict is statically decided
    /// settle with zero engine work, and the `symbolic-paths` pruner is
    /// fed static facts ([`symbolic::paths::PathsConfig::static_facts`]).
    /// On by default; the CLI's `--no-static-triage` disables both — the
    /// engine-only baseline the soundness differential compares against.
    pub static_triage: bool,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            threads: 1,
            mode: Mode::Sweep,
            budget_ms: None,
            max_states: 1_000_000,
            validate: true,
            session_reuse: true,
            max_paths: 64,
            canonical: true,
            static_triage: true,
        }
    }
}

impl PortfolioConfig {
    /// The [`CheckConfig`] a symbolic scenario runs under. Public so tests
    /// and experiment binaries can run the *same* configuration through
    /// the sequential checker when validating portfolio verdicts.
    pub fn check_config(&self, scenario: &Scenario) -> CheckConfig {
        let matchgen = match scenario.engine {
            Engine::Symbolic(m) => m,
            // The path engine validates by replay, so the cheap
            // over-approximate generator is the right default.
            Engine::SymbolicPaths => MatchGen::OverApprox,
            Engine::Explicit => unreachable!("check_config is for symbolic scenarios"),
        };
        CheckConfig {
            delivery: scenario.delivery,
            matchgen,
            budget_ms: self.budget_ms,
            validate: self.validate,
            ..CheckConfig::default()
        }
    }

    /// The [`PathsConfig`] a `symbolic-paths` scenario runs under.
    pub fn paths_config(&self, scenario: &Scenario) -> PathsConfig {
        PathsConfig {
            check: self.check_config(scenario),
            max_paths: self.max_paths,
            session_reuse: self.session_reuse,
            canonical: self.canonical,
            static_facts: self.static_triage,
            ..PathsConfig::default()
        }
    }
}

/// What the static triage pre-pass concluded about one grid point.
struct TriagePoint {
    /// `Some` when analysis alone decides the verdict every engine would
    /// return; the scenario settles without dispatching an engine.
    settled: Option<(VerdictKind, String)>,
    /// Findings (lint warnings and errors) on the point's program.
    lint_findings: usize,
}

/// Run the static triage pre-pass over a grid point's program; `None`
/// when triage is disabled. The verdict guard lives in
/// [`analysis::triage`]: only assertion facts that hold on *every*
/// execution (straight-run constant violations, all-tautology assertion
/// sets within the path budget) settle a scenario, so a settled verdict
/// is bit-identical to what any engine would answer.
fn triage_point(program: &Program, cfg: &PortfolioConfig) -> Option<TriagePoint> {
    if !cfg.static_triage {
        return None;
    }
    let mut span = trace::span("analysis.triage");
    let report = analysis::analyze_with(
        program,
        &analysis::TriageConfig {
            max_static_paths: cfg.max_paths as u64,
        },
    );
    span.arg("findings", report.findings.len() as u64)
        .arg("settled", report.static_verdict.is_some() as u64);
    let settled = match report.static_verdict {
        Some(analysis::StaticVerdict::Safe) => Some((
            VerdictKind::Safe,
            "statically decided: every reachable assertion is a tautology".to_string(),
        )),
        Some(analysis::StaticVerdict::Violation(msg)) => {
            Some((VerdictKind::Violation, format!("statically decided: {msg}")))
        }
        None => None,
    };
    Some(TriagePoint {
        settled,
        lint_findings: report.findings.len(),
    })
}

/// A blank outcome shell for a scenario (filled in by the engine runners).
fn outcome_shell(scenario: &Scenario) -> ScenarioOutcome {
    ScenarioOutcome::skipped(
        scenario.name(),
        scenario.spec.family(),
        scenario.delivery.to_string(),
        scenario.engine.tag().to_string(),
    )
}

/// Fold a symbolic [`CheckReport`] into an existing outcome shell.
/// Public so the CLI's single-scenario `check` reporting builds the same
/// outcome (and therefore the same metrics/event exposition) as the
/// portfolio runner.
pub fn fill_symbolic_outcome(out: &mut ScenarioOutcome, report: CheckReport, reused: bool) {
    out.refinements = report.refinements;
    out.sat_vars = report.encode_stats.sat_vars;
    out.sat_clauses = report.encode_stats.sat_clauses;
    out.match_pairs = report.matchgen_pairs;
    out.matchgen_states = report.matchgen_states;
    out.reused_encoding = reused;
    out.sat_checks = report.sat_checks;
    out.conflicts = report.solver_stats.conflicts;
    out.propagations = report.solver_stats.propagations;
    out.paths_explored = report.paths_explored;
    out.paths_pruned = report.paths_pruned;
    out.directed_transitions = report.directed_transitions;
    out.canonical_skipped = report.canonical_skipped;
    out.encode_us = report.timings.encode_us;
    out.solve_us = report.timings.solve_us;
    out.schedule_us = report.timings.schedule_us;
    out.enumerate_us = report.timings.enumerate_us;
    out.solver = report.solver_stats;
    out.introspect = report.solver_introspect;
    match report.verdict {
        Verdict::Safe => {
            out.verdict = VerdictKind::Safe;
            out.detail = String::new();
        }
        Verdict::Violation(cv) => {
            out.verdict = VerdictKind::Violation;
            out.detail = cv.violated_props.join("; ");
        }
        Verdict::Unknown(why) => {
            out.verdict = VerdictKind::Unknown;
            out.detail = why;
        }
    }
}

/// Fold a symbolic [`CheckReport`] into an outcome.
fn symbolic_outcome(scenario: &Scenario, report: CheckReport, reused: bool) -> ScenarioOutcome {
    let mut out = outcome_shell(scenario);
    fill_symbolic_outcome(&mut out, report, reused);
    out
}

/// Fold an explicit-state exploration result into an existing outcome
/// shell (public for the same reason as [`fill_symbolic_outcome`]).
pub fn fill_explicit_outcome(out: &mut ScenarioOutcome, result: &explicit::ExploreResult) {
    out.states = result.states;
    out.transitions = result.transitions;
    out.canonical_skipped = result.canonical_skipped;
    if result.found_violation() {
        out.verdict = VerdictKind::Violation;
        out.detail = result
            .violations
            .iter()
            .map(|v| v.message.clone())
            .collect::<Vec<_>>()
            .join("; ");
    } else if result.truncated {
        out.verdict = VerdictKind::Unknown;
        out.detail = format!("state budget exhausted at {}", result.states);
    } else {
        out.verdict = VerdictKind::Safe;
        out.detail = String::new();
    }
}

/// Run the explicit-state ground-truth engine on an already-built program.
fn run_explicit(program: &Program, scenario: &Scenario, cfg: &PortfolioConfig) -> ScenarioOutcome {
    let mut out = outcome_shell(scenario);
    let explore_cfg = ExploreConfig {
        model: scenario.delivery,
        max_states: cfg.max_states,
        stop_at_first_violation: cfg.mode == Mode::Race,
        use_canonical: cfg.canonical,
        ..ExploreConfig::default()
    };
    let result = GraphExplorer::new(program, explore_cfg).explore();
    fill_explicit_outcome(&mut out, &result);
    out
}

/// Run one scenario to an outcome on the calling thread, building its
/// program and (for symbolic engines) a fresh encoding — the no-reuse
/// path.
pub fn run_scenario(scenario: &Scenario, cfg: &PortfolioConfig) -> ScenarioOutcome {
    let start = Instant::now();
    let mut span = trace::span_dyn(scenario.name());
    let program = scenario.spec.build();
    let triage = triage_point(&program, cfg);
    let mut out = match triage.as_ref().and_then(|t| t.settled.clone()) {
        Some((verdict, detail)) => {
            let mut out = outcome_shell(scenario);
            out.verdict = verdict;
            out.detail = detail;
            out.statically_decided = true;
            out
        }
        None => match scenario.engine {
            Engine::Symbolic(_) => {
                let report = check_program(&program, &cfg.check_config(scenario));
                symbolic_outcome(scenario, report, false)
            }
            Engine::SymbolicPaths => {
                let mut pool = SessionPool::new();
                let (report, reused) =
                    check_program_paths_pooled(&mut pool, &program, &cfg.paths_config(scenario));
                symbolic_outcome(scenario, report, reused)
            }
            Engine::Explicit => run_explicit(&program, scenario, cfg),
        },
    };
    if let Some(t) = &triage {
        out.lint_findings = t.lint_findings;
    }
    out.wall_ms = start.elapsed().as_millis() as u64;
    span.arg("sat_checks", out.sat_checks as u64)
        .arg("conflicts", out.conflicts)
        .arg("states", out.states as u64);
    out
}

/// Run one grid point's scenarios back to back: the program is built once
/// and every symbolic scenario goes through a shared [`SessionPool`], so
/// scenarios whose (trace, match pairs) coincide solve incrementally on
/// one encoding instead of re-encoding from scratch.
pub fn run_batch(
    batch: &GridBatch,
    cfg: &PortfolioConfig,
    cancel: &CancelToken,
) -> Vec<(usize, ScenarioOutcome)> {
    let mut batch_span = trace::span_dyn(format!("batch:{}", batch.spec.family()));
    let program = batch.spec.build();
    // One triage pass per grid point: every engine scenario at the point
    // shares the same program, so a settled verdict settles them all.
    let triage = triage_point(&program, cfg);
    let mut pool = SessionPool::new();
    let mut out = Vec::with_capacity(batch.items.len());
    for (idx, scenario) in &batch.items {
        if cancel.is_cancelled() {
            out.push((*idx, outcome_shell(scenario)));
            continue;
        }
        let start = Instant::now();
        let mut scenario_span = trace::span_dyn(scenario.name());
        let mut o = match triage.as_ref().and_then(|t| t.settled.clone()) {
            Some((verdict, detail)) => {
                let mut o = outcome_shell(scenario);
                o.verdict = verdict;
                o.detail = detail;
                o.statically_decided = true;
                o
            }
            None => match scenario.engine {
                Engine::Symbolic(_) => {
                    let (report, reused) =
                        check_program_pooled(&mut pool, &program, &cfg.check_config(scenario));
                    symbolic_outcome(scenario, report, reused)
                }
                Engine::SymbolicPaths => {
                    // The batch pool is shared, so path traces attach as
                    // siblings across delivery models of one grid point too.
                    let (report, reused) = check_program_paths_pooled(
                        &mut pool,
                        &program,
                        &cfg.paths_config(scenario),
                    );
                    symbolic_outcome(scenario, report, reused)
                }
                Engine::Explicit => run_explicit(&program, scenario, cfg),
            },
        };
        if let Some(t) = &triage {
            o.lint_findings = t.lint_findings;
        }
        o.wall_ms = start.elapsed().as_millis() as u64;
        scenario_span
            .arg("sat_checks", o.sat_checks as u64)
            .arg("conflicts", o.conflicts)
            .arg("reused", o.reused_encoding as u64)
            .arg("states", o.states as u64);
        drop(scenario_span);
        if cfg.mode == Mode::Race && o.verdict == VerdictKind::Violation {
            cancel.cancel();
        }
        out.push((*idx, o));
    }
    batch_span.arg("scenarios", batch.items.len() as u64);
    out
}

/// Run the whole batch across the pool and aggregate the report.
///
/// Outcomes keep the submission order of `scenarios` regardless of which
/// worker ran them, so reports are comparable run to run.
///
/// ```
/// use driver::runner::{run_portfolio, Mode, PortfolioConfig};
/// use driver::scenario::{cross, Engine};
/// use mcapi::types::DeliveryModel;
/// use workloads::grid::FamilySpec;
///
/// let scenarios = cross(
///     &[FamilySpec::Fig1, FamilySpec::Fig1Assert],
///     &[DeliveryModel::Unordered],
///     &Engine::ALL,
/// );
/// let cfg = PortfolioConfig { threads: 2, mode: Mode::Sweep, ..Default::default() };
/// let report = run_portfolio(&scenarios, &cfg);
/// assert_eq!(report.outcomes.len(), 8, "2 programs x 4 engines");
/// assert!(report.found_violation(), "fig1-assert races");
/// ```
pub fn run_portfolio(scenarios: &[Scenario], cfg: &PortfolioConfig) -> PortfolioReport {
    run_portfolio_traced(scenarios, cfg, None)
}

/// [`run_portfolio`] with an optional [`trace::Tracer`]: each pool worker
/// records its batches, scenarios, solver queries, and solves onto a
/// `worker-<i>` lane. Tracing is observation only — verdicts and every
/// deterministic counter are bit-identical to an untraced run (asserted
/// by an integration test and a CI step).
pub fn run_portfolio_traced(
    scenarios: &[Scenario],
    cfg: &PortfolioConfig,
    tracer: Option<&trace::Tracer>,
) -> PortfolioReport {
    let start = Instant::now();
    let pool = WorkStealingPool::new(cfg.threads);
    let cancel = CancelToken::new();
    let outcomes = if cfg.session_reuse {
        // Grid-point batches are the pool's work items: each batch builds
        // its program once and shares encodings through a session pool.
        let batches = batch_by_grid_point(scenarios);
        let per_batch = pool.run_traced(
            batches,
            &cancel,
            tracer,
            |_bidx, batch: GridBatch, cancel| run_batch(&batch, cfg, cancel),
        );
        let mut outcomes: Vec<Option<ScenarioOutcome>> = vec![None; scenarios.len()];
        for (idx, o) in per_batch.into_iter().flatten() {
            outcomes[idx] = Some(o);
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every scenario lands in exactly one batch"))
            .collect()
    } else {
        pool.run_traced(
            scenarios.to_vec(),
            &cancel,
            tracer,
            |_idx, scenario: Scenario, cancel| {
                if cancel.is_cancelled() {
                    return ScenarioOutcome::skipped(
                        scenario.name(),
                        scenario.spec.family(),
                        scenario.delivery.to_string(),
                        scenario.engine.tag().to_string(),
                    );
                }
                let outcome = run_scenario(&scenario, cfg);
                if cfg.mode == Mode::Race && outcome.verdict == VerdictKind::Violation {
                    cancel.cancel();
                }
                outcome
            },
        )
    };
    PortfolioReport::from_outcomes(
        cfg.mode.tag(),
        pool.workers(),
        start.elapsed().as_millis() as u64,
        outcomes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::cross;
    use mcapi::types::DeliveryModel;
    use workloads::grid::FamilySpec;

    #[test]
    fn sweep_runs_everything_and_orders_outcomes() {
        let scenarios = cross(
            &[FamilySpec::Fig1, FamilySpec::Race { width: 2 }],
            &DeliveryModel::ALL,
            &[Engine::Explicit],
        );
        let cfg = PortfolioConfig {
            threads: 3,
            ..Default::default()
        };
        let report = run_portfolio(&scenarios, &cfg);
        assert_eq!(report.outcomes.len(), scenarios.len());
        for (s, o) in scenarios.iter().zip(&report.outcomes) {
            assert_eq!(s.name(), o.scenario);
            assert_eq!(o.verdict, VerdictKind::Safe, "{}", o.scenario);
        }
        assert_eq!(report.skipped, 0);
    }

    #[test]
    fn race_mode_cancels_after_a_violation() {
        // One violating scenario followed by many safe ones on one worker:
        // everything after the violation must be skipped.
        let mut scenarios = cross(
            &[FamilySpec::Fig1Assert],
            &[DeliveryModel::Unordered],
            &[Engine::Explicit],
        );
        scenarios.extend(cross(
            &[
                FamilySpec::Ring { nodes: 3, laps: 1 },
                FamilySpec::Pipeline {
                    stages: 2,
                    items: 2,
                },
            ],
            &DeliveryModel::ALL,
            &[Engine::Explicit],
        ));
        let cfg = PortfolioConfig {
            threads: 1,
            mode: Mode::Race,
            ..Default::default()
        };
        let report = run_portfolio(&scenarios, &cfg);
        assert_eq!(report.violations, 1);
        assert_eq!(report.skipped, scenarios.len() - 1);
    }

    #[test]
    fn symbolic_and_explicit_agree_on_fig1_assert() {
        let scenarios = cross(
            &[FamilySpec::Fig1Assert],
            &[DeliveryModel::Unordered],
            &Engine::ALL,
        );
        let cfg = PortfolioConfig {
            threads: 2,
            ..Default::default()
        };
        let report = run_portfolio(&scenarios, &cfg);
        for o in &report.outcomes {
            assert_eq!(o.verdict, VerdictKind::Violation, "{}", o.scenario);
        }
    }

    #[test]
    fn tiny_budget_degrades_to_unknown_not_wrong() {
        let scenarios = cross(
            &[FamilySpec::Race { width: 4 }],
            &[DeliveryModel::Unordered],
            &[Engine::Explicit],
        );
        let cfg = PortfolioConfig {
            max_states: 3,
            // The race family is assert-free, so triage would settle it
            // Safe before the engine ever sees its tiny budget — this
            // test targets the engine's degradation behaviour.
            static_triage: false,
            ..Default::default()
        };
        let report = run_portfolio(&scenarios, &cfg);
        assert_eq!(report.outcomes[0].verdict, VerdictKind::Unknown);
        assert!(report.outcomes[0].detail.contains("state budget"));
    }

    #[test]
    fn triage_settles_assert_free_grid_points_engine_free() {
        let scenarios = cross(&[FamilySpec::Fig1], &DeliveryModel::ALL, &Engine::ALL);
        let report = run_portfolio(&scenarios, &PortfolioConfig::default());
        assert_eq!(report.statically_decided, scenarios.len());
        for o in &report.outcomes {
            assert_eq!(o.verdict, VerdictKind::Safe, "{}", o.scenario);
            assert!(o.statically_decided, "{}", o.scenario);
            assert!(o.detail.contains("statically decided"), "{}", o.detail);
            assert_eq!(o.sat_checks, 0, "triage must not touch the solver");
            assert_eq!(o.states, 0, "triage must not explore states");
        }
        // The engine-only baseline answers the same verdicts.
        let baseline = run_portfolio(
            &scenarios,
            &PortfolioConfig {
                static_triage: false,
                ..PortfolioConfig::default()
            },
        );
        assert_eq!(baseline.statically_decided, 0);
        for (t, b) in report.outcomes.iter().zip(&baseline.outcomes) {
            assert_eq!(t.verdict, b.verdict, "{}", t.scenario);
        }
    }

    #[test]
    fn triage_stands_aside_on_value_dependent_asserts() {
        let scenarios = cross(
            &[FamilySpec::Branchy { rounds: 2 }],
            &[DeliveryModel::Unordered],
            &Engine::ALL,
        );
        let report = run_portfolio(&scenarios, &PortfolioConfig::default());
        for o in &report.outcomes {
            assert!(!o.statically_decided, "{}", o.scenario);
            assert_eq!(o.verdict, VerdictKind::Safe, "{}", o.scenario);
        }
    }
}
