//! Integration test: portfolio verdicts must agree with single-scenario
//! sequential `symbolic::checker` runs on the same configurations — the
//! driver adds parallelism and aggregation, never a different answer.

use driver::prelude::*;
use mcapi::types::DeliveryModel;
use symbolic::checker::{check_program, Verdict};

fn verdict_kind(v: &Verdict) -> VerdictKind {
    match v {
        Verdict::Safe => VerdictKind::Safe,
        Verdict::Violation(_) => VerdictKind::Violation,
        Verdict::Unknown(_) => VerdictKind::Unknown,
    }
}

#[test]
fn portfolio_agrees_with_sequential_checker_on_fig1_grid() {
    // fig1 and fig1-assert under every delivery model and both symbolic
    // engines: 12 scenarios, run on 4 workers.
    let scenarios = cross(
        &[FamilySpec::Fig1, FamilySpec::Fig1Assert],
        &DeliveryModel::ALL,
        &[
            Engine::Symbolic(symbolic::checker::MatchGen::Precise),
            Engine::Symbolic(symbolic::checker::MatchGen::OverApprox),
        ],
    );
    let cfg = PortfolioConfig { threads: 4, mode: Mode::Sweep, ..Default::default() };
    let report = run_portfolio(&scenarios, &cfg);
    assert_eq!(report.outcomes.len(), scenarios.len());
    assert_eq!(report.skipped, 0, "sweep mode never skips");

    for (scenario, outcome) in scenarios.iter().zip(&report.outcomes) {
        let sequential = check_program(&scenario.spec.build(), &cfg.check_config(scenario));
        assert_eq!(
            outcome.verdict,
            verdict_kind(&sequential.verdict),
            "portfolio and sequential checker disagree on {}",
            scenario.name(),
        );
        assert_eq!(
            outcome.refinements, sequential.refinements,
            "refinement counts diverge on {}",
            scenario.name(),
        );
    }
}

#[test]
fn race_assert_violation_is_found_under_every_engine() {
    let scenarios = cross(
        &[FamilySpec::RaceAssert { width: 2 }],
        &[DeliveryModel::Unordered],
        &Engine::ALL,
    );
    let report = run_portfolio(
        &scenarios,
        &PortfolioConfig { threads: 3, ..Default::default() },
    );
    for o in &report.outcomes {
        assert_eq!(o.verdict, VerdictKind::Violation, "{}", o.scenario);
    }
}

#[test]
fn json_report_of_a_real_run_roundtrips() {
    let scenarios = cross(
        &[FamilySpec::Fig1],
        &DeliveryModel::ALL,
        &[Engine::Explicit],
    );
    let report = run_portfolio(&scenarios, &PortfolioConfig::default());
    let back: PortfolioReport = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(back.outcomes.len(), report.outcomes.len());
    assert_eq!(back.safe, 3);
}
