//! Integration test: portfolio verdicts must agree with single-scenario
//! sequential `symbolic::checker` runs on the same configurations — the
//! driver adds parallelism and aggregation, never a different answer.

use driver::prelude::*;
use mcapi::types::DeliveryModel;
use symbolic::checker::{check_program, Verdict};

fn verdict_kind(v: &Verdict) -> VerdictKind {
    match v {
        Verdict::Safe => VerdictKind::Safe,
        Verdict::Violation(_) => VerdictKind::Violation,
        Verdict::Unknown(_) => VerdictKind::Unknown,
    }
}

#[test]
fn portfolio_agrees_with_sequential_checker_on_fig1_grid() {
    // fig1 and fig1-assert under every delivery model and both symbolic
    // engines: 12 scenarios, run on 4 workers. Session reuse is off so
    // every scenario runs the exact single-shot pipeline the sequential
    // checker runs (refinement counts compare one-to-one).
    let scenarios = cross(
        &[FamilySpec::Fig1, FamilySpec::Fig1Assert],
        &DeliveryModel::ALL,
        &[
            Engine::Symbolic(symbolic::checker::MatchGen::Precise),
            Engine::Symbolic(symbolic::checker::MatchGen::OverApprox),
        ],
    );
    let cfg = PortfolioConfig {
        threads: 4,
        mode: Mode::Sweep,
        session_reuse: false,
        ..Default::default()
    };
    let report = run_portfolio(&scenarios, &cfg);
    assert_eq!(report.outcomes.len(), scenarios.len());
    assert_eq!(report.skipped, 0, "sweep mode never skips");

    for (scenario, outcome) in scenarios.iter().zip(&report.outcomes) {
        let sequential = check_program(&scenario.spec.build(), &cfg.check_config(scenario));
        assert_eq!(
            outcome.verdict,
            verdict_kind(&sequential.verdict),
            "portfolio and sequential checker disagree on {}",
            scenario.name(),
        );
        assert_eq!(
            outcome.refinements,
            sequential.refinements,
            "refinement counts diverge on {}",
            scenario.name(),
        );
    }
}

#[test]
fn portfolio_paths_engine_agrees_with_sequential_path_checker() {
    use symbolic::paths::check_program_paths;
    let scenarios = cross(
        &[
            FamilySpec::Fig1Assert,
            FamilySpec::Branchy { rounds: 2 },
            FamilySpec::DelayGap { chain: 1 },
        ],
        &DeliveryModel::ALL,
        &[Engine::SymbolicPaths],
    );
    let cfg = PortfolioConfig {
        threads: 2,
        mode: Mode::Sweep,
        ..Default::default()
    };
    let report = run_portfolio(&scenarios, &cfg);
    for (scenario, outcome) in scenarios.iter().zip(&report.outcomes) {
        let sequential = check_program_paths(&scenario.spec.build(), &cfg.paths_config(scenario));
        assert_eq!(
            outcome.verdict,
            verdict_kind(&sequential.verdict),
            "portfolio and sequential path checker disagree on {}",
            scenario.name(),
        );
        assert_eq!(outcome.paths_explored, sequential.paths_explored);
        assert_eq!(outcome.paths_pruned, sequential.paths_pruned);
    }
}

#[test]
fn race_assert_violation_is_found_under_every_engine() {
    let scenarios = cross(
        &[FamilySpec::RaceAssert { width: 2 }],
        &[DeliveryModel::Unordered],
        &Engine::ALL,
    );
    let report = run_portfolio(
        &scenarios,
        &PortfolioConfig {
            threads: 3,
            ..Default::default()
        },
    );
    for o in &report.outcomes {
        assert_eq!(o.verdict, VerdictKind::Violation, "{}", o.scenario);
    }
}

#[test]
fn batched_sessions_match_per_scenario_verdicts_on_default_grid() {
    // The acceptance bar for session reuse: on the default scale-1
    // grid, batched shared-encoding checking answers exactly what
    // per-scenario from-scratch checking answers — while building strictly
    // fewer encodings than it runs scenarios.
    let scenarios = cross(&default_grid(1), &DeliveryModel::ALL, &Engine::ALL);
    assert_eq!(
        scenarios.len(),
        156,
        "the default grid (13 families incl. the loop workloads), four engines"
    );
    let batched = run_portfolio(
        &scenarios,
        &PortfolioConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let fresh = run_portfolio(
        &scenarios,
        &PortfolioConfig {
            threads: 2,
            session_reuse: false,
            ..Default::default()
        },
    );
    assert_eq!(batched.outcomes.len(), fresh.outcomes.len());
    for (b, f) in batched.outcomes.iter().zip(&fresh.outcomes) {
        assert_eq!(b.scenario, f.scenario);
        assert_eq!(
            b.verdict, f.verdict,
            "batched and per-scenario checking disagree on {}",
            b.scenario,
        );
    }

    // Reuse must actually happen: strictly fewer encodings than solved
    // symbolic scenarios, and some scenario explicitly flagged as shared.
    let solved_symbolic = batched.outcomes.iter().filter(|o| o.sat_vars > 0).count();
    assert!(
        batched.encodings_built < solved_symbolic,
        "{} encodings for {} solved symbolic scenarios — no sharing",
        batched.encodings_built,
        solved_symbolic,
    );
    assert!(batched.outcomes.iter().any(|o| o.reused_encoding));
    // Without reuse, every solved symbolic scenario encodes from scratch.
    let fresh_solved = fresh.outcomes.iter().filter(|o| o.sat_vars > 0).count();
    assert_eq!(fresh.encodings_built, fresh_solved);
    assert!(fresh.outcomes.iter().all(|o| !o.reused_encoding));

    // And the shared sessions must be cheaper, not just fewer: the
    // conflict+propagation total is the deterministic work counter the CI
    // perf gate tracks.
    let batched_work = batched.total_conflicts + batched.total_propagations;
    let fresh_work = fresh.total_conflicts + fresh.total_propagations;
    assert!(
        batched_work < fresh_work,
        "sharing did not reduce solver work: {batched_work} vs {fresh_work}"
    );
}

#[test]
fn json_report_of_a_real_run_roundtrips() {
    let scenarios = cross(
        &[FamilySpec::Fig1],
        &DeliveryModel::ALL,
        &[Engine::Explicit],
    );
    let report = run_portfolio(&scenarios, &PortfolioConfig::default());
    let back: PortfolioReport = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(back.outcomes.len(), report.outcomes.len());
    assert_eq!(back.safe, 3);
}
