//! # metrics — the uniform observability layer
//!
//! Every layer of the checker (the SAT/SMT core, the symbolic pipeline,
//! the explicit explorers, the portfolio driver) exposes its counters
//! through one [`Registry`] instead of hand-rolled struct printing. The
//! registry holds three metric kinds — monotone counters
//! ([`Registry::counter_add`]), point-in-time gauges
//! ([`Registry::gauge_set`]), and fixed-bucket histograms
//! ([`Registry::histogram_observe`]) — each keyed by a stable name plus
//! a sorted label set, and renders them in the Prometheus text
//! exposition format via [`Registry::render_prometheus`].
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Two registries fed the same samples render
//!    byte-identical text (families and label sets are `BTreeMap`-sorted,
//!    floats use Rust's shortest-roundtrip `Display`). The exposition is
//!    snapshot-tested downstream.
//! 2. **No globals.** A registry is a plain value the caller owns; the
//!    portfolio driver builds one per report. Nothing here is
//!    thread-shared, locked, or process-wide.
//! 3. **Stable names.** Each crate owns the metric names for its own
//!    counters (e.g. `smt::Stats::record`), so a rename is a visible API
//!    change rather than format drift.
//!
//! Naming follows Prometheus conventions: `mcapi_` prefix, `_total`
//! suffix on counters, base units (seconds) in histogram names.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The kind of a metric family (fixed at first registration).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Fixed-bucket cumulative histogram.
    Histogram,
}

impl Kind {
    fn tag(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A fixed-bucket cumulative histogram sample.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Upper bucket bounds (ascending; an implicit `+Inf` bucket follows).
    bounds: Vec<f64>,
    /// Observation counts per bucket (same length as `bounds`, plus the
    /// final `+Inf` slot).
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending: {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Merge pre-bucketed observations: `counts` has one slot per bound
    /// plus the trailing `+Inf` slot, exactly as a producer that
    /// bucketed at source (e.g. the SAT core's introspection counters)
    /// holds them.
    fn add_bucketed(&mut self, counts: &[u64], sum: f64) {
        assert_eq!(
            counts.len(),
            self.bounds.len() + 1,
            "pre-bucketed counts must cover every bound plus +Inf"
        );
        for (slot, c) in self.counts.iter_mut().zip(counts) {
            *slot += c;
        }
        self.sum += sum;
        self.count += counts.iter().sum::<u64>();
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// One sample's value.
#[derive(Clone, Debug)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// A metric family: one name, one kind, one help line, many label sets.
#[derive(Clone, Debug)]
struct Family {
    kind: Kind,
    help: String,
    /// Samples keyed by the rendered label set (`{a="b",c="d"}` or `""`).
    samples: BTreeMap<String, Value>,
}

/// The metric registry; see the crate docs.
#[derive(Default, Clone, Debug)]
pub struct Registry {
    families: BTreeMap<String, Family>,
}

/// Render a label slice as the exposition's `{key="value",...}` form
/// (empty string for no labels). Labels are sorted by key so the same set
/// always renders identically; values are escaped per the format.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out.push('}');
    out
}

/// Format an f64 the way the exposition expects (shortest roundtrip;
/// `Display` for f64 is deterministic in Rust).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn family(&mut self, name: &str, kind: Kind, help: &str) -> &mut Family {
        let fam = self.families.entry(name.to_string()).or_insert(Family {
            kind,
            help: help.to_string(),
            samples: BTreeMap::new(),
        });
        assert_eq!(
            fam.kind, kind,
            "metric {name} registered as {:?} and used as {kind:?}",
            fam.kind
        );
        fam
    }

    /// Add `delta` to the counter `name{labels}` (created at zero on first
    /// use). Counters are monotone by contract; there is no `sub`.
    pub fn counter_add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], delta: u64) {
        let key = render_labels(labels);
        let fam = self.family(name, Kind::Counter, help);
        match fam.samples.entry(key).or_insert(Value::Counter(0)) {
            Value::Counter(v) => *v += delta,
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Set the gauge `name{labels}` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let key = render_labels(labels);
        let fam = self.family(name, Kind::Gauge, help);
        fam.samples.insert(key, Value::Gauge(value));
    }

    /// Observe `value` in the histogram `name{labels}` with the given
    /// upper bucket `bounds` (ascending; `+Inf` is implicit). The bounds
    /// of an existing sample are fixed by its first observation.
    pub fn histogram_observe(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        let key = render_labels(labels);
        let fam = self.family(name, Kind::Histogram, help);
        match fam
            .samples
            .entry(key)
            .or_insert_with(|| Value::Histogram(Histogram::new(bounds)))
        {
            Value::Histogram(h) => h.observe(value),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Merge pre-bucketed observations into the histogram
    /// `name{labels}`: `counts` carries one slot per bound plus the
    /// trailing `+Inf` slot (`counts.len() == bounds.len() + 1`). Used
    /// by producers that bucket at source — the SAT core's sampled
    /// introspection histograms accumulate counts inside the solve loop
    /// and are merged here per scenario, without replaying every
    /// observation.
    pub fn histogram_add_bucketed(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        counts: &[u64],
        sum: f64,
    ) {
        let key = render_labels(labels);
        let fam = self.family(name, Kind::Histogram, help);
        match fam
            .samples
            .entry(key)
            .or_insert_with(|| Value::Histogram(Histogram::new(bounds)))
        {
            Value::Histogram(h) => h.add_bucketed(counts, sum),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// The current value of a counter sample, if it exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.families.get(name)?.samples.get(&render_labels(labels)) {
            Some(Value::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The current value of a gauge sample, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.families.get(name)?.samples.get(&render_labels(labels)) {
            Some(Value::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram sample, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.families.get(name)?.samples.get(&render_labels(labels)) {
            Some(Value::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Registered family names, sorted (for schema-stability tests).
    pub fn family_names(&self) -> Vec<&str> {
        self.families.keys().map(String::as_str).collect()
    }

    /// Render the whole registry in Prometheus text exposition format.
    /// Output is deterministic: families sorted by name, samples by label
    /// set, `# HELP` and `# TYPE` preceding each family.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", fam.help);
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.tag());
            for (labels, value) in &fam.samples {
                match value {
                    Value::Counter(v) => {
                        let _ = writeln!(out, "{name}{labels} {v}");
                    }
                    Value::Gauge(v) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_f64(*v));
                    }
                    Value::Histogram(h) => {
                        // Cumulative buckets: each `le` bound counts every
                        // observation at or below it.
                        let mut cum = 0u64;
                        let inner = labels.strip_prefix('{').and_then(|l| l.strip_suffix('}'));
                        let with_le = |le: &str| match inner {
                            Some(inner) if !inner.is_empty() => {
                                format!("{{{inner},le=\"{le}\"}}")
                            }
                            _ => format!("{{le=\"{le}\"}}"),
                        };
                        for (i, bound) in h.bounds.iter().enumerate() {
                            cum += h.counts[i];
                            let _ =
                                writeln!(out, "{name}_bucket{} {cum}", with_le(&fmt_f64(*bound)));
                        }
                        cum += h.counts[h.bounds.len()];
                        let _ = writeln!(out, "{name}_bucket{} {cum}", with_le("+Inf"));
                        let _ = writeln!(out, "{name}_sum{labels} {}", fmt_f64(h.sum));
                        let _ = writeln!(out, "{name}_count{labels} {}", h.count);
                    }
                }
            }
        }
        out
    }
}

/// Default wall-clock histogram buckets, in seconds (5ms .. 60s).
pub const TIME_BUCKETS_SECONDS: &[f64] = &[
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut r = Registry::new();
        r.counter_add("x_total", "x", &[("engine", "a")], 2);
        r.counter_add("x_total", "x", &[("engine", "a")], 3);
        r.counter_add("x_total", "x", &[("engine", "b")], 7);
        assert_eq!(r.counter_value("x_total", &[("engine", "a")]), Some(5));
        assert_eq!(r.counter_value("x_total", &[("engine", "b")]), Some(7));
        assert_eq!(r.counter_value("x_total", &[]), None);
    }

    #[test]
    fn labels_render_sorted_regardless_of_insertion_order() {
        assert_eq!(
            render_labels(&[("b", "2"), ("a", "1")]),
            "{a=\"1\",b=\"2\"}"
        );
        assert_eq!(render_labels(&[]), "");
    }

    #[test]
    fn gauge_last_write_wins() {
        let mut r = Registry::new();
        r.gauge_set("g", "g", &[], 1.0);
        r.gauge_set("g", "g", &[], 2.5);
        assert_eq!(r.gauge_value("g", &[]), Some(2.5));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_the_exposition() {
        let mut r = Registry::new();
        for v in [0.003, 0.03, 0.3, 3.0] {
            r.histogram_observe("h_seconds", "h", &[], &[0.01, 0.1, 1.0], v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("h_seconds_bucket{le=\"0.01\"} 1"), "{text}");
        assert!(text.contains("h_seconds_bucket{le=\"0.1\"} 2"), "{text}");
        assert!(text.contains("h_seconds_bucket{le=\"1\"} 3"), "{text}");
        assert!(text.contains("h_seconds_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("h_seconds_count 4"), "{text}");
        let h = r.histogram("h_seconds", &[]).unwrap();
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 3.333).abs() < 1e-9);
    }

    #[test]
    fn histogram_labels_compose_with_le() {
        let mut r = Registry::new();
        r.histogram_observe("h", "h", &[("engine", "x")], &[1.0], 0.5);
        let text = r.render_prometheus();
        assert!(text.contains("h_bucket{engine=\"x\",le=\"1\"} 1"), "{text}");
        assert!(text.contains("h_sum{engine=\"x\"} 0.5"), "{text}");
    }

    #[test]
    fn exposition_is_deterministic_and_sorted() {
        let build = |order_flip: bool| {
            let mut r = Registry::new();
            let (first, second) = if order_flip { ("b", "a") } else { ("a", "b") };
            r.counter_add("zz_total", "last", &[("k", first)], 1);
            r.counter_add("zz_total", "last", &[("k", second)], 1);
            r.gauge_set("aa", "first", &[], 3.0);
            r.render_prometheus()
        };
        let text = build(false);
        assert_eq!(text, build(true), "insertion order must not matter");
        let aa = text.find("# HELP aa").unwrap();
        let zz = text.find("# HELP zz_total").unwrap();
        assert!(aa < zz, "families sorted by name:\n{text}");
    }

    #[test]
    #[should_panic(expected = "registered as Counter")]
    fn kind_conflicts_are_programming_errors() {
        let mut r = Registry::new();
        r.counter_add("m", "m", &[], 1);
        r.gauge_set("m", "m", &[], 1.0);
    }

    /// Regression guard for the exposition edge: observations strictly
    /// above the last finite bound must land in the implicit `+Inf`
    /// slot, never be dropped, and the rendered `le="+Inf"` bucket must
    /// therefore always equal `_count`.
    #[test]
    fn observations_above_last_bound_land_in_inf_and_match_count() {
        let mut r = Registry::new();
        for v in [0.5, 1.0, 99.0, 1e12, f64::MAX] {
            r.histogram_observe("h", "h", &[], &[1.0, 2.0], v);
        }
        let h = r.histogram("h", &[]).unwrap();
        assert_eq!(h.count(), 5, "no observation may be dropped");
        let text = r.render_prometheus();
        assert!(text.contains("h_bucket{le=\"2\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("h_count 5"), "{text}");
    }

    /// The `+Inf` bucket equals `_count` for every sample in a
    /// multi-label family, whichever bucket the values hit.
    #[test]
    fn inf_bucket_always_equals_count() {
        let mut r = Registry::new();
        for (lbl, v) in [("a", 0.1), ("a", 5.0), ("b", 3.0), ("b", 0.2), ("b", 9.9)] {
            r.histogram_observe("h", "h", &[("k", lbl)], &[1.0], v);
        }
        let text = r.render_prometheus();
        for (lbl, n) in [("a", 2u64), ("b", 3u64)] {
            assert!(
                text.contains(&format!("h_bucket{{k=\"{lbl}\",le=\"+Inf\"}} {n}")),
                "{text}"
            );
            assert!(
                text.contains(&format!("h_count{{k=\"{lbl}\"}} {n}")),
                "{text}"
            );
        }
    }

    #[test]
    fn bucketed_merge_matches_equivalent_observes() {
        let bounds = &[1.0, 4.0];
        let mut by_observe = Registry::new();
        for v in [1.0, 3.0, 3.0, 8.0] {
            by_observe.histogram_observe("h", "h", &[], bounds, v);
        }
        let mut by_merge = Registry::new();
        // Same data pre-bucketed: one ≤1, two ≤4, one above the last
        // bound (the +Inf slot — it must not be dropped here either).
        by_merge.histogram_add_bucketed("h", "h", &[], bounds, &[1, 2, 1], 15.0);
        assert_eq!(by_observe.render_prometheus(), by_merge.render_prometheus());
    }

    #[test]
    #[should_panic(expected = "plus +Inf")]
    fn bucketed_merge_rejects_mismatched_slot_count() {
        let mut r = Registry::new();
        r.histogram_add_bucketed("h", "h", &[], &[1.0, 2.0], &[1, 2], 3.0);
    }
}
