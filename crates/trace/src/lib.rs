//! # trace — hierarchical span tracing with Chrome-trace export
//!
//! A dependency-free, thread-aware span recorder for answering *where
//! the time went inside one run*. The aggregate counters in `metrics`
//! say what happened; this crate records when, on which worker, and
//! nested under what.
//!
//! ## Model
//!
//! A [`Tracer`] is a cheap-to-clone handle (an `Arc` inside) owning a
//! set of **lanes**, one per participating thread. A thread opts in by
//! calling [`Tracer::install`] with a lane name (`"main"`,
//! `"worker-3"`); the returned [`LaneGuard`] keeps the lane current for
//! that thread until dropped. Code anywhere below then calls the free
//! function [`span`] (plus [`SpanGuard::arg`] for numeric payload) and
//! the span records itself into the current thread's lane when the
//! guard drops — classic RAII, so begin/end are balanced by
//! construction and children close before parents.
//!
//! ## Overhead model
//!
//! - **Disabled** (no lane installed on the thread — the default):
//!   [`span`] is one thread-local read returning an inert guard whose
//!   drop is a no-op. No allocation, no locking, no timestamps.
//! - **Enabled:** each span takes two `Instant` reads and one push into
//!   a lane-local buffer **preallocated to its capacity**, so the hot
//!   path never allocates. The buffer is bounded: once a lane is full,
//!   further spans are counted in `dropped` and discarded (newest-drop,
//!   so the recorded prefix keeps its structure). The per-lane `Mutex`
//!   is uncontended by design — only the owning thread writes; other
//!   threads touch it only at export time.
//!
//! ## Export
//!
//! [`Tracer::chrome_trace`] renders the [Chrome trace-event JSON
//! format] loadable in `chrome://tracing` or [Perfetto]
//! (<https://ui.perfetto.dev> → *Open trace file*): one `"M"`
//! `thread_name` metadata record per lane plus one `"X"` complete event
//! per span. Lanes are sorted by name and events by begin time, so the
//! export is deterministic for a given recording. The top-level
//! `schemaVersion` key is pinned at [`TRACE_SCHEMA_VERSION`] and the
//! shape is snapshot-tested ([`Tracer::render_normalized`] zeroes the
//! timestamps so the snapshot is byte-stable).
//!
//! [Chrome trace-event JSON format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

#![warn(missing_docs)]

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version of the exported trace shape. Bump when the JSON layout
/// changes incompatibly (key renames, event-type changes).
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Default per-lane span capacity (spans beyond this are dropped and
/// counted, keeping tracing overhead bounded on pathological runs).
pub const DEFAULT_LANE_CAPACITY: usize = 65_536;

/// Maximum number of numeric args one span can carry; extra
/// [`SpanGuard::arg`] calls are ignored (fixed-size storage keeps the
/// hot path allocation-free).
pub const MAX_SPAN_ARGS: usize = 8;

/// One recorded span as written into a lane. Fixed-size apart from the
/// name, which is `Cow::Borrowed` (no allocation) for the hot-path
/// [`span`] entry point and owned only for coarse [`span_dyn`] spans.
#[derive(Clone)]
struct RawEvent {
    name: Cow<'static, str>,
    ts_us: u64,
    dur_us: u64,
    depth: u32,
    args: [(&'static str, u64); MAX_SPAN_ARGS],
    nargs: u8,
}

/// A recorded span, as exposed by [`Tracer::lanes`] for tests and
/// programmatic consumers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (a code location for [`span`] sites, a computed label
    /// for [`span_dyn`] sites).
    pub name: String,
    /// Begin time, µs since the tracer was created.
    pub ts_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Nesting depth at begin time (0 = top of the lane).
    pub depth: u32,
    /// Record order within the lane (spans record at *end* time, so
    /// children carry smaller `seq` than their parent).
    pub seq: u64,
    /// Numeric span arguments, in attachment order.
    pub args: Vec<(&'static str, u64)>,
}

/// A lane's full recording, snapshotted by [`Tracer::lanes`].
#[derive(Clone, Debug)]
pub struct LaneSnapshot {
    /// Lane (thread) name as passed to [`Tracer::install`].
    pub name: String,
    /// Recorded spans in record (end-time) order.
    pub events: Vec<SpanEvent>,
    /// Spans discarded because the lane was full.
    pub dropped: u64,
}

struct LaneBuf {
    events: Vec<RawEvent>,
    dropped: u64,
}

struct Lane {
    name: String,
    buf: Mutex<LaneBuf>,
}

struct Inner {
    start: Instant,
    capacity: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
}

/// The span recorder handle; see the crate docs. Clones share the same
/// underlying recording.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.inner.capacity)
            .field("lanes", &self.inner.lanes.lock().unwrap().len())
            .finish()
    }
}

/// The thread's currently installed lane (plus its live nesting depth,
/// shared with in-flight guards via `Rc` so a guard outliving the
/// install still unwinds the right counter).
struct ActiveLane {
    lane: Arc<Lane>,
    start: Instant,
    depth: Rc<Cell<u32>>,
}

thread_local! {
    static CURRENT: RefCell<Vec<ActiveLane>> = const { RefCell::new(Vec::new()) };
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with the default per-lane capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A tracer whose lanes each hold at most `per_lane` spans.
    pub fn with_capacity(per_lane: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                start: Instant::now(),
                capacity: per_lane.max(1),
                lanes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Make this tracer current on the calling thread under `lane_name`.
    /// Every [`span`] opened on this thread records into that lane until
    /// the returned guard drops. Installs stack: a nested install
    /// shadows the outer lane and the outer one becomes current again
    /// when the inner guard drops.
    pub fn install(&self, lane_name: &str) -> LaneGuard {
        let lane = Arc::new(Lane {
            name: lane_name.to_string(),
            buf: Mutex::new(LaneBuf {
                events: Vec::with_capacity(self.inner.capacity),
                dropped: 0,
            }),
        });
        self.inner.lanes.lock().unwrap().push(Arc::clone(&lane));
        CURRENT.with(|c| {
            c.borrow_mut().push(ActiveLane {
                lane,
                start: self.inner.start,
                depth: Rc::new(Cell::new(0)),
            })
        });
        LaneGuard {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Per-lane snapshots (sorted by lane name) for tests and
    /// programmatic consumers.
    pub fn lanes(&self) -> Vec<LaneSnapshot> {
        let mut lanes: Vec<LaneSnapshot> = self
            .inner
            .lanes
            .lock()
            .unwrap()
            .iter()
            .map(|lane| {
                let buf = lane.buf.lock().unwrap();
                LaneSnapshot {
                    name: lane.name.clone(),
                    events: buf
                        .events
                        .iter()
                        .enumerate()
                        .map(|(seq, e)| SpanEvent {
                            name: e.name.clone().into_owned(),
                            ts_us: e.ts_us,
                            dur_us: e.dur_us,
                            depth: e.depth,
                            seq: seq as u64,
                            args: e.args[..e.nargs as usize].to_vec(),
                        })
                        .collect(),
                    dropped: buf.dropped,
                }
            })
            .collect();
        lanes.sort_by(|a, b| a.name.cmp(&b.name));
        lanes
    }

    /// Total spans recorded across all lanes.
    pub fn span_count(&self) -> usize {
        self.lanes().iter().map(|l| l.events.len()).sum()
    }

    /// Total spans dropped across all lanes (lane buffers full).
    pub fn dropped_count(&self) -> u64 {
        self.lanes().iter().map(|l| l.dropped).sum()
    }

    /// Render the recording as Chrome trace-event JSON (see the crate
    /// docs). Lanes sort by name; within a lane, events sort by begin
    /// time (record order breaking ties), so the export is a pure
    /// function of the recording.
    pub fn chrome_trace(&self) -> String {
        self.render(false)
    }

    /// [`Tracer::chrome_trace`] with every `ts`/`dur` zeroed and events
    /// kept in record order — a byte-stable shape for snapshot tests.
    pub fn render_normalized(&self) -> String {
        self.render(true)
    }

    fn render(&self, normalized: bool) -> String {
        let lanes = self.lanes();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schemaVersion\":{TRACE_SCHEMA_VERSION},\"displayTimeUnit\":\"ms\",\
             \"droppedEvents\":{},\"traceEvents\":[",
            self.dropped_count()
        );
        let mut first = true;
        let mut emit = |out: &mut String, ev: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&ev);
        };
        for (i, lane) in lanes.iter().enumerate() {
            let tid = i + 1;
            emit(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape_json(&lane.name)
                ),
            );
        }
        for (i, lane) in lanes.iter().enumerate() {
            let tid = i + 1;
            let mut events: Vec<&SpanEvent> = lane.events.iter().collect();
            if !normalized {
                // Begin-time order with longest-first ties so parents
                // precede their children in the file.
                events.sort_by_key(|e| (e.ts_us, std::cmp::Reverse(e.dur_us), e.seq));
            }
            for e in events {
                let (ts, dur) = if normalized {
                    (0, 0)
                } else {
                    (e.ts_us, e.dur_us)
                };
                let mut args = String::new();
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        args.push(',');
                    }
                    let _ = write!(args, "\"{}\":{v}", escape_json(k));
                }
                emit(
                    &mut out,
                    format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                         \"name\":\"{}\",\"args\":{{{args}}}}}",
                        escape_json(&e.name)
                    ),
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Keeps a lane installed on the current thread; dropping it makes the
/// previously installed lane (if any) current again.
pub struct LaneGuard {
    // Lanes are thread-local state; moving the guard across threads
    // would unwind the wrong thread's stack.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Open a span named `name` on the current thread. Records into the
/// installed lane when the returned guard drops; a no-op (and
/// allocation-free) when no lane is installed.
pub fn span(name: &'static str) -> SpanGuard {
    span_impl(Cow::Borrowed(name))
}

/// [`span`] with a computed name (e.g. a scenario label). Allocates for
/// the name, so reserve it for coarse-grained spans — per-scenario, not
/// per-solver-query.
pub fn span_dyn(name: impl Into<String>) -> SpanGuard {
    span_impl(Cow::Owned(name.into()))
}

fn span_impl(name: Cow<'static, str>) -> SpanGuard {
    let active = CURRENT.with(|c| {
        c.borrow().last().map(|a| {
            let depth = a.depth.get();
            a.depth.set(depth + 1);
            LiveSpan {
                lane: Arc::clone(&a.lane),
                tracer_start: a.start,
                begin: Instant::now(),
                depth_counter: Rc::clone(&a.depth),
                depth,
            }
        })
    });
    SpanGuard {
        live: active,
        event: RawEvent {
            name,
            ts_us: 0,
            dur_us: 0,
            depth: 0,
            args: [("", 0); MAX_SPAN_ARGS],
            nargs: 0,
        },
    }
}

struct LiveSpan {
    lane: Arc<Lane>,
    tracer_start: Instant,
    begin: Instant,
    depth_counter: Rc<Cell<u32>>,
    depth: u32,
}

/// RAII span handle returned by [`span`]; the span's duration is the
/// guard's lifetime.
pub struct SpanGuard {
    live: Option<LiveSpan>,
    event: RawEvent,
}

impl SpanGuard {
    /// Attach a numeric argument (shown under the span in the trace
    /// viewer). At most [`MAX_SPAN_ARGS`] are kept; extras are ignored.
    pub fn arg(&mut self, key: &'static str, value: u64) -> &mut SpanGuard {
        if self.live.is_some() && (self.event.nargs as usize) < MAX_SPAN_ARGS {
            self.event.args[self.event.nargs as usize] = (key, value);
            self.event.nargs += 1;
        }
        self
    }

    /// Whether this span is actually recording (a lane is installed).
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        live.depth_counter
            .set(live.depth_counter.get().saturating_sub(1));
        let mut ev = std::mem::replace(
            &mut self.event,
            RawEvent {
                name: Cow::Borrowed(""),
                ts_us: 0,
                dur_us: 0,
                depth: 0,
                args: [("", 0); MAX_SPAN_ARGS],
                nargs: 0,
            },
        );
        ev.ts_us = live.begin.duration_since(live.tracer_start).as_micros() as u64;
        ev.dur_us = live.begin.elapsed().as_micros() as u64;
        ev.depth = live.depth;
        let mut buf = live.lane.buf.lock().unwrap();
        if buf.events.len() < buf.events.capacity() {
            buf.events.push(ev);
        } else {
            buf.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_without_installed_lane_is_inert() {
        let mut s = span("orphan");
        s.arg("k", 1);
        assert!(!s.is_recording());
        drop(s);
        // Nothing to assert against — the point is it neither panics
        // nor records anywhere.
    }

    #[test]
    fn spans_record_with_depth_and_args() {
        let tracer = Tracer::new();
        {
            let _lane = tracer.install("main");
            let _outer = span("outer");
            {
                let mut inner = span("inner");
                inner.arg("conflicts", 3).arg("restarts", 1);
            }
        }
        let lanes = tracer.lanes();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].name, "main");
        let evs = &lanes[0].events;
        assert_eq!(evs.len(), 2);
        // Children record before parents (end-time order).
        assert_eq!(evs[0].name, "inner");
        assert_eq!(evs[0].depth, 1);
        assert_eq!(evs[0].args, vec![("conflicts", 3), ("restarts", 1)]);
        assert_eq!(evs[1].name, "outer");
        assert_eq!(evs[1].depth, 0);
        // The child interval lies inside the parent interval (±1 µs on
        // the end bound: ts and dur are floored independently).
        assert!(evs[0].ts_us >= evs[1].ts_us);
        assert!(evs[0].ts_us + evs[0].dur_us <= evs[1].ts_us + evs[1].dur_us + 1);
    }

    #[test]
    fn lane_capacity_drops_newest_and_counts() {
        let tracer = Tracer::with_capacity(2);
        {
            let _lane = tracer.install("main");
            for _ in 0..5 {
                let _s = span("s");
            }
        }
        let lanes = tracer.lanes();
        assert_eq!(lanes[0].events.len(), 2);
        assert_eq!(lanes[0].dropped, 3);
        assert_eq!(tracer.dropped_count(), 3);
    }

    #[test]
    fn installs_stack_and_restore_the_outer_lane() {
        let tracer = Tracer::new();
        let _outer = tracer.install("outer");
        {
            let _inner = tracer.install("inner");
            let _s = span("on-inner");
        }
        let _s = span("on-outer");
        drop(_s);
        let lanes = tracer.lanes();
        let by_name = |n: &str| lanes.iter().find(|l| l.name == n).unwrap();
        assert_eq!(by_name("inner").events[0].name, "on-inner");
        assert_eq!(by_name("outer").events[0].name, "on-outer");
    }

    #[test]
    fn chrome_trace_shape_is_pinned() {
        let tracer = Tracer::new();
        {
            let _lane = tracer.install("main");
            let mut s = span("solve");
            s.arg("conflicts", 7);
        }
        let normalized = tracer.render_normalized();
        let expected = concat!(
            "{\"schemaVersion\":1,\"displayTimeUnit\":\"ms\",\"droppedEvents\":0,\"traceEvents\":[\n",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"main\"}},\n",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":0,\"name\":\"solve\",\"args\":{\"conflicts\":7}}\n",
            "]}\n",
        );
        assert_eq!(
            normalized, expected,
            "chrome trace shape changed; bump TRACE_SCHEMA_VERSION if intentional"
        );
        // The timed render carries the same structure (modulo ts/dur).
        let timed = tracer.chrome_trace();
        assert!(timed.contains("\"name\":\"solve\""));
        assert!(timed.starts_with("{\"schemaVersion\":1,"));
    }

    #[test]
    fn multi_lane_export_sorts_lanes_by_name() {
        let tracer = Tracer::new();
        std::thread::scope(|scope| {
            for name in ["worker-1", "worker-0"] {
                let t = tracer.clone();
                scope.spawn(move || {
                    let _lane = t.install(name);
                    let _s = span("job");
                });
            }
        });
        let lanes = tracer.lanes();
        assert_eq!(lanes[0].name, "worker-0");
        assert_eq!(lanes[1].name, "worker-1");
        let json = tracer.chrome_trace();
        let w0 = json.find("worker-0").unwrap();
        let w1 = json.find("worker-1").unwrap();
        assert!(w0 < w1, "lane metadata must sort by name:\n{json}");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
