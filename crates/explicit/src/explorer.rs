//! Breadth-first state-graph exploration with hashing.
//!
//! States are [`mcapi::state::SysState`] values, optionally annotated with
//! the matching history (which receive consumed which message) so that the
//! set of distinct complete matchings — the paper's behaviour-coverage
//! metric (Fig. 4) — can be read off the terminal states. Annotation makes
//! the reachable graph larger (states that differ only in history stop
//! merging); turn it off for pure state-count benchmarks.

use crate::stats::{ExploreResult, Matching, RecvKey};
use mcapi::canon::{independent, summarize, ActionSummary};
use mcapi::program::Program;
use mcapi::state::{Action, SysState};
use mcapi::types::DeliveryModel;
use std::collections::{HashSet, VecDeque};

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    pub model: DeliveryModel,
    /// Record complete matchings at terminal states.
    pub track_matchings: bool,
    /// Stop after visiting this many states (`truncated` set in the result).
    pub max_states: usize,
    /// Stop at the first assertion violation.
    pub stop_at_first_violation: bool,
    /// Prune successors that swap an adjacent independent pair out of the
    /// thread-major order (the BFS-safe fragment of the Mazurkiewicz
    /// normal form; see [`mcapi::canon`]). Sound because the condition is
    /// a function of node content only — the incoming action joins the
    /// node identity — and the lexicographically least word of every trace
    /// class is adjacent-normal at every prefix, so every class keeps a
    /// surviving linearisation. Off by default: refining node identity
    /// can cost states on heavily-merging graphs; the portfolio driver
    /// wires it to its `canonical` switch.
    pub use_canonical: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            model: DeliveryModel::Unordered,
            track_matchings: true,
            max_states: 1_000_000,
            stop_at_first_violation: false,
            use_canonical: false,
        }
    }
}

impl ExploreConfig {
    pub fn with_model(model: DeliveryModel) -> Self {
        ExploreConfig {
            model,
            ..Default::default()
        }
    }
}

/// A search node: system state plus (optional) matching history.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub(crate) sys: SysState,
    /// Sorted matching history (present only when tracking matchings).
    pub(crate) matching: Matching,
    /// Receives completed per thread so far (for RecvKey indices).
    pub(crate) recv_counts: Vec<u16>,
    /// The action (and its footprint) that produced this node — part of
    /// the node identity only under [`ExploreConfig::use_canonical`],
    /// always `None` otherwise so the default graph is unchanged.
    pub(crate) last: Option<(Action, ActionSummary)>,
}

impl Node {
    pub(crate) fn initial(program: &Program) -> Node {
        Node {
            sys: SysState::initial(program),
            matching: Vec::new(),
            recv_counts: vec![0; program.threads.len()],
            last: None,
        }
    }

    /// Successor node for `action`, updating matching bookkeeping.
    /// `last` is the `(action, summary)` pair to stamp into the successor
    /// (canonical mode only; `None` keeps node identity purely semantic).
    pub(crate) fn successor(
        &self,
        program: &Program,
        action: mcapi::state::Action,
        model: DeliveryModel,
        track_matchings: bool,
        last: Option<(Action, ActionSummary)>,
    ) -> Node {
        let (next_sys, _events) = self.sys.apply(program, action, model);
        let mut next = Node {
            sys: next_sys,
            matching: self.matching.clone(),
            recv_counts: self.recv_counts.clone(),
            last,
        };
        if let Some(msg) = action.message() {
            let t = action.thread();
            let key = RecvKey::new(t, next.recv_counts[t] as usize);
            next.recv_counts[t] += 1;
            if track_matchings {
                let pos = next.matching.partition_point(|(k, _)| *k < key);
                next.matching.insert(pos, (key, msg));
            }
        }
        next
    }
}

/// BFS over the state graph.
pub struct GraphExplorer<'a> {
    program: &'a Program,
    config: ExploreConfig,
}

impl<'a> GraphExplorer<'a> {
    pub fn new(program: &'a Program, config: ExploreConfig) -> Self {
        GraphExplorer { program, config }
    }

    /// Run the exploration to fixpoint (or a limit).
    pub fn explore(&self) -> ExploreResult {
        let mut result = ExploreResult::default();
        let init = Node::initial(self.program);
        let mut visited: HashSet<Node> = HashSet::new();
        let mut queue: VecDeque<Node> = VecDeque::new();
        visited.insert(init.clone());
        queue.push_back(init);

        // Frontier-generation accounting for tracing: `in_gen` counts
        // nodes left in the current BFS level; when it hits zero the
        // popped node starts the next level (the rest of which is
        // exactly the queue's current contents). Pure bookkeeping — the
        // iteration order is untouched.
        let mut generation: u64 = 0;
        let mut in_gen: usize = 1;
        let mut gen_states: u64 = 0;
        let mut gen_span = trace::span("explicit.generation");

        while let Some(node) = queue.pop_front() {
            if in_gen == 0 {
                gen_span
                    .arg("generation", generation)
                    .arg("states", gen_states);
                drop(gen_span);
                generation += 1;
                gen_states = 0;
                gen_span = trace::span("explicit.generation");
                in_gen = queue.len() + 1;
            }
            in_gen -= 1;
            gen_states += 1;
            result.states += 1;
            if result.states >= self.config.max_states {
                result.truncated = true;
                break;
            }
            let actions = node.sys.enabled_actions(self.program, self.config.model);
            if actions.is_empty() {
                self.record_terminal(&node, &mut result);
                if self.config.stop_at_first_violation && result.found_violation() {
                    break;
                }
                continue;
            }
            for action in actions {
                // BFS-safe canonical fragment: drop the successor when it
                // swaps an adjacent independent pair out of thread-major
                // order — the smaller-first ordering of the same pair
                // reaches an equivalent node that stays in the frontier.
                let last = if self.config.use_canonical {
                    let summary = summarize(self.program, &node.sys, action);
                    if let Some((b, sb)) = &node.last {
                        if independent(self.config.model, &summary, sb) && action < *b {
                            result.canonical_skipped += 1;
                            continue;
                        }
                    }
                    Some((action, summary))
                } else {
                    None
                };
                let next = node.successor(
                    self.program,
                    action,
                    self.config.model,
                    self.config.track_matchings,
                    last,
                );
                if let Some(v) = &next.sys.violation {
                    result.push_violation(v.clone());
                    if self.config.stop_at_first_violation {
                        result.transitions += 1;
                        return result;
                    }
                }
                result.transitions += 1;
                if visited.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        gen_span
            .arg("generation", generation)
            .arg("states", gen_states);
        result
    }

    fn record_terminal(&self, node: &Node, result: &mut ExploreResult) {
        if let Some(v) = &node.sys.violation {
            result.push_violation(v.clone());
            return;
        }
        if node.sys.all_done(self.program) {
            result.complete_terminals += 1;
            if self.config.track_matchings {
                result.matchings.insert(node.matching.clone());
            }
        } else {
            result.deadlocks += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcapi::builder::ProgramBuilder;
    use mcapi::expr::{Cond, Expr};
    use mcapi::types::CmpOp;

    /// The paper's Fig. 1 program.
    fn fig1() -> Program {
        let mut b = ProgramBuilder::new("fig1");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        b.recv(t0, 0); // A
        b.recv(t0, 0); // B
        b.recv(t1, 0); // C
        b.send_const(t1, t0, 0, 100); // X
        b.send_const(t2, t0, 0, 200); // Y
        b.send_const(t2, t1, 0, 300); // Z
        b.build().unwrap()
    }

    #[test]
    fn fig1_unordered_finds_both_pairings() {
        let p = fig1();
        let r =
            GraphExplorer::new(&p, ExploreConfig::with_model(DeliveryModel::Unordered)).explore();
        assert!(!r.truncated);
        assert_eq!(r.deadlocks, 0);
        assert!(r.violations.is_empty());
        // Fig. 4 of the paper: exactly two complete pairings.
        assert_eq!(r.matchings.len(), 2, "{}", r.render_matchings());
    }

    #[test]
    fn fig1_zero_delay_finds_only_one_pairing() {
        let p = fig1();
        let r =
            GraphExplorer::new(&p, ExploreConfig::with_model(DeliveryModel::ZeroDelay)).explore();
        // The MCC model misses Fig. 4b.
        assert_eq!(r.matchings.len(), 1, "{}", r.render_matchings());
    }

    #[test]
    fn fig1_pairwise_fifo_still_finds_both() {
        // The racing sends come from different threads, so per-pair FIFO
        // does not restrict the race: both pairings remain.
        let p = fig1();
        let r = GraphExplorer::new(&p, ExploreConfig::with_model(DeliveryModel::PairwiseFifo))
            .explore();
        assert_eq!(r.matchings.len(), 2, "{}", r.render_matchings());
    }

    #[test]
    fn deadlock_counted() {
        let mut b = ProgramBuilder::new("dl");
        let t0 = b.thread("t0");
        b.recv(t0, 0);
        let p = b.build().unwrap();
        let r = GraphExplorer::new(&p, ExploreConfig::default()).explore();
        assert_eq!(r.deadlocks, 1);
        assert_eq!(r.complete_terminals, 0);
    }

    #[test]
    fn violation_found_only_under_delay_model() {
        // t0: recv a; recv b; assert(a == 1).
        // t1 sends 1 then t2 sends 2 — but t1's send happens after it
        // receives a kick from t2, so in send order t2's 2 comes first.
        // ZeroDelay: recv a always gets 2 -> assertion always fails?? No:
        // build it so the violating behaviour needs a delayed message.
        let mut b = ProgramBuilder::new("delay-bug");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let a = b.recv(t0, 0);
        let _b2 = b.recv(t0, 0);
        b.assert_cond(
            t0,
            Cond::cmp(CmpOp::Eq, Expr::Var(a), Expr::Const(1)),
            "first must be 1",
        );
        // t1 gets a kick from t2, then sends 1 to t0.
        let _k = b.recv(t1, 0);
        b.send_const(t1, t0, 0, 1);
        // t2 kicks t1 first, then sends 2 to t0.
        b.send_const(t2, t1, 0, 99);
        b.send_const(t2, t0, 0, 2);
        let p = b.build().unwrap();

        // Under ZeroDelay: t2's "2" is sent before t1's "1" in every
        // interleaving (t1 waits for the kick which t2 sends before "2"?
        // No — t2 sends the kick first, then 2; t1 may send 1 before or
        // after t2 sends 2. Both assertion outcomes are reachable, so a
        // violation exists under both models; what differs is coverage of
        // pairings, tested via matchings above.)
        let gt =
            GraphExplorer::new(&p, ExploreConfig::with_model(DeliveryModel::Unordered)).explore();
        assert!(gt.found_violation());
    }

    #[test]
    fn stop_at_first_violation_short_circuits() {
        let mut b = ProgramBuilder::new("bomb");
        let t0 = b.thread("t0");
        b.assert_cond(t0, Cond::False, "always");
        let p = b.build().unwrap();
        let cfg = ExploreConfig {
            stop_at_first_violation: true,
            ..Default::default()
        };
        let r = GraphExplorer::new(&p, cfg).explore();
        assert!(r.found_violation());
        assert!(r.states <= 2);
    }

    #[test]
    fn max_states_truncates() {
        let p = fig1();
        let cfg = ExploreConfig {
            max_states: 3,
            ..Default::default()
        };
        let r = GraphExplorer::new(&p, cfg).explore();
        assert!(r.truncated);
    }

    #[test]
    fn matchings_off_reduces_state_count() {
        let p = fig1();
        let with = ExploreConfig {
            track_matchings: true,
            ..Default::default()
        };
        let without = ExploreConfig {
            track_matchings: false,
            ..Default::default()
        };
        let rw = GraphExplorer::new(&p, with).explore();
        let ro = GraphExplorer::new(&p, without).explore();
        assert!(ro.states <= rw.states);
        assert!(ro.matchings.is_empty());
    }

    #[test]
    fn canonical_bfs_preserves_matchings_and_verdicts() {
        let p = fig1();
        for model in DeliveryModel::ALL {
            let plain = GraphExplorer::new(&p, ExploreConfig::with_model(model)).explore();
            let canon = GraphExplorer::new(
                &p,
                ExploreConfig {
                    use_canonical: true,
                    ..ExploreConfig::with_model(model)
                },
            )
            .explore();
            assert_eq!(plain.matchings, canon.matchings, "model {model}");
            assert_eq!(plain.violations, canon.violations, "model {model}");
            assert_eq!(plain.deadlocks > 0, canon.deadlocks > 0, "model {model}");
            if model != DeliveryModel::ZeroDelay {
                assert!(canon.canonical_skipped > 0, "model {model}");
            }
        }
    }

    #[test]
    fn zero_delay_explores_fewer_or_equal_matchings() {
        let p = fig1();
        let un =
            GraphExplorer::new(&p, ExploreConfig::with_model(DeliveryModel::Unordered)).explore();
        let zd =
            GraphExplorer::new(&p, ExploreConfig::with_model(DeliveryModel::ZeroDelay)).explore();
        assert!(zd.matchings.is_subset(&un.matchings));
    }
}
