//! Stateless execution enumeration with sleep-set partial-order reduction.
//!
//! This is the Inspect-style baseline the paper situates itself against
//! (via Fusion's comparison with Inspect): depth-first enumeration of
//! executions — no state hashing — pruned with Godefroid's sleep sets.
//! Sleep sets preserve at least one linearisation of every Mazurkiewicz
//! trace, so safety verdicts (assertion violations, deadlocks) and the set
//! of complete matchings are identical to the naive enumeration, at a
//! fraction of the executions.
//!
//! The independence relation is the shared one in [`mcapi::canon`]
//! (extracted from this module): two actions commute iff they belong to
//! different threads and do not touch a common endpoint (a send and a
//! receive on the same endpoint, or two receives on the same endpoint, are
//! dependent; under `ZeroDelay` two sends to the same endpoint are also
//! dependent because global send order is semantic there; under
//! `Unordered` they commute).
//!
//! The same relation powers an optional *stronger* prune that composes
//! with sleep sets: [`SleepConfig::use_canonical`] restricts the
//! enumeration to the lexicographic normal form of each Mazurkiewicz trace
//! class ([`mcapi::canon::CanonTracker`]). Because the DFS explores
//! actions in ascending order, every schedule that takes a sleeping action
//! also has a smaller independent sibling explored earlier — i.e. it is
//! not in normal form — so the canonical survivors are a subset of the
//! sleep-set survivors (asserted by a test below), with exactly one
//! execution left per class.

use crate::stats::{ExploreResult, Matching, RecvKey};
use mcapi::canon::{independent, summarize, CanonTracker};
use mcapi::program::Program;
use mcapi::state::{Action, SysState};
use mcapi::types::DeliveryModel;

/// Configuration for the stateless search.
#[derive(Clone, Copy, Debug)]
pub struct SleepConfig {
    pub model: DeliveryModel,
    /// Disable the sleep-set pruning (naive full enumeration baseline).
    pub use_sleep_sets: bool,
    /// Keep only the canonical (lexicographically least) linearisation of
    /// each trace class — a stronger prune than sleep sets that composes
    /// with them.
    pub use_canonical: bool,
    /// Abort after this many executions.
    pub max_executions: usize,
    pub track_matchings: bool,
    /// Record every complete execution's schedule word in
    /// [`ExploreResult::schedules`] (test instrumentation).
    pub track_schedules: bool,
}

impl Default for SleepConfig {
    fn default() -> Self {
        SleepConfig {
            model: DeliveryModel::Unordered,
            use_sleep_sets: true,
            use_canonical: false,
            max_executions: 10_000_000,
            track_matchings: true,
            track_schedules: false,
        }
    }
}

/// Stateless DFS with sleep sets.
pub struct SleepSetExplorer<'a> {
    program: &'a Program,
    config: SleepConfig,
}

impl<'a> SleepSetExplorer<'a> {
    pub fn new(program: &'a Program, config: SleepConfig) -> Self {
        SleepSetExplorer { program, config }
    }

    /// Conservative independence check (actions evaluated at state `s`),
    /// delegating to the shared relation in [`mcapi::canon`].
    fn independent(&self, s: &SysState, a: Action, b: Action) -> bool {
        independent(
            self.config.model,
            &summarize(self.program, s, a),
            &summarize(self.program, s, b),
        )
    }

    /// Run the enumeration.
    pub fn explore(&self) -> ExploreResult {
        let mut result = ExploreResult::default();
        let init = SysState::initial(self.program);
        let recv_counts = vec![0u16; self.program.threads.len()];
        let mut canon = CanonTracker::new(self.config.model);
        let mut word = Vec::new();
        self.dfs(
            &init,
            &[],
            &recv_counts,
            Vec::new(),
            &mut canon,
            &mut word,
            &mut result,
        );
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        state: &SysState,
        sleep: &[Action],
        recv_counts: &[u16],
        matching: Matching,
        canon: &mut CanonTracker,
        word: &mut Vec<Action>,
        result: &mut ExploreResult,
    ) {
        if result.complete_terminals + result.deadlocks + result.violations.len()
            >= self.config.max_executions
        {
            result.truncated = true;
            return;
        }
        result.states += 1;
        let enabled = state.enabled_actions(self.program, self.config.model);
        if enabled.is_empty() {
            if let Some(v) = &state.violation {
                result.push_violation(v.clone());
            } else if state.all_done(self.program) {
                result.complete_terminals += 1;
                if self.config.track_matchings {
                    result.matchings.insert(matching);
                }
                if self.config.track_schedules {
                    result.schedules.insert(word.clone());
                }
            } else {
                result.deadlocks += 1;
            }
            return;
        }
        let mut explored: Vec<Action> = Vec::new();
        for &action in &enabled {
            if self.config.use_sleep_sets && sleep.contains(&action) {
                continue;
            }
            // The canonical prune composes after the sleep check (both are
            // word-based; either alone is sound, together they keep
            // exactly the normal-form survivors of the sleep search).
            let summary = if self.config.use_canonical {
                let s = summarize(self.program, state, action);
                if !canon.is_canonical_extension(action, &s) {
                    result.canonical_skipped += 1;
                    continue;
                }
                Some(s)
            } else {
                None
            };
            let (next, _ev) = state.apply(self.program, action, self.config.model);
            result.transitions += 1;
            // Child sleep set: surviving members are those independent of
            // the chosen action.
            let child_sleep: Vec<Action> = if self.config.use_sleep_sets {
                sleep
                    .iter()
                    .chain(explored.iter())
                    .copied()
                    .filter(|&b| self.independent(state, action, b))
                    .collect()
            } else {
                Vec::new()
            };
            let mut counts = recv_counts.to_vec();
            let mut m = matching.clone();
            if let Some(msg) = action.message() {
                let t = action.thread();
                let key = RecvKey::new(t, counts[t] as usize);
                counts[t] += 1;
                if self.config.track_matchings {
                    let pos = m.partition_point(|(k, _)| *k < key);
                    m.insert(pos, (key, msg));
                }
            }
            if let Some(s) = summary {
                canon.push(action, s);
            }
            word.push(action);
            self.dfs(&next, &child_sleep, &counts, m, canon, word, result);
            word.pop();
            if summary.is_some() {
                canon.pop();
            }
            explored.push(action);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{ExploreConfig, GraphExplorer};
    use mcapi::builder::ProgramBuilder;

    fn fig1() -> Program {
        let mut b = ProgramBuilder::new("fig1");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        b.recv(t0, 0);
        b.recv(t0, 0);
        b.recv(t1, 0);
        b.send_const(t1, t0, 0, 100);
        b.send_const(t2, t0, 0, 200);
        b.send_const(t2, t1, 0, 300);
        b.build().unwrap()
    }

    fn naive(p: &Program, model: DeliveryModel) -> ExploreResult {
        let cfg = SleepConfig {
            model,
            use_sleep_sets: false,
            ..Default::default()
        };
        SleepSetExplorer::new(p, cfg).explore()
    }

    fn reduced(p: &Program, model: DeliveryModel) -> ExploreResult {
        let cfg = SleepConfig {
            model,
            use_sleep_sets: true,
            ..Default::default()
        };
        SleepSetExplorer::new(p, cfg).explore()
    }

    #[test]
    fn sleep_sets_preserve_matchings_on_fig1() {
        let p = fig1();
        for model in DeliveryModel::ALL {
            let full = naive(&p, model);
            let red = reduced(&p, model);
            assert_eq!(full.matchings, red.matchings, "model {model}");
            assert_eq!(full.violations, red.violations);
            assert_eq!(full.deadlocks > 0, red.deadlocks > 0);
        }
    }

    #[test]
    fn sleep_sets_reduce_execution_count() {
        let p = fig1();
        let full = naive(&p, DeliveryModel::Unordered);
        let red = reduced(&p, DeliveryModel::Unordered);
        assert!(
            red.complete_terminals < full.complete_terminals,
            "sleep sets should prune: {} vs {}",
            red.complete_terminals,
            full.complete_terminals
        );
    }

    #[test]
    fn agrees_with_graph_explorer_on_matchings() {
        let p = fig1();
        for model in DeliveryModel::ALL {
            let graph = GraphExplorer::new(&p, ExploreConfig::with_model(model)).explore();
            let red = reduced(&p, model);
            assert_eq!(graph.matchings, red.matchings, "model {model}");
        }
    }

    #[test]
    fn violation_detection_matches_naive() {
        use mcapi::expr::{Cond, Expr};
        use mcapi::types::CmpOp;
        let mut b = ProgramBuilder::new("race-assert");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let a = b.recv(t0, 0);
        b.assert_cond(
            t0,
            Cond::cmp(CmpOp::Eq, Expr::Var(a), Expr::Const(1)),
            "a==1",
        );
        b.send_const(t1, t0, 0, 1);
        b.send_const(t2, t0, 0, 2);
        let p = b.build().unwrap();
        let full = naive(&p, DeliveryModel::Unordered);
        let red = reduced(&p, DeliveryModel::Unordered);
        assert!(full.found_violation());
        assert!(red.found_violation());
    }

    fn with_schedules(
        p: &Program,
        model: DeliveryModel,
        sleep: bool,
        canon: bool,
    ) -> ExploreResult {
        let cfg = SleepConfig {
            model,
            use_sleep_sets: sleep,
            use_canonical: canon,
            track_schedules: true,
            ..Default::default()
        };
        SleepSetExplorer::new(p, cfg).explore()
    }

    #[test]
    fn canonical_agrees_with_naive_on_verdicts_and_matchings() {
        let p = fig1();
        for model in DeliveryModel::ALL {
            let full = naive(&p, model);
            let canon = with_schedules(&p, model, false, true);
            assert_eq!(full.matchings, canon.matchings, "model {model}");
            assert_eq!(full.violations, canon.violations);
            assert_eq!(full.deadlocks > 0, canon.deadlocks > 0);
        }
    }

    #[test]
    fn canonical_schedules_are_a_subset_of_sleep_set_survivors() {
        // Ascending exploration order + the same independence relation
        // means a schedule taking a sleeping action cannot be in normal
        // form: canonical ⊆ sleep-set-surviving, with or without sleep
        // sets also enabled.
        let p = fig1();
        for model in DeliveryModel::ALL {
            let sleep = with_schedules(&p, model, true, false);
            let canon_only = with_schedules(&p, model, false, true);
            let composed = with_schedules(&p, model, true, true);
            assert!(
                canon_only.schedules.is_subset(&sleep.schedules),
                "model {model}: canonical must refine sleep sets"
            );
            assert_eq!(
                composed.schedules, canon_only.schedules,
                "model {model}: composing sleep sets must not change the survivors"
            );
            assert!(
                composed.complete_terminals <= sleep.complete_terminals,
                "model {model}"
            );
        }
    }

    #[test]
    fn canonical_alone_matches_the_sleep_set_reduction_on_fig1() {
        // Both prunes keep one linearisation per trace class on an
        // acyclic space, so the canonical filter alone reaches the
        // sleep-set execution count — and prunes well below the naive
        // enumeration.
        let p = fig1();
        let full = naive(&p, DeliveryModel::Unordered);
        let sleep = with_schedules(&p, DeliveryModel::Unordered, true, false);
        let canon = with_schedules(&p, DeliveryModel::Unordered, false, true);
        assert!(canon.canonical_skipped > 0);
        assert!(canon.matchings.len() <= canon.complete_terminals);
        assert!(
            canon.complete_terminals < full.complete_terminals,
            "canonical must prune the naive enumeration: {} vs {}",
            canon.complete_terminals,
            full.complete_terminals
        );
        assert_eq!(
            canon.complete_terminals, sleep.complete_terminals,
            "one representative per class either way"
        );
    }

    #[test]
    fn truncation_flag_respected() {
        let p = fig1();
        let cfg = SleepConfig {
            max_executions: 1,
            ..Default::default()
        };
        let r = SleepSetExplorer::new(&p, cfg).explore();
        assert!(r.truncated);
    }
}
