//! Stateless execution enumeration with sleep-set partial-order reduction.
//!
//! This is the Inspect-style baseline the paper situates itself against
//! (via Fusion's comparison with Inspect): depth-first enumeration of
//! executions — no state hashing — pruned with Godefroid's sleep sets.
//! Sleep sets preserve at least one linearisation of every Mazurkiewicz
//! trace, so safety verdicts (assertion violations, deadlocks) and the set
//! of complete matchings are identical to the naive enumeration, at a
//! fraction of the executions.
//!
//! The independence relation is conservative: two actions commute iff they
//! belong to different threads and do not touch a common endpoint (a send
//! and a receive on the same endpoint, or two receives on the same
//! endpoint, are dependent; under `ZeroDelay` two sends to the same
//! endpoint are also dependent because global send order is semantic there;
//! under `Unordered` they commute).

use crate::stats::{ExploreResult, Matching, RecvKey};
use mcapi::program::{Instr, Program};
use mcapi::state::{Action, SysState};
use mcapi::types::{DeliveryModel, EndpointAddr};

/// Configuration for the stateless search.
#[derive(Clone, Copy, Debug)]
pub struct SleepConfig {
    pub model: DeliveryModel,
    /// Disable the sleep-set pruning (naive full enumeration baseline).
    pub use_sleep_sets: bool,
    /// Abort after this many executions.
    pub max_executions: usize,
    pub track_matchings: bool,
}

impl Default for SleepConfig {
    fn default() -> Self {
        SleepConfig {
            model: DeliveryModel::Unordered,
            use_sleep_sets: true,
            max_executions: 10_000_000,
            track_matchings: true,
        }
    }
}

/// Stateless DFS with sleep sets.
pub struct SleepSetExplorer<'a> {
    program: &'a Program,
    config: SleepConfig,
}

impl<'a> SleepSetExplorer<'a> {
    pub fn new(program: &'a Program, config: SleepConfig) -> Self {
        SleepSetExplorer { program, config }
    }

    /// The endpoint an action interacts with, if any: destination endpoint
    /// for sends; source endpoint of the consumed message for receives.
    fn touched_endpoint(&self, state: &SysState, action: Action) -> Option<EndpointAddr> {
        match action {
            Action::Internal { thread } => {
                let pc = state.threads[thread].pc;
                match self.program.threads[thread].code.get(pc) {
                    Some(Instr::Send { to, .. }) | Some(Instr::SendI { to, .. }) => Some(*to),
                    _ => None,
                }
            }
            Action::Receive { thread, .. } => {
                let pc = state.threads[thread].pc;
                match self.program.threads[thread].code.get(pc) {
                    Some(Instr::Recv { port, .. }) => Some(EndpointAddr::new(thread, *port)),
                    _ => None,
                }
            }
            Action::CompleteWait { thread, .. } => {
                // The pending receive's port.
                let pc = state.threads[thread].pc;
                match self.program.threads[thread].code.get(pc) {
                    Some(Instr::Wait { req }) => match state.threads[thread].reqs[req.0 as usize] {
                        mcapi::state::ReqState::RecvPending { port, .. } => {
                            Some(EndpointAddr::new(thread, port))
                        }
                        _ => None,
                    },
                    _ => None,
                }
            }
        }
    }

    fn is_send(&self, state: &SysState, action: Action) -> bool {
        if let Action::Internal { thread } = action {
            let pc = state.threads[thread].pc;
            matches!(
                self.program.threads[thread].code.get(pc),
                Some(Instr::Send { .. }) | Some(Instr::SendI { .. })
            )
        } else {
            false
        }
    }

    /// Conservative independence check (actions evaluated at state `s`).
    fn independent(&self, s: &SysState, a: Action, b: Action) -> bool {
        if a.thread() == b.thread() {
            return false;
        }
        let (ea, eb) = (self.touched_endpoint(s, a), self.touched_endpoint(s, b));
        match (ea, eb) {
            (Some(x), Some(y)) if x == y => {
                // Same endpoint: two sends commute except under ZeroDelay
                // (global order is semantic there); anything involving a
                // receive is dependent.
                let both_send = self.is_send(s, a) && self.is_send(s, b);
                both_send && self.config.model != DeliveryModel::ZeroDelay
            }
            _ => true,
        }
    }

    /// Run the enumeration.
    pub fn explore(&self) -> ExploreResult {
        let mut result = ExploreResult::default();
        let init = SysState::initial(self.program);
        let recv_counts = vec![0u16; self.program.threads.len()];
        self.dfs(&init, &[], &recv_counts, Vec::new(), &mut result);
        result
    }

    fn dfs(
        &self,
        state: &SysState,
        sleep: &[Action],
        recv_counts: &[u16],
        matching: Matching,
        result: &mut ExploreResult,
    ) {
        if result.complete_terminals + result.deadlocks + result.violations.len()
            >= self.config.max_executions
        {
            result.truncated = true;
            return;
        }
        result.states += 1;
        let enabled = state.enabled_actions(self.program, self.config.model);
        if enabled.is_empty() {
            if let Some(v) = &state.violation {
                result.push_violation(v.clone());
            } else if state.all_done(self.program) {
                result.complete_terminals += 1;
                if self.config.track_matchings {
                    result.matchings.insert(matching);
                }
            } else {
                result.deadlocks += 1;
            }
            return;
        }
        let mut explored: Vec<Action> = Vec::new();
        for &action in &enabled {
            if self.config.use_sleep_sets && sleep.contains(&action) {
                continue;
            }
            let (next, _ev) = state.apply(self.program, action, self.config.model);
            result.transitions += 1;
            // Child sleep set: surviving members are those independent of
            // the chosen action.
            let child_sleep: Vec<Action> = if self.config.use_sleep_sets {
                sleep
                    .iter()
                    .chain(explored.iter())
                    .copied()
                    .filter(|&b| self.independent(state, action, b))
                    .collect()
            } else {
                Vec::new()
            };
            let mut counts = recv_counts.to_vec();
            let mut m = matching.clone();
            if let Some(msg) = action.message() {
                let t = action.thread();
                let key = RecvKey::new(t, counts[t] as usize);
                counts[t] += 1;
                if self.config.track_matchings {
                    let pos = m.partition_point(|(k, _)| *k < key);
                    m.insert(pos, (key, msg));
                }
            }
            self.dfs(&next, &child_sleep, &counts, m, result);
            explored.push(action);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{ExploreConfig, GraphExplorer};
    use mcapi::builder::ProgramBuilder;

    fn fig1() -> Program {
        let mut b = ProgramBuilder::new("fig1");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        b.recv(t0, 0);
        b.recv(t0, 0);
        b.recv(t1, 0);
        b.send_const(t1, t0, 0, 100);
        b.send_const(t2, t0, 0, 200);
        b.send_const(t2, t1, 0, 300);
        b.build().unwrap()
    }

    fn naive(p: &Program, model: DeliveryModel) -> ExploreResult {
        let cfg = SleepConfig {
            model,
            use_sleep_sets: false,
            ..Default::default()
        };
        SleepSetExplorer::new(p, cfg).explore()
    }

    fn reduced(p: &Program, model: DeliveryModel) -> ExploreResult {
        let cfg = SleepConfig {
            model,
            use_sleep_sets: true,
            ..Default::default()
        };
        SleepSetExplorer::new(p, cfg).explore()
    }

    #[test]
    fn sleep_sets_preserve_matchings_on_fig1() {
        let p = fig1();
        for model in DeliveryModel::ALL {
            let full = naive(&p, model);
            let red = reduced(&p, model);
            assert_eq!(full.matchings, red.matchings, "model {model}");
            assert_eq!(full.violations, red.violations);
            assert_eq!(full.deadlocks > 0, red.deadlocks > 0);
        }
    }

    #[test]
    fn sleep_sets_reduce_execution_count() {
        let p = fig1();
        let full = naive(&p, DeliveryModel::Unordered);
        let red = reduced(&p, DeliveryModel::Unordered);
        assert!(
            red.complete_terminals < full.complete_terminals,
            "sleep sets should prune: {} vs {}",
            red.complete_terminals,
            full.complete_terminals
        );
    }

    #[test]
    fn agrees_with_graph_explorer_on_matchings() {
        let p = fig1();
        for model in DeliveryModel::ALL {
            let graph = GraphExplorer::new(&p, ExploreConfig::with_model(model)).explore();
            let red = reduced(&p, model);
            assert_eq!(graph.matchings, red.matchings, "model {model}");
        }
    }

    #[test]
    fn violation_detection_matches_naive() {
        use mcapi::expr::{Cond, Expr};
        use mcapi::types::CmpOp;
        let mut b = ProgramBuilder::new("race-assert");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let a = b.recv(t0, 0);
        b.assert_cond(
            t0,
            Cond::cmp(CmpOp::Eq, Expr::Var(a), Expr::Const(1)),
            "a==1",
        );
        b.send_const(t1, t0, 0, 1);
        b.send_const(t2, t0, 0, 2);
        let p = b.build().unwrap();
        let full = naive(&p, DeliveryModel::Unordered);
        let red = reduced(&p, DeliveryModel::Unordered);
        assert!(full.found_violation());
        assert!(red.found_violation());
    }

    #[test]
    fn truncation_flag_respected() {
        let p = fig1();
        let cfg = SleepConfig {
            max_executions: 1,
            ..Default::default()
        };
        let r = SleepSetExplorer::new(&p, cfg).explore();
        assert!(r.truncated);
    }
}
