//! The MCC stand-in and the ground-truth checker.
//!
//! MCC (Sharma, Gopalakrishnan, Mercer, Holt — FMCAD'09) explores thread
//! interleavings of an MCAPI application but, per the PPoPP'11 paper, "is
//! not able to consider non-deterministic delays in the communication
//! network when sending messages from two different threads to a common
//! endpoint". Concretely: its network delivers each message instantly, so
//! an endpoint's queue is FIFO in global send order. That is exactly
//! [`DeliveryModel::ZeroDelay`] in this workspace, so the MCC baseline is
//! the graph explorer pinned to that model.

use crate::explorer::{ExploreConfig, GraphExplorer};
use crate::stats::ExploreResult;
use mcapi::program::Program;
use mcapi::types::DeliveryModel;

/// Exhaustively check `program` the way MCC would: all interleavings,
/// instant in-order delivery. Misses delay-dependent behaviours (the
/// paper's Fig. 4b).
pub fn mcc_check(program: &Program) -> ExploreResult {
    GraphExplorer::new(program, ExploreConfig::with_model(DeliveryModel::ZeroDelay)).explore()
}

/// Exhaustively check `program` under the full arbitrary-delay semantics —
/// the small-scope ground truth the symbolic encoding is validated against.
pub fn ground_truth_check(program: &Program) -> ExploreResult {
    GraphExplorer::new(program, ExploreConfig::with_model(DeliveryModel::Unordered)).explore()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcapi::builder::ProgramBuilder;
    use mcapi::expr::{Cond, Expr};
    use mcapi::types::CmpOp;

    /// The canonical coverage-gap program — the exact shape of the paper's
    /// Fig. 1. t2 sends Y to t0 and *then* kicks t1; t1 sends X to t0 only
    /// after the kick. So in every execution Y is sent before X, and only
    /// a transit delay of Y can make recv(A) observe X first (Fig. 4b).
    fn delay_sensitive() -> Program {
        let mut b = ProgramBuilder::new("gap");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let a = b.recv(t0, 0); // A
        let _b2 = b.recv(t0, 0); // B
                                 // Property: recv(A) sees Y (value 2) — holds under zero delay.
        b.assert_cond(
            t0,
            Cond::cmp(CmpOp::Eq, Expr::Var(a), Expr::Const(2)),
            "recv(A) must see Y first",
        );
        let _kick = b.recv(t1, 0); // C
        b.send_const(t1, t0, 0, 1); // X
        b.send_const(t2, t0, 0, 2); // Y (sent before the kick)
        b.send_const(t2, t1, 0, 9); // Z (the kick)
        b.build().unwrap()
    }

    #[test]
    fn mcc_misses_delay_dependent_violation() {
        let p = delay_sensitive();

        let mcc = mcc_check(&p);
        let truth = ground_truth_check(&p);
        assert!(
            !mcc.found_violation(),
            "MCC's zero-delay network cannot reorder the sends: {:?}",
            mcc.violations
        );
        assert!(
            truth.found_violation(),
            "with arbitrary delays the violation is reachable"
        );
    }

    #[test]
    fn mcc_still_finds_schedule_only_races() {
        // When the race needs no delay (both sends unordered in time),
        // MCC finds the violation too.
        let mut b = ProgramBuilder::new("plain-race");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let a = b.recv(t0, 0);
        b.assert_cond(
            t0,
            Cond::cmp(CmpOp::Eq, Expr::Var(a), Expr::Const(1)),
            "first is 1",
        );
        b.send_const(t1, t0, 0, 1);
        b.send_const(t2, t0, 0, 2);
        let p = b.build().unwrap();
        assert!(mcc_check(&p).found_violation());
        assert!(ground_truth_check(&p).found_violation());
    }

    #[test]
    fn coverage_gap_is_one_sided() {
        // MCC behaviours are always a subset of ground truth.
        let p = delay_sensitive();
        let mcc = mcc_check(&p);
        let truth = ground_truth_check(&p);
        assert!(mcc.matchings.is_subset(&truth.matchings));
    }
}
