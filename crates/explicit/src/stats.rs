//! Result records shared by all explorers.

use mcapi::trace::Violation;

use std::collections::BTreeSet;

// Re-exported so downstream code can name these through either crate.
pub use mcapi::types::{Matching, RecvKey};

/// Aggregate exploration outcome.
#[derive(Clone, Debug, Default)]
pub struct ExploreResult {
    /// Distinct states visited (graph search) or prefixes executed
    /// (stateless search).
    pub states: usize,
    /// Transitions applied.
    pub transitions: usize,
    /// Terminal states / executions in which every thread finished.
    pub complete_terminals: usize,
    /// Deadlocked terminal states (not complete, no violation).
    pub deadlocks: usize,
    /// Distinct assertion violations reached.
    pub violations: Vec<Violation>,
    /// Distinct complete matchings observed on terminated executions.
    pub matchings: BTreeSet<Matching>,
    /// Schedule extensions pruned by the Mazurkiewicz normal-form test
    /// (zero unless canonical pruning is enabled; see [`mcapi::canon`]).
    pub canonical_skipped: u64,
    /// Complete-execution schedule words, recorded only when the
    /// configuration asks for them (test instrumentation for the
    /// canonical ⊆ sleep-set-surviving composition property).
    pub schedules: BTreeSet<Vec<mcapi::state::Action>>,
    /// Exploration stopped early (state or depth limit).
    pub truncated: bool,
}

impl ExploreResult {
    /// Did any execution violate an assertion?
    pub fn found_violation(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Record a violation, deduplicating.
    pub fn push_violation(&mut self, v: Violation) {
        if !self.violations.contains(&v) {
            self.violations.push(v);
        }
    }

    /// Report this exploration's counters into `reg` under the explicit
    /// layer's stable metric names (`mcapi_explicit_*`), tagged with
    /// `labels`.
    pub fn record_metrics(&self, reg: &mut metrics::Registry, labels: &[(&str, &str)]) {
        record_exploration_counters(
            reg,
            labels,
            self.states as u64,
            self.transitions as u64,
            self.canonical_skipped,
        );
        let mut c = |name: &str, help: &str, v: u64| reg.counter_add(name, help, labels, v);
        c(
            "mcapi_explicit_complete_terminals_total",
            "Terminal states in which every thread finished",
            self.complete_terminals as u64,
        );
        c(
            "mcapi_explicit_deadlocks_total",
            "Deadlocked terminal states reached",
            self.deadlocks as u64,
        );
        c(
            "mcapi_explicit_violations_total",
            "Distinct assertion violations reached",
            self.violations.len() as u64,
        );
        c(
            "mcapi_explicit_matchings_total",
            "Distinct complete matchings observed",
            self.matchings.len() as u64,
        );
        c(
            "mcapi_explicit_truncated_total",
            "Explorations stopped early by a state or depth limit",
            u64::from(self.truncated),
        );
    }

    /// Render the matchings compactly (for experiment tables).
    pub fn render_matchings(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for m in &self.matchings {
            let _ = write!(out, "{{");
            for (i, (r, s)) in m.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "t{}.r{} <- {:?}", r.thread, r.index, s);
            }
            let _ = writeln!(out, "}}");
        }
        out
    }
}

/// The explicit layer's headline counters under their stable metric
/// names. Shared by [`ExploreResult::record_metrics`] and the portfolio
/// driver (which keeps only states/transitions per scenario) so the names
/// cannot drift between the two reporters.
pub fn record_exploration_counters(
    reg: &mut metrics::Registry,
    labels: &[(&str, &str)],
    states: u64,
    transitions: u64,
    canonical_skipped: u64,
) {
    reg.counter_add(
        "mcapi_explicit_states_total",
        "Distinct states visited or prefixes executed",
        labels,
        states,
    );
    reg.counter_add(
        "mcapi_explicit_transitions_total",
        "Transitions applied",
        labels,
        transitions,
    );
    reg.counter_add(
        "mcapi_explicit_schedules_canonical_skipped_total",
        "Schedule extensions pruned by the Mazurkiewicz normal-form test",
        labels,
        canonical_skipped,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcapi::types::MsgId;

    #[test]
    fn recv_key_ordering_is_thread_major() {
        let a = RecvKey::new(0, 5);
        let b = RecvKey::new(1, 0);
        assert!(a < b);
        assert!(RecvKey::new(1, 0) < RecvKey::new(1, 1));
    }

    #[test]
    fn violations_deduplicate() {
        let mut r = ExploreResult::default();
        let v = Violation {
            thread: 0,
            pc: 1,
            message: "m".into(),
        };
        r.push_violation(v.clone());
        r.push_violation(v);
        assert_eq!(r.violations.len(), 1);
        assert!(r.found_violation());
    }

    #[test]
    fn render_matchings_mentions_pairs() {
        let mut r = ExploreResult::default();
        r.matchings
            .insert(vec![(RecvKey::new(0, 0), MsgId::new(2, 0))]);
        let s = r.render_matchings();
        assert!(s.contains("t0.r0"), "{s}");
        assert!(s.contains("m2.0"), "{s}");
    }
}
