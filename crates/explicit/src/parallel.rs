//! Level-synchronous parallel state-graph exploration.
//!
//! The frontier of each BFS level is split across worker threads
//! (crossbeam scoped threads); the visited set is sharded by hash behind
//! `parking_lot` mutexes so workers rarely contend. Results are merged
//! per level. The exploration is deterministic in its *outcome* (same
//! reachable set and matchings as [`crate::explorer::GraphExplorer`]) even
//! though the visit order is not.

use crate::explorer::{ExploreConfig, Node};
use crate::stats::ExploreResult;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use mcapi::program::Program;

const SHARDS: usize = 64;

/// Parallel BFS explorer.
///
/// ```
/// use explicit::{ExploreConfig, GraphExplorer, ParallelExplorer};
///
/// // Four workers find exactly the same behaviours as the sequential
/// // ground truth on the paper's Fig. 1 program.
/// let program = workloads::fig1();
/// let cfg = ExploreConfig::default();
/// let seq = GraphExplorer::new(&program, cfg).explore();
/// let par = ParallelExplorer::new(&program, cfg, 4).explore();
/// assert_eq!(seq.matchings, par.matchings);
/// assert_eq!(par.matchings.len(), 2); // Fig. 4a and Fig. 4b
/// ```
pub struct ParallelExplorer<'a> {
    program: &'a Program,
    config: ExploreConfig,
    num_workers: usize,
}

impl<'a> ParallelExplorer<'a> {
    /// `num_workers` is clamped to at least 1.
    pub fn new(program: &'a Program, config: ExploreConfig, num_workers: usize) -> Self {
        ParallelExplorer {
            program,
            config,
            num_workers: num_workers.max(1),
        }
    }

    /// Run the exploration. Semantically equivalent to the sequential
    /// graph explorer (modulo `truncated` cut points).
    pub fn explore(&self) -> ExploreResult {
        let shards: Vec<Mutex<HashSet<Node>>> =
            (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect();
        let insert = |node: &Node| -> bool {
            let mut h = DefaultHasher::new();
            node.hash(&mut h);
            let shard = (h.finish() as usize) % SHARDS;
            shards[shard].lock().insert(node.clone())
        };

        let mut result = ExploreResult::default();
        let init = Node::initial(self.program);
        insert(&init);
        let mut frontier = vec![init];

        while !frontier.is_empty() {
            result.states += frontier.len();
            if result.states >= self.config.max_states {
                result.truncated = true;
                break;
            }
            let chunk = frontier.len().div_ceil(self.num_workers);
            let partials: Vec<(ExploreResult, Vec<Node>)> = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for piece in frontier.chunks(chunk.max(1)) {
                    let insert_ref = &insert;
                    handles.push(scope.spawn(move |_| {
                        let mut local = ExploreResult::default();
                        let mut next_frontier = Vec::new();
                        for node in piece {
                            let actions = node.sys.enabled_actions(self.program, self.config.model);
                            if actions.is_empty() {
                                record_terminal(self.program, node, &mut local);
                                continue;
                            }
                            for action in actions {
                                // Same node-local canonical fragment as the
                                // sequential explorer: the condition reads
                                // only node content, so it is order- and
                                // worker-independent.
                                let last = if self.config.use_canonical {
                                    let summary =
                                        mcapi::canon::summarize(self.program, &node.sys, action);
                                    if let Some((b, sb)) = &node.last {
                                        if mcapi::canon::independent(
                                            self.config.model,
                                            &summary,
                                            sb,
                                        ) && action < *b
                                        {
                                            local.canonical_skipped += 1;
                                            continue;
                                        }
                                    }
                                    Some((action, summary))
                                } else {
                                    None
                                };
                                let next = node.successor(
                                    self.program,
                                    action,
                                    self.config.model,
                                    self.config.track_matchings,
                                    last,
                                );
                                local.transitions += 1;
                                if let Some(v) = &next.sys.violation {
                                    local.push_violation(v.clone());
                                }
                                if insert_ref(&next) {
                                    next_frontier.push(next);
                                }
                            }
                        }
                        (local, next_frontier)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
            .expect("scope panicked");

            frontier = Vec::new();
            for (partial, mut nodes) in partials {
                merge(&mut result, partial);
                frontier.append(&mut nodes);
            }
            if self.config.stop_at_first_violation && result.found_violation() {
                break;
            }
        }
        result
    }
}

fn record_terminal(program: &Program, node: &Node, result: &mut ExploreResult) {
    if let Some(v) = &node.sys.violation {
        result.push_violation(v.clone());
        return;
    }
    if node.sys.all_done(program) {
        result.complete_terminals += 1;
        result.matchings.insert(node.matching.clone());
    } else {
        result.deadlocks += 1;
    }
}

fn merge(into: &mut ExploreResult, from: ExploreResult) {
    into.transitions += from.transitions;
    into.complete_terminals += from.complete_terminals;
    into.deadlocks += from.deadlocks;
    for v in from.violations {
        into.push_violation(v);
    }
    into.matchings.extend(from.matchings);
    into.canonical_skipped += from.canonical_skipped;
    into.schedules.extend(from.schedules);
    into.truncated |= from.truncated;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::GraphExplorer;
    use mcapi::builder::ProgramBuilder;
    use mcapi::types::DeliveryModel;

    fn fig1() -> Program {
        let mut b = ProgramBuilder::new("fig1");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        b.recv(t0, 0);
        b.recv(t0, 0);
        b.recv(t1, 0);
        b.send_const(t1, t0, 0, 100);
        b.send_const(t2, t0, 0, 200);
        b.send_const(t2, t1, 0, 300);
        b.build().unwrap()
    }

    /// Wider race: n producers, one consumer receiving n messages.
    fn race(n: usize) -> Program {
        let mut b = ProgramBuilder::new("race");
        let t0 = b.thread("consumer");
        let producers: Vec<_> = (0..n).map(|i| b.thread(format!("p{i}"))).collect();
        for _ in 0..n {
            b.recv(t0, 0);
        }
        for (i, &p) in producers.iter().enumerate() {
            b.send_const(p, t0, 0, i as i64);
        }
        b.build().unwrap()
    }

    #[test]
    fn parallel_matches_sequential_on_fig1() {
        let p = fig1();
        for model in DeliveryModel::ALL {
            let cfg = ExploreConfig::with_model(model);
            let seq = GraphExplorer::new(&p, cfg).explore();
            let par = ParallelExplorer::new(&p, cfg, 4).explore();
            assert_eq!(seq.matchings, par.matchings, "model {model}");
            assert_eq!(
                seq.complete_terminals, par.complete_terminals,
                "model {model}"
            );
            assert_eq!(seq.deadlocks, par.deadlocks, "model {model}");
            assert_eq!(seq.violations.len(), par.violations.len(), "model {model}");
            assert_eq!(seq.states, par.states, "model {model}");
        }
    }

    #[test]
    fn parallel_matches_sequential_on_wider_race() {
        let p = race(4);
        let cfg = ExploreConfig::with_model(DeliveryModel::Unordered);
        let seq = GraphExplorer::new(&p, cfg).explore();
        let par = ParallelExplorer::new(&p, cfg, 8).explore();
        assert_eq!(seq.matchings.len(), par.matchings.len());
        assert_eq!(seq.matchings, par.matchings);
        // 4 producers racing to 4 slots: 4! = 24 matchings.
        assert_eq!(seq.matchings.len(), 24);
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let p = fig1();
        let cfg = ExploreConfig::default();
        let par = ParallelExplorer::new(&p, cfg, 1).explore();
        assert_eq!(par.matchings.len(), 2);
    }

    #[test]
    fn truncation_respected() {
        let p = race(4);
        let cfg = ExploreConfig {
            max_states: 10,
            ..Default::default()
        };
        let par = ParallelExplorer::new(&p, cfg, 4).explore();
        assert!(par.truncated);
    }
}
