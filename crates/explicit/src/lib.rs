//! # explicit — explicit-state baselines for the PPoPP'11 comparison
//!
//! The paper positions its SMT encoding against two prior tools:
//!
//! * **MCC** (Sharma et al., FMCAD'09), an explicit-state model checker for
//!   MCAPI that explores thread interleavings but delivers messages
//!   instantly in global send order — it "is not able to consider
//!   non-deterministic delays in the communication network", so for the
//!   paper's Fig. 1 it only ever finds the pairing of Fig. 4a;
//! * **Inspect**-style stateless search with partial-order reduction
//!   (Flanagan & Godefroid's DPOR line of work), the baseline Fusion was
//!   compared against.
//!
//! This crate provides faithful stand-ins for both, plus the ground truth:
//!
//! * [`explorer::GraphExplorer`] — breadth-first state-graph search with
//!   hashing, parameterised by [`mcapi::types::DeliveryModel`]. With
//!   `ZeroDelay` it *is* the MCC delivery model ([`mcc`]); with `Unordered`
//!   it enumerates every behaviour the paper's encoding models
//!   (the small-scope ground truth used to validate the symbolic crate).
//! * [`sleepset::SleepSetExplorer`] — stateless depth-first execution
//!   enumeration with sleep-set pruning (Godefroid), the classic
//!   partial-order-reduction baseline.
//! * [`parallel::ParallelExplorer`] — a crossbeam work-sharing version of
//!   the graph search for larger state spaces.

pub mod explorer;
pub mod mcc;
pub mod parallel;
pub mod sleepset;
pub mod stats;

pub use explorer::{ExploreConfig, GraphExplorer};
pub use mcc::{ground_truth_check, mcc_check};
pub use parallel::ParallelExplorer;
pub use sleepset::SleepSetExplorer;
pub use stats::{ExploreResult, Matching, RecvKey};
