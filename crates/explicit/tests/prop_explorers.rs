//! Property tests: all explorers agree with each other on random
//! programs — the sequential graph search is the reference.

use explicit::sleepset::SleepConfig;
use explicit::{ExploreConfig, GraphExplorer, ParallelExplorer, SleepSetExplorer};
use mcapi::builder::ProgramBuilder;
use mcapi::program::Program;
use mcapi::types::DeliveryModel;
use proptest::prelude::*;

/// Random deadlock-free program (sends precede receives per thread).
fn arb_program() -> impl Strategy<Value = Program> {
    (
        2usize..4,
        prop::collection::vec((0usize..3, 1i64..20), 1..6),
    )
        .prop_map(|(n, sends)| {
            let mut b = ProgramBuilder::new("prop");
            let tids: Vec<_> = (0..n).map(|i| b.thread(format!("t{i}"))).collect();
            let mut incoming = vec![0usize; n];
            for (i, &(to_raw, val)) in sends.iter().enumerate() {
                let from = i % n;
                let mut to = to_raw % n;
                if to == from {
                    to = (to + 1) % n;
                }
                b.send_const(tids[from], tids[to], 0, val);
                incoming[to] += 1;
            }
            for (t, &cnt) in incoming.iter().enumerate() {
                for _ in 0..cnt {
                    b.recv(tids[t], 0);
                }
            }
            b.build().unwrap()
        })
}

fn model_strategy() -> impl Strategy<Value = DeliveryModel> {
    prop_oneof![
        Just(DeliveryModel::Unordered),
        Just(DeliveryModel::PairwiseFifo),
        Just(DeliveryModel::ZeroDelay),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel BFS finds exactly the sequential reachable set, terminal
    /// counts, and matchings.
    #[test]
    fn parallel_equals_sequential(p in arb_program(), model in model_strategy(), workers in 1usize..6) {
        let cfg = ExploreConfig::with_model(model);
        let seq = GraphExplorer::new(&p, cfg).explore();
        let par = ParallelExplorer::new(&p, cfg, workers).explore();
        prop_assert_eq!(seq.states, par.states);
        prop_assert_eq!(seq.complete_terminals, par.complete_terminals);
        prop_assert_eq!(seq.deadlocks, par.deadlocks);
        prop_assert_eq!(&seq.matchings, &par.matchings);
        prop_assert_eq!(seq.violations.len(), par.violations.len());
    }

    /// Sleep-set pruning preserves matchings, violations and deadlock
    /// existence versus the naive stateless enumeration.
    #[test]
    fn sleep_sets_preserve_semantics(p in arb_program(), model in model_strategy()) {
        let full = SleepSetExplorer::new(
            &p,
            SleepConfig { model, use_sleep_sets: false, ..SleepConfig::default() },
        )
        .explore();
        let red = SleepSetExplorer::new(
            &p,
            SleepConfig { model, use_sleep_sets: true, ..SleepConfig::default() },
        )
        .explore();
        prop_assert_eq!(&full.matchings, &red.matchings, "model {}", model);
        prop_assert_eq!(&full.violations, &red.violations);
        prop_assert_eq!(full.deadlocks > 0, red.deadlocks > 0);
        prop_assert!(red.complete_terminals <= full.complete_terminals);
    }

    /// Stateless enumeration and graph search agree on matchings.
    #[test]
    fn stateless_equals_graph_on_matchings(p in arb_program(), model in model_strategy()) {
        let graph = GraphExplorer::new(&p, ExploreConfig::with_model(model)).explore();
        let sleep = SleepSetExplorer::new(
            &p,
            SleepConfig { model, ..SleepConfig::default() },
        )
        .explore();
        prop_assert_eq!(&graph.matchings, &sleep.matchings);
    }

    /// Delivery-model hierarchy on arbitrary programs:
    /// zero-delay ⊆ pairwise-fifo ⊆ unordered.
    #[test]
    fn hierarchy_holds_on_random_programs(p in arb_program()) {
        let beh = |model| {
            GraphExplorer::new(&p, ExploreConfig::with_model(model)).explore().matchings
        };
        let un = beh(DeliveryModel::Unordered);
        let pf = beh(DeliveryModel::PairwiseFifo);
        let zd = beh(DeliveryModel::ZeroDelay);
        prop_assert!(zd.is_subset(&pf));
        prop_assert!(pf.is_subset(&un));
    }
}
