//! Property: `parse(pretty(p))` round-trips to an equivalent program —
//! same threads, same ops, same variable/request/port bookkeeping — for
//! randomly generated workloads and for assorted structured shapes.

use frontend::{parse_program, pretty};
use mcapi::program::Program;
use proptest::prelude::*;
use workloads::random::{random_program, RandomProgramConfig};

/// The round-trip under test. Equality is full structural equality of
/// [`Program`] (name, thread names, ops, compiled code, counts, ports).
fn roundtrip(p: &Program) -> Program {
    let text = pretty(p);
    match parse_program(&text) {
        Ok(q) => q,
        Err(e) => panic!("pretty output failed to parse: {e}\n--- source ---\n{text}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random well-formed programs (the fuzzing family) survive the
    /// pretty → parse → lower loop bit-identically.
    #[test]
    fn random_programs_roundtrip(
        seed in 0u64..500,
        threads in 2usize..5,
        sends in 1usize..4,
        nb in 0u32..101,
        with_assert in any::<bool>(),
    ) {
        let cfg = RandomProgramConfig {
            threads,
            sends_per_thread: sends,
            nonblocking_percent: nb,
            with_assert,
            ..RandomProgramConfig::default()
        };
        let p = random_program(seed, &cfg);
        let q = roundtrip(&p);
        prop_assert_eq!(&p, &q);
        // Derived structure agrees too (belt and braces: these are what
        // the match-pair generator consumes).
        prop_assert_eq!(p.num_static_sends(), q.num_static_sends());
        prop_assert_eq!(p.num_static_recvs(), q.num_static_recvs());
        prop_assert_eq!(p.code_size(), q.code_size());
    }

    /// The canonical form is a fixpoint: pretty(parse(pretty(p))) is the
    /// same text (what `mcapi-smc fmt` relies on).
    #[test]
    fn pretty_is_a_formatting_fixpoint(seed in 0u64..200) {
        let p = random_program(seed, &RandomProgramConfig::default());
        let once = pretty(&p);
        let twice = pretty(&roundtrip(&p));
        prop_assert_eq!(once, twice);
    }

    /// Boundary constants (|c| at and next to the validated 2^40 edge)
    /// survive the pretty → parse → lower loop bit-identically. Before
    /// the `unsigned_abs` fixes this is where the printer/parser pair
    /// broke down at the domain edge.
    #[test]
    fn boundary_constant_programs_roundtrip(seed in 0u64..300) {
        let cfg = RandomProgramConfig {
            extreme_const_percent: 60,
            with_assert: true,
            ..RandomProgramConfig::default()
        };
        let p = random_program(seed, &cfg);
        prop_assert_eq!(&p, &roundtrip(&p));
    }

    /// `repeat` loops round-trip structurally: the printed source keeps
    /// the loop, re-lowering unrolls to identical flat code.
    #[test]
    fn loop_programs_roundtrip(seed in 0u64..300, rounds in 1usize..4) {
        let p = workloads::random_loop_program(seed, rounds);
        let q = roundtrip(&p);
        prop_assert_eq!(&p, &q);
        prop_assert_eq!(p.code_size(), q.code_size());
    }
}

/// Every grid family point at a generous scale round-trips exactly (this
/// covers fig1, races, delay gaps, pipelines, scatter's recv_i/wait,
/// rings, branchy's if/else — shapes the random generator doesn't emit).
#[test]
fn grid_points_roundtrip_structurally() {
    for spec in workloads::grid::default_grid(3) {
        let p = spec.build();
        let q = roundtrip(&p);
        assert_eq!(p, q, "structural round-trip failed for {spec}");
    }
}
