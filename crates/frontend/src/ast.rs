//! The MCAPI-lite abstract syntax tree.
//!
//! Every name and literal that lowering can reject keeps its [`Span`], so
//! "unknown variable `x`" points at the use site, not at the statement.

use crate::diag::Span;
use mcapi::types::CmpOp;

/// A value with its source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned<T> {
    /// The parsed value.
    pub node: T,
    /// Where it came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pair a value with its span.
    pub fn new(node: T, span: Span) -> Spanned<T> {
        Spanned { node, span }
    }
}

/// One source file: `program NAME { thread… }`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct File {
    /// The program name (bare identifier or string literal).
    pub name: Spanned<String>,
    /// The threads, in declaration order (= node indices).
    pub threads: Vec<ThreadDecl>,
}

/// One `thread NAME { decls… stmts… }` block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ThreadDecl {
    /// The thread name.
    pub name: Spanned<String>,
    /// Declared receive ports (`port 1, 2;`). Port 0 is implicit, as in
    /// [`mcapi::builder::ProgramBuilder::thread`].
    pub ports: Vec<Spanned<i64>>,
    /// Declared local variables, in slot order (`var a, b;`).
    pub vars: Vec<Spanned<String>>,
    /// Declared request handles, in slot order (`req r0;`).
    pub reqs: Vec<Spanned<String>>,
    /// The statements.
    pub body: Vec<Stmt>,
}

/// A message destination: `thread:port` with the thread given by name or
/// by node index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dest {
    /// The target thread.
    pub thread: DestThread,
    /// The target port number.
    pub port: Spanned<i64>,
}

/// How a destination thread is written.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DestThread {
    /// By declared thread name (`server:0`).
    Name(Spanned<String>),
    /// By node index (`1:0`).
    Index(Spanned<i64>),
}

/// A statement plus its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Stmt {
    /// What the statement does.
    pub kind: StmtKind,
    /// The whole statement's span.
    pub span: Span,
}

/// Statement forms — one per [`mcapi::program::Op`] constructor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StmtKind {
    /// `send(dest, expr);`
    Send {
        /// Destination endpoint.
        dest: Dest,
        /// Payload expression.
        value: Expr,
    },
    /// `send_i(dest, expr, req);`
    SendI {
        /// Destination endpoint.
        dest: Dest,
        /// Payload expression.
        value: Expr,
        /// Request handle bound to the send.
        req: Spanned<String>,
    },
    /// `var = recv(port);`
    Recv {
        /// Variable receiving the payload.
        var: Spanned<String>,
        /// Port received on.
        port: Spanned<i64>,
    },
    /// `var, req = recv_i(port);`
    RecvI {
        /// Variable the payload is (eventually) bound into.
        var: Spanned<String>,
        /// Request handle for the posted receive.
        req: Spanned<String>,
        /// Port received on.
        port: Spanned<i64>,
    },
    /// `wait(req);`
    Wait {
        /// The request to block on.
        req: Spanned<String>,
    },
    /// `var = expr;`
    Assign {
        /// Assigned variable.
        var: Spanned<String>,
        /// Right-hand side.
        value: Expr,
    },
    /// `assert(cond, "message");` (message optional)
    Assert {
        /// The checked condition.
        cond: Cond,
        /// The failure message (empty when omitted).
        message: Option<Spanned<String>>,
    },
    /// `if (cond) { … } else { … }` (else optional)
    If {
        /// Branch condition.
        cond: Cond,
        /// Then-branch statements.
        then_body: Vec<Stmt>,
        /// Else-branch statements (empty when no `else`).
        else_body: Vec<Stmt>,
    },
    /// `repeat N { … }` — a bounded loop, unrolled at compile time.
    Repeat {
        /// Iteration count (a non-negative literal).
        count: Spanned<i64>,
        /// Loop body statements.
        body: Vec<Stmt>,
    },
}

/// Expressions: the DSL's `variable + constant` fragment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// An integer literal.
    Const(Spanned<i64>),
    /// A variable read.
    Var(Spanned<String>),
    /// `expr + c` / `expr - c` (the offset is stored signed).
    Add(Box<Expr>, Spanned<i64>),
}

impl Expr {
    /// The span covering the whole expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Const(c) => c.span,
            Expr::Var(v) => v.span,
            Expr::Add(e, c) => e.span().to(c.span),
        }
    }
}

/// Conditions: Boolean combinations of comparisons.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cond {
    /// `true`
    True,
    /// `false`
    False,
    /// `a OP b`
    Cmp(CmpOp, Expr, Expr),
    /// `a && b`
    And(Box<Cond>, Box<Cond>),
    /// `a || b`
    Or(Box<Cond>, Box<Cond>),
    /// `!(c)`
    Not(Box<Cond>),
}
