//! Lowering: AST → [`mcapi::program::Program`] via
//! [`mcapi::builder::ProgramBuilder`], so the builder's compile/validate
//! pass is reused unchanged.
//!
//! Invariants (relied on by the `parse(pretty(p))` round-trip):
//!
//! - Threads get node indices in declaration order.
//! - `var`/`req` declarations get slots in declaration order, so a
//!   printer that names slot *i* `v{i}`/`r{i}` reproduces the original
//!   numbering exactly.
//! - Port 0 is implicitly owned by every thread (builder semantics);
//!   declaring it again is a no-op.
//! - Expressions lower through [`mcapi::expr::Expr::plus`], which folds
//!   constant offsets — printed canonical forms parse back structurally
//!   equal.

use crate::ast;
use crate::diag::{FrontendError, LowerError, Span};
use mcapi::builder::ProgramBuilder;
use mcapi::expr::{Cond, Expr, MAX_CONST_MAGNITUDE};
use mcapi::program::{Op, Program, UnrollConfig};
use mcapi::types::{EndpointAddr, Port, ReqId, VarId};
use std::collections::HashMap;

/// Lower a parsed file to a compiled, validated [`Program`] under the
/// default [`UnrollConfig`].
pub fn lower(file: &ast::File) -> Result<Program, FrontendError> {
    lower_with(file, &UnrollConfig::default())
}

/// [`lower`] with explicit loop-unroll bounds (how the `// unroll:`
/// header directive and the CLI's `--unroll` flag reach the compiler).
pub fn lower_with(file: &ast::File, unroll: &UnrollConfig) -> Result<Program, FrontendError> {
    let err = |span: Span, message: String| Err(FrontendError::Lower(LowerError { span, message }));
    if file.threads.is_empty() {
        return err(file.name.span, "program declares no threads".to_string());
    }

    let mut b = ProgramBuilder::new(file.name.node.clone());
    // Pass 1: declare every thread so destinations can resolve forward.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut tids = Vec::with_capacity(file.threads.len());
    for t in &file.threads {
        let tid = b.thread(t.name.node.clone());
        by_name.entry(t.name.node.as_str()).or_default().push(tid);
        tids.push(tid);
    }

    // Pass 2: declarations and statements.
    for (t, &tid) in file.threads.iter().zip(&tids) {
        for p in &t.ports {
            b.port(tid, port_number(p)?);
        }
        let mut vars: HashMap<&str, VarId> = HashMap::new();
        for v in &t.vars {
            if vars.contains_key(v.node.as_str()) {
                return err(v.span, format!("duplicate variable `{}`", v.node));
            }
            vars.insert(v.node.as_str(), b.fresh_var(tid));
        }
        let mut reqs: HashMap<&str, ReqId> = HashMap::new();
        for r in &t.reqs {
            if reqs.contains_key(r.node.as_str()) {
                return err(r.span, format!("duplicate request `{}`", r.node));
            }
            if vars.contains_key(r.node.as_str()) {
                return err(
                    r.span,
                    format!("`{}` is already declared as a variable", r.node),
                );
            }
            reqs.insert(r.node.as_str(), b.fresh_req(tid));
        }
        let ctx = Ctx {
            vars: &vars,
            reqs: &reqs,
            by_name: &by_name,
            num_threads: file.threads.len(),
        };
        let ops = lower_body(&t.body, &ctx)?;
        for op in ops {
            b.push_op(tid, op);
        }
    }
    b.build_with(unroll).map_err(FrontendError::Invalid)
}

struct Ctx<'a> {
    vars: &'a HashMap<&'a str, VarId>,
    reqs: &'a HashMap<&'a str, ReqId>,
    by_name: &'a HashMap<&'a str, Vec<usize>>,
    num_threads: usize,
}

impl Ctx<'_> {
    fn var(&self, name: &ast::Spanned<String>) -> Result<VarId, FrontendError> {
        self.vars.get(name.node.as_str()).copied().ok_or_else(|| {
            let hint = if self.reqs.contains_key(name.node.as_str()) {
                " (it is declared as a request)"
            } else {
                " (declare it with `var`)"
            };
            FrontendError::Lower(LowerError {
                span: name.span,
                message: format!("unknown variable `{}`{hint}", name.node),
            })
        })
    }

    fn req(&self, name: &ast::Spanned<String>) -> Result<ReqId, FrontendError> {
        self.reqs.get(name.node.as_str()).copied().ok_or_else(|| {
            let hint = if self.vars.contains_key(name.node.as_str()) {
                " (it is declared as a variable)"
            } else {
                " (declare it with `req`)"
            };
            FrontendError::Lower(LowerError {
                span: name.span,
                message: format!("unknown request `{}`{hint}", name.node),
            })
        })
    }

    fn dest(&self, d: &ast::Dest) -> Result<EndpointAddr, FrontendError> {
        let node = match &d.thread {
            ast::DestThread::Index(i) => {
                if i.node < 0 || i.node as usize >= self.num_threads {
                    return Err(FrontendError::Lower(LowerError {
                        span: i.span,
                        message: format!(
                            "thread index {} out of range (program has {} threads)",
                            i.node, self.num_threads
                        ),
                    }));
                }
                i.node as usize
            }
            ast::DestThread::Name(n) => {
                match self.by_name.get(n.node.as_str()).map(Vec::as_slice) {
                    Some([tid]) => *tid,
                    Some(_) => {
                        return Err(FrontendError::Lower(LowerError {
                            span: n.span,
                            message: format!(
                                "thread name `{}` is ambiguous; use a numeric index",
                                n.node
                            ),
                        }))
                    }
                    None => {
                        return Err(FrontendError::Lower(LowerError {
                            span: n.span,
                            message: format!("unknown thread `{}`", n.node),
                        }))
                    }
                }
            }
        };
        Ok(EndpointAddr::new(node, port_number(&d.port)?))
    }
}

fn port_number(p: &ast::Spanned<i64>) -> Result<Port, FrontendError> {
    u16::try_from(p.node).map_err(|_| {
        FrontendError::Lower(LowerError {
            span: p.span,
            message: format!("port {} out of range (0..=65535)", p.node),
        })
    })
}

fn lower_body(body: &[ast::Stmt], ctx: &Ctx<'_>) -> Result<Vec<Op>, FrontendError> {
    body.iter().map(|s| lower_stmt(s, ctx)).collect()
}

fn lower_stmt(stmt: &ast::Stmt, ctx: &Ctx<'_>) -> Result<Op, FrontendError> {
    Ok(match &stmt.kind {
        ast::StmtKind::Send { dest, value } => Op::Send {
            to: ctx.dest(dest)?,
            value: lower_expr(value, ctx)?,
        },
        ast::StmtKind::SendI { dest, value, req } => Op::SendI {
            to: ctx.dest(dest)?,
            value: lower_expr(value, ctx)?,
            req: ctx.req(req)?,
        },
        ast::StmtKind::Recv { var, port } => Op::Recv {
            port: port_number(port)?,
            var: ctx.var(var)?,
        },
        ast::StmtKind::RecvI { var, req, port } => Op::RecvI {
            port: port_number(port)?,
            var: ctx.var(var)?,
            req: ctx.req(req)?,
        },
        ast::StmtKind::Wait { req } => Op::Wait { req: ctx.req(req)? },
        ast::StmtKind::Assign { var, value } => Op::Assign {
            var: ctx.var(var)?,
            expr: lower_expr(value, ctx)?,
        },
        ast::StmtKind::Assert { cond, message } => Op::Assert {
            cond: lower_cond(cond, ctx)?,
            message: message.as_ref().map(|m| m.node.clone()).unwrap_or_default(),
        },
        ast::StmtKind::If {
            cond,
            then_body,
            else_body,
        } => Op::If {
            cond: lower_cond(cond, ctx)?,
            then_ops: lower_body(then_body, ctx)?,
            else_ops: lower_body(else_body, ctx)?,
        },
        ast::StmtKind::Repeat { count, body } => {
            let n = usize::try_from(count.node).map_err(|_| {
                FrontendError::Lower(LowerError {
                    span: count.span,
                    message: format!("repeat count {} must be non-negative", count.node),
                })
            })?;
            Op::Repeat {
                count: n,
                body: lower_body(body, ctx)?,
            }
        }
    })
}

/// A constant (literal or folded offset) must sit inside the value
/// domain; the same bound is enforced by `Program::validate`, but
/// checking here keeps the caret diagnostic pointing at the source.
fn in_domain(c: i64, span: Span) -> Result<i64, FrontendError> {
    if c.unsigned_abs() > MAX_CONST_MAGNITUDE as u64 {
        Err(FrontendError::Lower(LowerError {
            span,
            message: format!(
                "constant {c} outside the value domain (|c| <= 2^40 = {MAX_CONST_MAGNITUDE})"
            ),
        }))
    } else {
        Ok(c)
    }
}

fn lower_expr(e: &ast::Expr, ctx: &Ctx<'_>) -> Result<Expr, FrontendError> {
    Ok(match e {
        ast::Expr::Const(c) => Expr::Const(in_domain(c.node, c.span)?),
        ast::Expr::Var(v) => Expr::Var(ctx.var(v)?),
        ast::Expr::Add(inner, c) => {
            let folded = lower_expr(inner, ctx)?.plus(in_domain(c.node, c.span)?);
            // Folding in-range offsets can still leave the domain
            // (`v + 2^40 + 2^40`); reject at the offset that overflowed.
            if folded.max_abs_const() > MAX_CONST_MAGNITUDE as u64 {
                return Err(FrontendError::Lower(LowerError {
                    span: c.span,
                    message: format!(
                        "constant offsets fold outside the value domain \
                         (|c| <= 2^40 = {MAX_CONST_MAGNITUDE})"
                    ),
                }));
            }
            folded
        }
    })
}

fn lower_cond(c: &ast::Cond, ctx: &Ctx<'_>) -> Result<Cond, FrontendError> {
    Ok(match c {
        ast::Cond::True => Cond::True,
        ast::Cond::False => Cond::False,
        ast::Cond::Cmp(op, a, b) => Cond::Cmp(*op, lower_expr(a, ctx)?, lower_expr(b, ctx)?),
        ast::Cond::And(a, b) => {
            Cond::And(Box::new(lower_cond(a, ctx)?), Box::new(lower_cond(b, ctx)?))
        }
        ast::Cond::Or(a, b) => {
            Cond::Or(Box::new(lower_cond(a, ctx)?), Box::new(lower_cond(b, ctx)?))
        }
        ast::Cond::Not(inner) => Cond::Not(Box::new(lower_cond(inner, ctx)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Result<Program, FrontendError> {
        lower(&parse(src).expect("syntax is fine in these tests"))
    }

    #[test]
    fn lowers_a_two_thread_exchange() {
        let p = lower_src(
            r#"program demo {
                 thread server {
                   var request;
                   request = recv(0);
                   send(client:0, request + 1);
                 }
                 thread client {
                   var reply;
                   send(server:0, 41);
                   reply = recv(0);
                   assert(reply == 42, "ping+1");
                 }
               }"#,
        )
        .unwrap();
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.threads[0].num_vars, 1);
        assert_eq!(
            p.threads[1].ops[0],
            Op::Send {
                to: EndpointAddr::new(0, 0),
                value: Expr::Const(41)
            }
        );
        // Behaviourally: the exchange runs clean.
        let out = mcapi::runtime::execute_random(&p, mcapi::types::DeliveryModel::Unordered, 0);
        assert!(out.trace.is_complete());
        assert!(out.violation().is_none());
    }

    #[test]
    fn unknown_variable_points_at_use_site() {
        let src = "program p { thread t0 { x = 1; } }";
        let e = lower_src(src).unwrap_err();
        let FrontendError::Lower(l) = e else {
            panic!("{e:?}")
        };
        assert_eq!(&src[l.span.start..l.span.end], "x");
        assert!(l.message.contains("unknown variable `x`"));
    }

    #[test]
    fn request_and_variable_namespaces_are_distinct() {
        let e = lower_src("program p { thread t0 { var a; wait(a); } }").unwrap_err();
        assert!(e.to_string().contains("declared as a variable"), "{e}");
        let e = lower_src("program p { thread t0 { req r; r = 1; } }").unwrap_err();
        assert!(e.to_string().contains("declared as a request"), "{e}");
    }

    #[test]
    fn repeat_lowers_and_unrolls() {
        let p = lower_src(
            "program p { thread t0 { var x; x = 0;
               repeat 4 { x = x + 1; }
             } }",
        )
        .unwrap();
        assert_eq!(
            p.threads[0].ops[1],
            Op::Repeat {
                count: 4,
                body: vec![Op::Assign {
                    var: VarId(0),
                    expr: Expr::AddConst(Box::new(Expr::Var(VarId(0))), 1),
                }],
            }
        );
        // init + 4 unrolled assigns.
        assert_eq!(p.threads[0].code.len(), 5);
        let out = mcapi::runtime::execute_random(&p, mcapi::types::DeliveryModel::Unordered, 0);
        assert_eq!(out.final_state.threads[0].locals[0], 4);
    }

    #[test]
    fn negative_repeat_count_is_rejected() {
        // The grammar only admits a bare integer literal, so `-1` is a
        // parse error; a negative count in a hand-built AST is a lower
        // error (the `usize::try_from` guard).
        let e = parse("program p { thread t0 { repeat -1 { } } }").unwrap_err();
        assert!(e.expected.contains("iteration count"), "{e:?}");
        use crate::ast::{Spanned, Stmt, StmtKind};
        let file = crate::ast::File {
            name: Spanned::new("p".into(), Span::new(0, 1)),
            threads: vec![crate::ast::ThreadDecl {
                name: Spanned::new("t0".into(), Span::new(0, 1)),
                ports: vec![],
                vars: vec![],
                reqs: vec![],
                body: vec![Stmt {
                    kind: StmtKind::Repeat {
                        count: Spanned::new(-1, Span::new(0, 1)),
                        body: vec![],
                    },
                    span: Span::new(0, 1),
                }],
            }],
        };
        let e = lower(&file).unwrap_err();
        assert!(e.to_string().contains("non-negative"), "{e}");
    }

    #[test]
    fn repeat_count_over_the_default_bound_is_a_validation_error() {
        let e = lower_src("program p { thread t0 { var x; repeat 100 { x = 1; } } }").unwrap_err();
        assert!(matches!(
            e,
            FrontendError::Invalid(mcapi::error::McapiError::Validation { .. })
        ));
        // An explicit config unlocks it.
        let f = parse("program p { thread t0 { var x; repeat 100 { x = 1; } } }").unwrap();
        let p = lower_with(&f, &mcapi::program::UnrollConfig::with_max_count(128)).unwrap();
        assert_eq!(p.threads[0].code.len(), 100);
    }

    #[test]
    fn out_of_domain_constants_point_at_the_literal() {
        let big = MAX_CONST_MAGNITUDE + 1;
        let src = format!("program p {{ thread t0 {{ var x; x = {big}; }} }}");
        let e = lower_src(&src).unwrap_err();
        let FrontendError::Lower(l) = e else {
            panic!("{e:?}")
        };
        assert_eq!(&src[l.span.start..l.span.end], &big.to_string());
        assert!(l.message.contains("value domain"), "{}", l.message);
        // Folding two in-range offsets outside the domain is caught too.
        let b = MAX_CONST_MAGNITUDE;
        let src = format!("program p {{ thread t0 {{ var x; x = x + {b} + {b}; }} }}");
        let e = lower_src(&src).unwrap_err();
        assert!(e.to_string().contains("fold"), "{e}");
        // The boundary itself is accepted.
        let src = format!("program p {{ thread t0 {{ var x; x = {b}; x = x - {b}; }} }}");
        assert!(lower_src(&src).is_ok());
    }

    #[test]
    fn ambiguous_thread_name_is_rejected() {
        let e = lower_src("program p { thread a { send(a:0, 1); } thread a { x = recv(0); } }")
            .unwrap_err();
        assert!(e.to_string().contains("ambiguous"), "{e}");
    }

    #[test]
    fn thread_index_out_of_range_is_a_lower_error() {
        let e = lower_src("program p { thread t0 { send(3:0, 1); } }").unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
    }

    #[test]
    fn builder_validation_still_applies() {
        // Port 5 is never declared on t1: syntax and lowering are fine,
        // the reused Program::validate pass rejects it.
        let e = lower_src(
            "program p { thread t0 { send(t1:5, 1); } thread t1 { var x; x = recv(0); } }",
        )
        .unwrap_err();
        assert!(matches!(
            e,
            FrontendError::Invalid(mcapi::error::McapiError::Validation { .. })
        ));
    }

    #[test]
    fn declaration_order_fixes_slot_numbers() {
        let p = lower_src(
            "program p { thread t0 { var b, a; req s, r; a = 1; b = 2;
               send_i(t0:0, 1, r); x = recv(0); } thread t1 { } }",
        );
        // `x` is undeclared — but slots for b,a and s,r were allocated in
        // declaration order before the failure.
        assert!(p.is_err());
        let p = lower_src("program p { thread t0 { var b, a; a = 1; b = 2; } }").unwrap();
        assert_eq!(
            p.threads[0].ops[0],
            Op::Assign {
                var: VarId(1),
                expr: Expr::Const(1)
            }
        );
        assert_eq!(
            p.threads[0].ops[1],
            Op::Assign {
                var: VarId(0),
                expr: Expr::Const(2)
            }
        );
    }
}
