//! Source-level lint: the static analysis (`crate::analysis`) mapped
//! back onto MCAPI-lite spans, plus frontend-only unused-declaration
//! warnings.
//!
//! The analysis works on compiled [`mcapi::program::Program`]s and
//! reports sites as `(thread, pc, origin ordinal)`. Lowering is 1
//! statement ↔ 1 [`mcapi::program::Op`], so a pre-order walk of each
//! thread's statement tree assigns spans in exactly the ordinal space
//! [`mcapi::program::Thread::origins`] indexes into — the finding's
//! `op` field is an index into that span table, and the caret renderer
//! ([`crate::diag::render_level`]) does the rest.
//!
//! Corpus files declare the findings they exist to demonstrate with
//! `// expect-lint: <substring>` header directives
//! ([`crate::directives::expect_lints`]); [`check_expectations`] splits
//! a report into expected findings (fine), unexpected ones (fail), and
//! expectations nothing matched (also fail — the corpus claim went
//! stale).

use crate::ast::{Cond, Expr, Stmt, StmtKind, ThreadDecl};
use crate::diag::{render_level, Span};
use crate::lower;
use crate::parser;
use analysis::{FindingKind, Severity};
use mcapi::error::McapiError;
use mcapi::program::UnrollConfig;
use std::collections::HashSet;

/// One lint finding, located in the source text.
#[derive(Clone, Debug)]
pub struct LintFinding {
    /// Error or warning.
    pub severity: Severity,
    /// Defect class.
    pub kind: FindingKind,
    /// Source location, when the finding maps to one (analysis findings
    /// on programs the frontend lowered always do).
    pub span: Option<Span>,
    /// The analysis message (site-prefixed, self-contained).
    pub message: String,
    /// Full caret diagnostic, ready to print.
    pub rendered: String,
}

/// Everything one lint run over a file produced, in source order.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// The findings, sorted by source position.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Error-class findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Warning-class findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }
}

/// Lint MCAPI-lite source: parse, lower under `unroll`, run the static
/// analysis, add unused-declaration warnings, and map every finding back
/// to a span. Fails only when the file does not compile (same error
/// shapes as [`crate::parse_program_with`]).
pub fn lint_source(source: &str, unroll: &UnrollConfig) -> Result<LintReport, McapiError> {
    let file = parser::parse(source).map_err(|e| McapiError::Parse(e.diagnostic(source)))?;
    let program = match lower::lower_with(&file, unroll) {
        Ok(p) => p,
        Err(crate::FrontendError::Parse(e)) => return Err(McapiError::Parse(e.diagnostic(source))),
        Err(crate::FrontendError::Lower(e)) => return Err(McapiError::Parse(e.diagnostic(source))),
        Err(crate::FrontendError::Invalid(e)) => return Err(e),
    };

    let spans: Vec<Vec<Span>> = file
        .threads
        .iter()
        .map(|t| {
            let mut table = Vec::new();
            stmt_spans(&t.body, &mut table);
            table
        })
        .collect();

    let mut findings = Vec::new();
    for f in analysis::analyze(&program).findings {
        let span =
            f.op.and_then(|op| spans.get(f.thread)?.get(op as usize))
                .copied();
        findings.push(located(source, f.severity, f.kind, span, f.message));
    }
    for t in &file.threads {
        unused_decl_findings(source, t, &mut findings);
    }
    // Source order; span-less findings (none today) sort last.
    findings.sort_by_key(|f| f.span.map_or(usize::MAX, |s| s.start));
    Ok(LintReport { findings })
}

/// How a [`LintReport`] fared against a file's `// expect-lint:` headers.
#[derive(Clone, Debug, Default)]
pub struct Expectations {
    /// Expected substrings no finding matched (the header went stale).
    pub missing: Vec<String>,
    /// Error findings no expectation covers.
    pub unexpected_errors: usize,
    /// Warning findings no expectation covers.
    pub unexpected_warnings: usize,
    /// Findings covered by an expectation.
    pub matched: usize,
}

impl Expectations {
    /// Does this outcome pass? Errors must always be declared; warnings
    /// only under `deny_warnings`; stale expectations always fail.
    pub fn pass(&self, deny_warnings: bool) -> bool {
        self.missing.is_empty()
            && self.unexpected_errors == 0
            && (!deny_warnings || self.unexpected_warnings == 0)
    }
}

/// Match findings against expected-message substrings. One expectation
/// may cover several findings (an unrolled loop can repeat a site); a
/// finding covered by any expectation is expected.
pub fn check_expectations(report: &LintReport, expected: &[String]) -> Expectations {
    let mut out = Expectations::default();
    for want in expected {
        if !report.findings.iter().any(|f| f.message.contains(want)) {
            out.missing.push(want.clone());
        }
    }
    for f in &report.findings {
        if expected.iter().any(|want| f.message.contains(want)) {
            out.matched += 1;
        } else {
            match f.severity {
                Severity::Error => out.unexpected_errors += 1,
                Severity::Warning => out.unexpected_warnings += 1,
            }
        }
    }
    out
}

/// Pre-order statement spans: the same ordinal assignment as
/// `mcapi::program::count_ops` / `flatten` (each statement takes the
/// next ordinal, then its nested bodies, then-arm before else-arm).
fn stmt_spans(body: &[Stmt], out: &mut Vec<Span>) {
    for s in body {
        out.push(s.span);
        match &s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                stmt_spans(then_body, out);
                stmt_spans(else_body, out);
            }
            StmtKind::Repeat { body, .. } => stmt_spans(body, out),
            _ => {}
        }
    }
}

fn located(
    source: &str,
    severity: Severity,
    kind: FindingKind,
    span: Option<Span>,
    message: String,
) -> LintFinding {
    let rendered = match span {
        Some(s) => render_level(source, s, &severity.to_string(), &message).rendered,
        None => format!("{severity}: {message}"),
    };
    LintFinding {
        severity,
        kind,
        span,
        message,
        rendered,
    }
}

/// Name usage over one thread's statement tree, for the
/// unused-declaration warnings only the frontend can produce (the
/// compiled program has already erased names and allocated slots).
/// Receive targets are tracked separately from assignments: a variable
/// that only collects `recv` payloads is the idiomatic message sink (the
/// receive synchronises even when the value is discarded) and is not
/// flagged, whereas a variable that is only ever *assigned* and never
/// read is dead computation.
#[derive(Default)]
struct Usage<'a> {
    var_reads: HashSet<&'a str>,
    var_assigns: HashSet<&'a str>,
    var_recvs: HashSet<&'a str>,
    req_bound: HashSet<&'a str>,
    req_waited: HashSet<&'a str>,
}

impl<'a> Usage<'a> {
    fn expr(&mut self, e: &'a Expr) {
        match e {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                self.var_reads.insert(v.node.as_str());
            }
            Expr::Add(inner, _) => self.expr(inner),
        }
    }

    fn cond(&mut self, c: &'a Cond) {
        match c {
            Cond::True | Cond::False => {}
            Cond::Cmp(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                self.cond(a);
                self.cond(b);
            }
            Cond::Not(inner) => self.cond(inner),
        }
    }

    fn stmts(&mut self, body: &'a [Stmt]) {
        for s in body {
            match &s.kind {
                StmtKind::Send { value, .. } => self.expr(value),
                StmtKind::SendI { value, req, .. } => {
                    self.expr(value);
                    self.req_bound.insert(req.node.as_str());
                }
                StmtKind::Recv { var, .. } => {
                    self.var_recvs.insert(var.node.as_str());
                }
                StmtKind::RecvI { var, req, .. } => {
                    self.var_recvs.insert(var.node.as_str());
                    self.req_bound.insert(req.node.as_str());
                }
                StmtKind::Wait { req } => {
                    self.req_waited.insert(req.node.as_str());
                }
                StmtKind::Assign { var, value } => {
                    self.var_assigns.insert(var.node.as_str());
                    self.expr(value);
                }
                StmtKind::Assert { cond, .. } => self.cond(cond),
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.cond(cond);
                    self.stmts(then_body);
                    self.stmts(else_body);
                }
                StmtKind::Repeat { body, .. } => self.stmts(body),
            }
        }
    }
}

fn unused_decl_findings(source: &str, t: &ThreadDecl, findings: &mut Vec<LintFinding>) {
    let mut usage = Usage::default();
    usage.stmts(&t.body);
    let thread = &t.name.node;
    for v in &t.vars {
        let name = v.node.as_str();
        if usage.var_reads.contains(name) || usage.var_recvs.contains(name) {
            continue; // read somewhere, or an (idiomatic) message sink
        }
        let what = if usage.var_assigns.contains(name) {
            "is assigned but its value is never read"
        } else {
            "is never used"
        };
        findings.push(located(
            source,
            Severity::Warning,
            FindingKind::UnusedVariable,
            Some(v.span),
            format!("thread `{thread}`: variable `{name}` {what}"),
        ));
    }
    for r in &t.reqs {
        let name = r.node.as_str();
        let what = match (
            usage.req_bound.contains(name),
            usage.req_waited.contains(name),
        ) {
            (_, true) => continue,
            (false, false) => "is never used",
            (true, false) => "is bound by send_i/recv_i but never waited on",
        };
        findings.push(located(
            source,
            Severity::Warning,
            FindingKind::UnusedRequest,
            Some(r.span),
            format!("thread `{thread}`: request `{name}` {what}"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> LintReport {
        lint_source(src, &UnrollConfig::default()).unwrap()
    }

    #[test]
    fn orphan_receive_carets_the_receive_statement() {
        let src = "program p {\n  thread t0 {\n    var x;\n    x = recv(0);\n  }\n}\n";
        let report = lint(src);
        let orphan = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::OrphanReceive)
            .unwrap();
        assert_eq!(orphan.severity, Severity::Error);
        let span = orphan.span.unwrap();
        assert_eq!(&src[span.start..span.end], "x = recv(0);");
        assert!(
            orphan.rendered.starts_with("error: "),
            "{}",
            orphan.rendered
        );
        assert!(
            orphan.rendered.contains("x = recv(0);"),
            "{}",
            orphan.rendered
        );
        assert!(orphan.rendered.contains('^'), "{}", orphan.rendered);
    }

    #[test]
    fn findings_inside_branches_and_loops_map_to_their_statements() {
        // The dead-arm branch sits after a repeat, so its ordinal is only
        // right if the span table mirrors flatten's pre-order exactly.
        let src = "program p { thread t0 { var x;\n\
                     x = 0;\n\
                     repeat 3 { x = x + 1; }\n\
                     if (x >= 1) { x = 9; } else { x = 8; }\n\
                     assert(x == 9, \"nine\");\n\
                   } }";
        let report = lint(src);
        let arm = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::InfeasibleArm)
            .unwrap();
        let span = arm.span.unwrap();
        assert!(src[span.start..span.end].starts_with("if (x >= 1)"));
        let taut = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::AssertTautology)
            .unwrap();
        let span = taut.span.unwrap();
        assert!(src[span.start..span.end].starts_with("assert(x == 9"));
    }

    #[test]
    fn unused_declarations_warn_at_the_declaration() {
        let src = "program p { thread a { var x, y; req r, s;\n\
                     x = 1;\n\
                     send_i(b:0, x, r);\n\
                   } thread b { var z; z = recv(0); send(a:9, z); } }";
        // `b` sends to a:9 (undeclared port) — keep it valid: use port 0.
        let src = &src.replace("a:9", "a:0");
        // a: x is written and read (send payload); y never used; r bound
        // but never waited; s never used. b: z read by the send.
        let report = lint_source(src, &UnrollConfig::default()).unwrap();
        let msgs: Vec<&str> = report
            .findings
            .iter()
            .filter(|f| {
                matches!(
                    f.kind,
                    FindingKind::UnusedVariable | FindingKind::UnusedRequest
                )
            })
            .map(|f| f.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("variable `y` is never used"), "{msgs:?}");
        assert!(
            msgs[1].contains("request `r` is bound by send_i/recv_i but never waited on"),
            "{msgs:?}"
        );
        assert!(msgs[2].contains("request `s` is never used"), "{msgs:?}");
        // Each caret points at the declared name.
        for f in &report.findings {
            if f.kind == FindingKind::UnusedVariable {
                let span = f.span.unwrap();
                assert_eq!(&src[span.start..span.end], "y");
            }
        }
    }

    #[test]
    fn message_sinks_are_fine_but_dead_assignments_warn() {
        // `x` only collects a receive: consuming the message is the point,
        // no warning. `y` is computed and discarded: dead code.
        let src =
            "program p { thread a { var x, y; x = recv(0); y = 7; } thread b { send(a:0, 1); } }";
        let report = lint(src);
        let unused: Vec<&LintFinding> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::UnusedVariable)
            .collect();
        assert_eq!(unused.len(), 1, "{:?}", report.findings);
        assert!(
            unused[0]
                .message
                .contains("variable `y` is assigned but its value is never read"),
            "{}",
            unused[0].message
        );
        assert_eq!(unused[0].severity, Severity::Warning);
    }

    #[test]
    fn a_clean_program_has_no_findings() {
        let src = "program p {\n\
                     thread a { var x; send(b:0, 1); x = recv(0); assert(x == 2, \"two\"); }\n\
                     thread b { var y; y = recv(0); send(a:0, y + 1); }\n\
                   }";
        let report = lint(src);
        // The assert is value-dependent, the exchange matched: nothing to
        // say. (`assert(x == 2)` is not a static tautology: x flows from
        // a receive.)
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.errors() + report.warnings(), 0);
    }

    #[test]
    fn expectations_split_matched_missing_and_unexpected() {
        let src = "program p { thread t0 { var x, y; x = recv(0); y = 1; } }";
        let report = lint(src);
        // Findings: orphan receive (error) + dead assignment to y (warning).
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1);

        let exp = check_expectations(&report, &[]);
        assert_eq!(exp.unexpected_errors, 1);
        assert_eq!(exp.unexpected_warnings, 1);
        assert!(!exp.pass(false));

        let both = vec!["can never be matched".to_string(), "never read".to_string()];
        let exp = check_expectations(&report, &both);
        assert_eq!(exp.matched, 2);
        assert!(exp.missing.is_empty());
        assert!(exp.pass(true));

        let stale = vec!["a finding that does not exist".to_string()];
        let exp = check_expectations(&report, &stale);
        assert_eq!(exp.missing.len(), 1);
        assert!(!exp.pass(false));
    }
}
