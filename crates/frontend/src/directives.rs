//! `// key: value` header directives.
//!
//! Corpus files carry machine-readable metadata in their leading comment
//! block — most importantly the verdict the checker is expected to
//! produce:
//!
//! ```text
//! // expect: violation
//! // delivery: unordered
//! program "fig1-assert" { … }
//! ```
//!
//! Unknown keys and free-form comment lines are ignored, so headers can
//! also hold prose.

use mcapi::types::DeliveryModel;
use std::fmt;

/// The verdict a corpus file expects from `mcapi-smc check`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expect {
    /// No reachable assertion failure or deadlock.
    Safe,
    /// The checker must report a violation.
    Violation,
    /// The checker is allowed to give up (budget-bound scenarios).
    Unknown,
}

impl fmt::Display for Expect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Expect::Safe => "safe",
            Expect::Violation => "violation",
            Expect::Unknown => "unknown",
        })
    }
}

/// Parsed header directives of one source file.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Directives {
    /// `// expect: safe|violation|unknown`
    pub expect: Option<Expect>,
    /// `// delivery: unordered|pairwise-fifo|zero-delay`
    pub delivery: Option<DeliveryModel>,
    /// `// unroll: N` — sets the loop-unroll iteration bound for this
    /// file, replacing the default of 64 in either direction (the CLI's
    /// `--unroll` flag takes precedence).
    pub unroll: Option<usize>,
}

/// Parse a delivery-model tag (the CLI's spellings are accepted too).
pub fn parse_delivery(tag: &str) -> Option<DeliveryModel> {
    match tag {
        "unordered" => Some(DeliveryModel::Unordered),
        "fifo" | "pairwise-fifo" => Some(DeliveryModel::PairwiseFifo),
        "zero" | "zero-delay" => Some(DeliveryModel::ZeroDelay),
        _ => None,
    }
}

/// The leading comment block of `src`: every line before the first line
/// that is neither blank nor a `//` comment, with trailing blank lines
/// dropped. Returned verbatim (used by `fmt` to preserve headers).
pub fn leading_comment_block(src: &str) -> Vec<&str> {
    let mut block: Vec<&str> = Vec::new();
    for line in src.lines() {
        let t = line.trim_start();
        if t.starts_with("//") || t.is_empty() {
            block.push(line);
        } else {
            break;
        }
    }
    while block.last().is_some_and(|l| l.trim().is_empty()) {
        block.pop();
    }
    block
}

/// Extract directives from the leading comment block.
pub fn directives(src: &str) -> Directives {
    let mut d = Directives::default();
    for line in leading_comment_block(src) {
        let Some(rest) = line.trim_start().strip_prefix("//") else {
            continue;
        };
        let Some((key, value)) = rest.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match key.trim() {
            "expect" => {
                d.expect = match value {
                    "safe" => Some(Expect::Safe),
                    "violation" => Some(Expect::Violation),
                    "unknown" => Some(Expect::Unknown),
                    _ => d.expect,
                }
            }
            "delivery" => d.delivery = parse_delivery(value).or(d.delivery),
            "unroll" => d.unroll = value.parse().ok().or(d.unroll),
            _ => {}
        }
    }
    d
}

/// Every `// expect-lint: <substring>` header line, in order. Each names
/// a finding the file exists to demonstrate: `mcapi-smc lint` (and the
/// corpus golden test) requires some finding's message to contain the
/// substring, and flags findings no header covers.
pub fn expect_lints(src: &str) -> Vec<String> {
    leading_comment_block(src)
        .iter()
        .filter_map(|line| line.trim_start().strip_prefix("//"))
        .filter_map(|rest| rest.split_once(':'))
        .filter(|(key, _)| key.trim() == "expect-lint")
        .map(|(_, value)| value.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_expect_lint_headers_in_order() {
        let src = "// expect: safe\n\
                   // expect-lint: can never be matched\n\
                   // expect-lint: never waited on\n\
                   //expect-lint:\n\
                   program p {}";
        assert_eq!(
            expect_lints(src),
            vec!["can never be matched", "never waited on"]
        );
        // `expect:` and `expect-lint:` are distinct keys.
        assert_eq!(directives(src).expect, Some(Expect::Safe));
        assert!(expect_lints("program p {}").is_empty());
    }

    #[test]
    fn reads_expect_and_delivery() {
        let d = directives(
            "// A fine program.\n// expect: violation\n// delivery: zero-delay\nprogram p {}",
        );
        assert_eq!(d.expect, Some(Expect::Violation));
        assert_eq!(d.delivery, Some(DeliveryModel::ZeroDelay));
        assert_eq!(d.unroll, None);
    }

    #[test]
    fn reads_unroll_bound() {
        let d = directives("// unroll: 200\nprogram p {}");
        assert_eq!(d.unroll, Some(200));
        // Malformed values are ignored, not a parse failure.
        let d = directives("// unroll: lots\nprogram p {}");
        assert_eq!(d.unroll, None);
    }

    #[test]
    fn stops_at_first_code_line() {
        let d = directives("program p {}\n// expect: safe\n");
        assert_eq!(d.expect, None);
    }

    #[test]
    fn ignores_unknown_keys_and_prose() {
        let d = directives("// note: race between t1 and t2\n// expect: safe\nprogram p {}");
        assert_eq!(d.expect, Some(Expect::Safe));
        assert_eq!(d.delivery, None);
    }

    #[test]
    fn comment_block_drops_trailing_blanks() {
        let block = leading_comment_block("// a\n\n// b\n\n\nprogram p {}");
        assert_eq!(block, vec!["// a", "", "// b"]);
    }
}
