//! Spans and source-located diagnostics.
//!
//! Every error the frontend produces carries a byte-offset [`Span`] into
//! the original source; [`render`] turns (source, span, message) into the
//! caret diagnostic the CLI prints:
//!
//! ```text
//! error: expected `;`, found `}`
//!  --> line 5, col 12
//!   |
//! 5 |     x = recv(0)
//!   |                ^
//! ```

use mcapi::error::SourceDiagnostic;
use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A syntax error: what the parser wanted vs. what it saw.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Location of the offending token.
    pub span: Span,
    /// Human description of the expected token class, e.g. `` "`;`" ``.
    pub expected: String,
    /// Human description of the token actually found.
    pub found: String,
}

impl ParseError {
    /// One-line summary (no source context).
    pub fn message(&self) -> String {
        format!("expected {}, found {}", self.expected, self.found)
    }

    /// Full caret diagnostic against `source`.
    pub fn diagnostic(&self, source: &str) -> SourceDiagnostic {
        render(source, self.span, &self.message())
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message())
    }
}

/// A lowering error: syntactically fine, semantically not (unknown
/// variable, out-of-range port, ambiguous thread name, …).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LowerError {
    /// Location of the offending name or literal.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl LowerError {
    /// Full caret diagnostic against `source`.
    pub fn diagnostic(&self, source: &str) -> SourceDiagnostic {
        render(source, self.span, &self.message)
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Any frontend failure: syntax, lowering, or the reused
/// [`mcapi::program::Program::validate`] pass.
#[derive(Clone, PartialEq, Debug)]
pub enum FrontendError {
    /// Tokenisation or parsing failed.
    Parse(ParseError),
    /// Name resolution / range checking failed.
    Lower(LowerError),
    /// The lowered program failed `ProgramBuilder::build` validation.
    Invalid(mcapi::error::McapiError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => e.fmt(f),
            FrontendError::Lower(e) => e.fmt(f),
            FrontendError::Invalid(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FrontendError {}

/// 1-based (line, col) of a byte offset, counting columns in characters.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(source.len());
    let before = &source[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let col = source[line_start..offset].chars().count() + 1;
    (line, col)
}

/// Render a caret diagnostic for `span` in `source`.
pub fn render(source: &str, span: Span, message: &str) -> SourceDiagnostic {
    render_level(source, span, "error", message)
}

/// [`render`] with an explicit severity label (`"error"`, `"warning"`),
/// used by the lint pass whose findings are not all fatal.
pub fn render_level(source: &str, span: Span, level: &str, message: &str) -> SourceDiagnostic {
    let (line, col) = line_col(source, span.start);
    let line_text = source.lines().nth(line - 1).unwrap_or("");
    // Caret width: span length clamped to the rest of the line, min 1.
    let rest = line_text.chars().count().saturating_sub(col - 1);
    let width = (span.end.saturating_sub(span.start)).clamp(1, rest.max(1));
    let gutter = line.to_string();
    let pad = " ".repeat(gutter.len());
    let rendered = format!(
        "{level}: {message}\n\
         {pad} --> line {line}, col {col}\n\
         {pad} |\n\
         {gutter} | {line_text}\n\
         {pad} | {caret}",
        caret = " ".repeat(col - 1) + &"^".repeat(width),
    );
    SourceDiagnostic {
        line,
        col,
        message: message.to_string(),
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_from_one() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    fn render_underlines_the_span() {
        let src = "program x {\n  thread t0 {\n}";
        let d = render(src, Span::new(14, 20), "expected `}`");
        assert_eq!(d.line, 2);
        assert_eq!(d.col, 3);
        assert!(d.rendered.contains("2 |   thread t0 {"));
        assert!(d.rendered.contains("|   ^^^^^^"), "{}", d.rendered);
    }

    #[test]
    fn render_clamps_past_end_of_input() {
        let src = "program";
        let d = render(src, Span::new(7, 7), "unexpected end of input");
        assert_eq!((d.line, d.col), (1, 8));
        assert!(d.rendered.contains('^'));
    }
}
