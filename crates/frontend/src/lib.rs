//! # frontend — the MCAPI-lite textual language
//!
//! The rest of the workspace builds programs through
//! [`mcapi::builder::ProgramBuilder`] or the hardcoded workload grid.
//! This crate adds a small textual language — **MCAPI-lite** — covering
//! everything [`mcapi::program::Op`] supports (threads, ports, `send` /
//! `send_i` / `recv` / `recv_i` with expressions, `wait`, assignment,
//! `assert`, `if`/`else`), so the checker and the portfolio driver can be
//! pointed at arbitrary `.mcapi` files.
//!
//! The pipeline: [`lexer`] → [`parser`] (spanned
//! [`ParseError`]s rendered with a source-line caret) → [`ast`] →
//! [`mod@lower`] (onto `ProgramBuilder`, reusing its validation) →
//! [`mcapi::program::Program`]. The [`mod@pretty`] printer inverts it:
//! `lower(parse(pretty(p)))` is structurally equal to `p` for any
//! builder-built program.
//!
//! ```
//! let source = r#"
//! program demo {
//!   thread server {
//!     var request;
//!     request = recv(0);
//!     send(client:0, request + 1);
//!   }
//!   thread client {
//!     var reply;
//!     send(server:0, 41);
//!     reply = recv(0);
//!     assert(reply == 42, "ping+1");
//!   }
//! }
//! "#;
//! let program = frontend::parse_program(source).unwrap();
//! assert_eq!(program.threads.len(), 2);
//!
//! // Canonical form round-trips to the same program.
//! let canon = frontend::pretty(&program);
//! assert_eq!(frontend::parse_program(&canon).unwrap(), program);
//! ```
//!
//! Errors point at the source:
//!
//! ```
//! let err = frontend::parse_program("program p { thread t0 { x = recv(0) } }").unwrap_err();
//! let rendered = err.to_string();
//! assert!(rendered.contains("expected `;`"));
//! assert!(rendered.contains("--> line 1"));
//! assert!(rendered.contains('^'));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod directives;
pub mod lexer;
pub mod lint;
pub mod lower;
pub mod parser;
pub mod pretty;

pub use diag::{FrontendError, LowerError, ParseError, Span};
pub use directives::{
    directives, expect_lints, leading_comment_block, parse_delivery, Directives, Expect,
};
pub use lint::{check_expectations, lint_source, Expectations, LintFinding, LintReport};
pub use lower::{lower, lower_with};
pub use parser::parse;
pub use pretty::pretty;

use mcapi::error::McapiError;
use mcapi::program::{Program, UnrollConfig};

/// Parse and lower MCAPI-lite source into a compiled, validated
/// [`Program`]. Syntax and lowering failures arrive as
/// [`McapiError::Parse`] with a full caret diagnostic; validation
/// failures keep their usual [`McapiError::Validation`] shape.
///
/// `repeat` loops are unrolled under the file's `// unroll: N` header
/// bound when present, the default [`UnrollConfig`] otherwise. Callers
/// with an explicit bound (the CLI's `--unroll` flag) use
/// [`parse_program_with`].
pub fn parse_program(source: &str) -> Result<Program, McapiError> {
    let unroll = match directives(source).unroll {
        Some(n) => UnrollConfig::with_max_count(n),
        None => UnrollConfig::default(),
    };
    parse_program_with(source, &unroll)
}

/// [`parse_program`] with explicit loop-unroll bounds, ignoring any
/// `// unroll:` header.
pub fn parse_program_with(source: &str, unroll: &UnrollConfig) -> Result<Program, McapiError> {
    let file = parser::parse(source).map_err(|e| McapiError::Parse(e.diagnostic(source)))?;
    match lower::lower_with(&file, unroll) {
        Ok(p) => Ok(p),
        Err(FrontendError::Parse(e)) => Err(McapiError::Parse(e.diagnostic(source))),
        Err(FrontendError::Lower(e)) => Err(McapiError::Parse(e.diagnostic(source))),
        Err(FrontendError::Invalid(e)) => Err(e),
    }
}

/// Reformat MCAPI-lite source into canonical form, preserving the leading
/// comment block (where `// expect:` headers live). Idempotent:
/// `format_source(format_source(s)?)` returns the same text.
pub fn format_source(source: &str) -> Result<String, McapiError> {
    let program = parse_program(source)?;
    let header = leading_comment_block(source);
    let body = pretty(&program);
    if header.is_empty() {
        Ok(body)
    } else {
        Ok(format!("{}\n{}", header.join("\n"), body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"// expect: safe
// a demo exchange
program demo {
  thread a { var x; send(b:0, 1); x = recv(0); }
  thread b { var y; y = recv(0); send(a:0, y + 1); }
}
"#;

    #[test]
    fn format_preserves_header_and_is_idempotent() {
        let once = format_source(DEMO).unwrap();
        assert!(once.starts_with("// expect: safe\n// a demo exchange\nprogram demo {"));
        let twice = format_source(&once).unwrap();
        assert_eq!(once, twice);
        // Directives survive formatting.
        assert_eq!(directives(&once).expect, Some(Expect::Safe));
    }

    #[test]
    fn format_of_headerless_source_is_idempotent_too() {
        let src = "program p { thread t0 { var a; a = 1; } }";
        let once = format_source(src).unwrap();
        assert_eq!(once, format_source(&once).unwrap());
        assert!(once.starts_with("program p {"));
    }

    #[test]
    fn unroll_header_raises_the_bound_and_survives_fmt() {
        let src = "// unroll: 100\n// expect: safe\n\
                   program p { thread t0 { var x; x = 0; repeat 100 { x = x + 1; } } }";
        // Without the header the default bound (64) rejects the loop.
        let headerless = src.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(parse_program(&headerless).is_err());
        let p = parse_program(src).unwrap();
        assert_eq!(p.threads[0].code.len(), 101);
        // fmt preserves the header, so the formatted file still parses.
        let once = format_source(src).unwrap();
        assert!(once.starts_with("// unroll: 100\n"), "{once}");
        assert_eq!(once, format_source(&once).unwrap());
        assert_eq!(parse_program(&once).unwrap(), p);
    }

    #[test]
    fn parse_program_reports_lower_errors_as_parse_diagnostics() {
        let err = parse_program("program p { thread t0 { x = 1; } }").unwrap_err();
        let McapiError::Parse(d) = err else {
            panic!("{err:?}")
        };
        assert!(d.message.contains("unknown variable `x`"));
        assert!(d.rendered.contains("x = 1;"), "{}", d.rendered);
    }

    #[test]
    fn roundtrip_covers_every_op_shape() {
        let src = r#"
program kitchen_sink {
  thread t0 {
    port 2;
    var v0, v1;
    req r0, r1;
    send(t1:0, 7);
    send_i(t1:0, (v0 + 3), r0);
    v0 = recv(0);
    v1, r1 = recv_i(2);
    wait(r0);
    wait(r1);
    v1 = (v0 - 2);
    if ((v0 < 5 && v1 != 0)) {
      assert((v0 == 1 || v1 >= -4), "msg");
    } else {
      if (!(v0 <= 0)) {
        v0 = 9;
      }
    }
    assert(true);
    assert(false, "never");
  }
  thread t1 {
    var w0;
    w0 = recv(0);
    send(t0:0, (w0 + 1));
    send(t0:2, 0);
  }
}
"#;
        let p = parse_program(src).unwrap();
        let canon = pretty(&p);
        let p2 = parse_program(&canon).unwrap();
        assert_eq!(p, p2, "canonical form must round-trip exactly:\n{canon}");
        // And the canonical text itself is a formatting fixpoint.
        assert_eq!(canon, pretty(&p2));
    }
}
