//! Canonical MCAPI-lite rendering of a [`Program`].
//!
//! The printer is the inverse of the parser: for any builder-built
//! program `p`, `lower(parse(pretty(p)))` is structurally equal to `p`
//! (same threads, ops, counts and port sets). Canonicalisation choices:
//!
//! - Variable slot *i* prints as `v{i}`, request slot *i* as `r{i}`.
//! - Thread and program names print as bare identifiers when possible,
//!   string literals otherwise.
//! - A destination prints as `name:port` when the target thread's name is
//!   an unambiguous identifier, `index:port` otherwise.
//! - Port 0 is implicit and never printed.
//! - `And`/`Or` conditions always parenthesise, so the printed string
//!   re-parses to the identical tree.

use mcapi::expr::{Cond, Expr};
use mcapi::program::{Op, Program, Thread};
use mcapi::types::{EndpointAddr, ReqId, VarId};
use std::fmt::Write;

/// Render `program` as canonical MCAPI-lite source.
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    let dest_names: Vec<Option<String>> = program
        .threads
        .iter()
        .map(|t| {
            let unique = program.threads.iter().filter(|u| u.name == t.name).count() == 1;
            (unique && crate::lexer::is_ident(&t.name)).then(|| t.name.clone())
        })
        .collect();
    let _ = writeln!(out, "program {} {{", name_token(&program.name));
    for (i, t) in program.threads.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_thread(&mut out, t, &dest_names);
    }
    out.push_str("}\n");
    out
}

fn name_token(name: &str) -> String {
    if crate::lexer::is_ident(name) {
        name.to_string()
    } else {
        format!("\"{}\"", escape(name))
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn print_thread(out: &mut String, t: &Thread, dest_names: &[Option<String>]) {
    let _ = writeln!(out, "  thread {} {{", name_token(&t.name));
    let extra_ports: Vec<String> = t
        .ports
        .iter()
        .filter(|&&p| p != 0)
        .map(|p| p.to_string())
        .collect();
    if !extra_ports.is_empty() {
        let _ = writeln!(out, "    port {};", extra_ports.join(", "));
    }
    if t.num_vars > 0 {
        let names: Vec<String> = (0..t.num_vars).map(|i| format!("v{i}")).collect();
        let _ = writeln!(out, "    var {};", names.join(", "));
    }
    if t.num_reqs > 0 {
        let names: Vec<String> = (0..t.num_reqs).map(|i| format!("r{i}")).collect();
        let _ = writeln!(out, "    req {};", names.join(", "));
    }
    for op in &t.ops {
        print_op(out, op, 2, dest_names);
    }
    out.push_str("  }\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_op(out: &mut String, op: &Op, level: usize, dest_names: &[Option<String>]) {
    indent(out, level);
    match op {
        Op::Send { to, value } => {
            let _ = writeln!(out, "send({}, {});", dest(to, dest_names), expr(value));
        }
        Op::SendI { to, value, req } => {
            let _ = writeln!(
                out,
                "send_i({}, {}, {});",
                dest(to, dest_names),
                expr(value),
                req_name(*req)
            );
        }
        Op::Recv { port, var } => {
            let _ = writeln!(out, "{} = recv({port});", var_name(*var));
        }
        Op::RecvI { port, var, req } => {
            let _ = writeln!(
                out,
                "{}, {} = recv_i({port});",
                var_name(*var),
                req_name(*req)
            );
        }
        Op::Wait { req } => {
            let _ = writeln!(out, "wait({});", req_name(*req));
        }
        Op::Assign { var, expr: e } => {
            let _ = writeln!(out, "{} = {};", var_name(*var), expr(e));
        }
        Op::Assert { cond: c, message } => {
            if message.is_empty() {
                let _ = writeln!(out, "assert({});", cond(c));
            } else {
                let _ = writeln!(out, "assert({}, \"{}\");", cond(c), escape(message));
            }
        }
        Op::Repeat { count, body } => {
            let _ = writeln!(out, "repeat {count} {{");
            for op in body {
                print_op(out, op, level + 1, dest_names);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Op::If {
            cond: c,
            then_ops,
            else_ops,
        } => {
            let _ = writeln!(out, "if ({}) {{", cond(c));
            for op in then_ops {
                print_op(out, op, level + 1, dest_names);
            }
            indent(out, level);
            if else_ops.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for op in else_ops {
                    print_op(out, op, level + 1, dest_names);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
    }
}

fn dest(to: &EndpointAddr, dest_names: &[Option<String>]) -> String {
    match dest_names.get(to.node as usize).and_then(Option::as_ref) {
        Some(name) => format!("{name}:{}", to.port),
        None => format!("{}:{}", to.node, to.port),
    }
}

fn var_name(v: VarId) -> String {
    format!("v{}", v.0)
}

fn req_name(r: ReqId) -> String {
    format!("r{}", r.0)
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Var(v) => var_name(*v),
        Expr::AddConst(inner, c) if *c >= 0 => format!("({} + {c})", expr(inner)),
        // `unsigned_abs`, not `-c`: negating `i64::MIN` panics. Validated
        // programs never hold such an offset, but the printer must not be
        // the thing that crashes on one.
        Expr::AddConst(inner, c) => format!("({} - {})", expr(inner), c.unsigned_abs()),
    }
}

fn cond(c: &Cond) -> String {
    match c {
        Cond::True => "true".into(),
        Cond::False => "false".into(),
        Cond::Cmp(op, a, b) => format!("{} {op} {}", expr(a), expr(b)),
        Cond::And(a, b) => format!("({} && {})", cond(a), cond(b)),
        Cond::Or(a, b) => format!("({} || {})", cond(a), cond(b)),
        Cond::Not(inner) => format!("!({})", cond(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcapi::builder::ProgramBuilder;
    use mcapi::types::CmpOp;

    fn demo() -> Program {
        let mut b = ProgramBuilder::new("demo");
        let server = b.thread("server");
        let client = b.thread("client");
        let req = b.recv(server, 0);
        b.send_expr(server, client, 0, Expr::Var(req).plus(1));
        b.send_const(client, server, 0, 41);
        let reply = b.recv(client, 0);
        b.assert_cond(
            client,
            Cond::cmp(CmpOp::Eq, Expr::Var(reply), Expr::Const(42)),
            "ping+1",
        );
        b.build().unwrap()
    }

    #[test]
    fn prints_readable_canonical_source() {
        let text = pretty(&demo());
        assert!(text.contains("program demo {"), "{text}");
        assert!(text.contains("thread server {"), "{text}");
        assert!(text.contains("v0 = recv(0);"), "{text}");
        assert!(text.contains("send(client:0, (v0 + 1));"), "{text}");
        assert!(text.contains("assert(v0 == 42, \"ping+1\");"), "{text}");
    }

    #[test]
    fn odd_names_fall_back_to_strings_and_indices() {
        let mut b = ProgramBuilder::new("fig1-assert");
        let a = b.thread("if"); // keyword: not an identifier
        let c = b.thread("t1");
        b.send_const(a, c, 0, 1);
        b.recv(c, 0);
        let text = pretty(&b.build().unwrap());
        assert!(text.contains("program \"fig1-assert\" {"), "{text}");
        assert!(text.contains("thread \"if\" {"), "{text}");
        assert!(text.contains("send(t1:0, 1);"), "{text}");
    }

    #[test]
    fn duplicate_thread_names_use_indices() {
        let mut b = ProgramBuilder::new("p");
        let a = b.thread("w");
        let c = b.thread("w");
        b.send_const(a, c, 0, 1);
        b.recv(c, 0);
        let text = pretty(&b.build().unwrap());
        assert!(text.contains("send(1:0, 1);"), "{text}");
    }

    #[test]
    fn repeat_prints_and_roundtrips() {
        let mut b = ProgramBuilder::new("looped");
        let t = b.thread("t0");
        let u = b.thread("t1");
        let x = b.fresh_var(t);
        b.assign(t, x, Expr::Const(0));
        b.repeat(t, 3, |bb| {
            bb.send_expr(u, 0, Expr::Var(x));
            bb.assign(x, Expr::Var(x).plus(1));
        });
        b.repeat(u, 3, |bb| {
            let _ = bb.recv(0);
        });
        let p = b.build().unwrap();
        let text = pretty(&p);
        assert!(text.contains("repeat 3 {"), "{text}");
        assert!(text.contains("send(t1:0, v0);"), "{text}");
        let q = crate::parse_program(&text).unwrap();
        assert_eq!(p, q, "repeat must round-trip structurally:\n{text}");
    }

    #[test]
    fn negative_offsets_print_via_unsigned_abs() {
        // Direct printer check at the i64 edge (such an expression cannot
        // come from a validated program, but printing must not panic).
        assert_eq!(
            expr(&Expr::AddConst(
                Box::new(Expr::Var(mcapi::types::VarId(0))),
                i64::MIN
            )),
            "(v0 - 9223372036854775808)"
        );
    }

    #[test]
    fn nested_if_and_message_escaping() {
        let mut b = ProgramBuilder::new("p");
        let t = b.thread("t0");
        let x = b.fresh_var(t);
        b.if_else(
            t,
            Cond::cmp(CmpOp::Lt, Expr::Var(x), Expr::Const(0)),
            |bb| {
                bb.assert_cond(Cond::True, "say \"hi\"\n");
            },
            |bb| bb.assign(x, Expr::Var(x).plus(-1)),
        );
        let text = pretty(&b.build().unwrap());
        assert!(text.contains("if (v0 < 0) {"), "{text}");
        assert!(
            text.contains("assert(true, \"say \\\"hi\\\"\\n\");"),
            "{text}"
        );
        assert!(text.contains("} else {"), "{text}");
        assert!(text.contains("v0 = (v0 - 1);"), "{text}");
    }
}
