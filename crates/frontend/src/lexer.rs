//! Hand-written lexer for MCAPI-lite.
//!
//! Whitespace and `// …` line comments separate tokens; identifiers are
//! `[A-Za-z_][A-Za-z0-9_]*` (keywords are reserved); integers are decimal
//! (a leading `-` is a separate token, consumed by the expression
//! parser); strings are double-quoted with `\" \\ \n \t \r` escapes.

use crate::diag::{ParseError, Span};

/// The token classes of MCAPI-lite.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// A non-keyword identifier.
    Ident(String),
    /// A decimal integer literal (sign handled by the parser).
    Int(i64),
    /// A double-quoted string literal (escapes already resolved).
    Str(String),
    /// `program`
    KwProgram,
    /// `thread`
    KwThread,
    /// `port`
    KwPort,
    /// `var`
    KwVar,
    /// `req`
    KwReq,
    /// `send`
    KwSend,
    /// `send_i`
    KwSendI,
    /// `recv`
    KwRecv,
    /// `recv_i`
    KwRecvI,
    /// `wait`
    KwWait,
    /// `assert`
    KwAssert,
    /// `repeat`
    KwRepeat,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `!`
    Bang,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input (always the last token).
    Eof,
}

impl TokenKind {
    /// How this token reads in a diagnostic ("found …").
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Str(_) => "string literal".into(),
            TokenKind::Eof => "end of input".into(),
            other => format!("`{}`", other.glyph()),
        }
    }

    /// The literal spelling of fixed tokens (empty for variable ones).
    fn glyph(&self) -> &'static str {
        match self {
            TokenKind::KwProgram => "program",
            TokenKind::KwThread => "thread",
            TokenKind::KwPort => "port",
            TokenKind::KwVar => "var",
            TokenKind::KwReq => "req",
            TokenKind::KwSend => "send",
            TokenKind::KwSendI => "send_i",
            TokenKind::KwRecv => "recv",
            TokenKind::KwRecvI => "recv_i",
            TokenKind::KwWait => "wait",
            TokenKind::KwAssert => "assert",
            TokenKind::KwRepeat => "repeat",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwTrue => "true",
            TokenKind::KwFalse => "false",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Bang => "!",
            TokenKind::EqEq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Ident(_) | TokenKind::Int(_) | TokenKind::Str(_) | TokenKind::Eof => "",
        }
    }
}

/// A token plus its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token class (and payload, for identifiers/literals).
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

fn keyword(word: &str) -> Option<TokenKind> {
    Some(match word {
        "program" => TokenKind::KwProgram,
        "thread" => TokenKind::KwThread,
        "port" => TokenKind::KwPort,
        "var" => TokenKind::KwVar,
        "req" => TokenKind::KwReq,
        "send" => TokenKind::KwSend,
        "send_i" => TokenKind::KwSendI,
        "recv" => TokenKind::KwRecv,
        "recv_i" => TokenKind::KwRecvI,
        "wait" => TokenKind::KwWait,
        "assert" => TokenKind::KwAssert,
        "repeat" => TokenKind::KwRepeat,
        "if" => TokenKind::KwIf,
        "else" => TokenKind::KwElse,
        "true" => TokenKind::KwTrue,
        "false" => TokenKind::KwFalse,
        _ => return None,
    })
}

/// Is `name` spellable as a bare identifier token (and not a keyword)?
pub fn is_ident(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        && keyword(name).is_none()
}

/// Tokenise `src`; the result always ends with an [`TokenKind::Eof`] token.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    let err = |span: Span, expected: &str, found: String| {
        Err(ParseError {
            span,
            expected: expected.into(),
            found,
        })
    };
    while i < b.len() {
        let start = i;
        let c = b[i];
        let kind = match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'=' if b.get(i + 1) == Some(&b'=') => {
                i += 1;
                TokenKind::EqEq
            }
            b'=' => TokenKind::Assign,
            b'!' if b.get(i + 1) == Some(&b'=') => {
                i += 1;
                TokenKind::Ne
            }
            b'!' => TokenKind::Bang,
            b'<' if b.get(i + 1) == Some(&b'=') => {
                i += 1;
                TokenKind::Le
            }
            b'<' => TokenKind::Lt,
            b'>' if b.get(i + 1) == Some(&b'=') => {
                i += 1;
                TokenKind::Ge
            }
            b'>' => TokenKind::Gt,
            b'&' => {
                if b.get(i + 1) == Some(&b'&') {
                    i += 1;
                    TokenKind::AndAnd
                } else {
                    return err(Span::new(start, start + 1), "`&&`", "`&`".into());
                }
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'|') {
                    i += 1;
                    TokenKind::OrOr
                } else {
                    return err(Span::new(start, start + 1), "`||`", "`|`".into());
                }
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None | Some(b'\n') => {
                            return err(Span::new(start, i), "closing `\"`", "end of line".into());
                        }
                        Some(b'"') => break,
                        Some(b'\\') => {
                            let esc = b.get(i + 1);
                            s.push(match esc {
                                Some(b'"') => '"',
                                Some(b'\\') => '\\',
                                Some(b'n') => '\n',
                                Some(b't') => '\t',
                                Some(b'r') => '\r',
                                _ => {
                                    return err(
                                        Span::new(i, i + 2),
                                        "an escape (`\\\"`, `\\\\`, `\\n`, `\\t`, `\\r`)",
                                        "invalid escape".into(),
                                    );
                                }
                            });
                            i += 2;
                        }
                        Some(_) => {
                            // Copy one UTF-8 character verbatim.
                            let ch = src[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    span: Span::new(start, i + 1),
                });
                i += 1;
                continue;
            }
            b'0'..=b'9' => {
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let Ok(n) = text.parse::<i64>() else {
                    return err(
                        Span::new(start, i),
                        "an integer that fits in 64 bits",
                        format!("`{text}`"),
                    );
                };
                out.push(Token {
                    kind: TokenKind::Int(n),
                    span: Span::new(start, i),
                });
                continue;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                out.push(Token {
                    kind: keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string())),
                    span: Span::new(start, i),
                });
                continue;
            }
            _ => {
                let ch = src[start..].chars().next().unwrap();
                return err(
                    Span::new(start, start + ch.len_utf8()),
                    "a token",
                    format!("unexpected character `{ch}`"),
                );
            }
        };
        i += 1;
        out.push(Token {
            kind,
            span: Span::new(start, i),
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            kinds("{ } ( ) , ; : = + - ! == != < <= > >= && ||"),
            vec![
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Colon,
                TokenKind::Assign,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Bang,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("send send_i sendx _x v0"),
            vec![
                TokenKind::KwSend,
                TokenKind::KwSendI,
                TokenKind::Ident("sendx".into()),
                TokenKind::Ident("_x".into()),
                TokenKind::Ident("v0".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_spans() {
        let toks = lex("a // comment\n b").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].kind, TokenKind::Ident("b".into()));
        assert_eq!(toks[1].span, Span::new(14, 15));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let toks = lex(r#""a\"b\\c\n""#).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Str("a\"b\\c\n".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let e = lex("\"abc").unwrap_err();
        assert_eq!(e.expected, "closing `\"`");
    }

    #[test]
    fn lone_ampersand_is_an_error() {
        let e = lex("a & b").unwrap_err();
        assert_eq!(e.expected, "`&&`");
        assert_eq!(e.span, Span::new(2, 3));
    }

    #[test]
    fn is_ident_rejects_keywords_and_odd_names() {
        assert!(is_ident("t0"));
        assert!(is_ident("_private"));
        assert!(!is_ident("send"));
        assert!(!is_ident("fig1-assert"));
        assert!(!is_ident("0x"));
        assert!(!is_ident(""));
    }
}
