//! Recursive-descent parser for MCAPI-lite.
//!
//! The grammar (see `ARCHITECTURE.md` for the full reference):
//!
//! ```text
//! file    := "program" name "{" thread* "}"
//! thread  := "thread" name "{" decl* stmt* "}"
//! decl    := ("port" INT ("," INT)* | "var" idlist | "req" idlist) ";"
//! stmt    := "send" "(" dest "," expr ")" ";"
//!          | "send_i" "(" dest "," expr "," IDENT ")" ";"
//!          | IDENT "=" "recv" "(" INT ")" ";"
//!          | IDENT "," IDENT "=" "recv_i" "(" INT ")" ";"
//!          | IDENT "=" expr ";"
//!          | "wait" "(" IDENT ")" ";"
//!          | "assert" "(" cond ("," STRING)? ")" ";"
//!          | "if" "(" cond ")" block ("else" block)?
//!          | "repeat" INT block
//! dest    := (IDENT | INT) ":" INT
//! expr    := primary (("+" | "-") INT)*
//! primary := INT | "-" INT | IDENT | "(" expr ")"
//! cond    := and ("||" and)*        (left-assoc)
//! and     := atom ("&&" atom)*      (left-assoc)
//! atom    := "true" | "false" | "!" atom | "(" cond ")" | expr CMP expr
//! ```
//!
//! The only ambiguity is `(` in condition position (parenthesised
//! condition vs. parenthesised expression starting a comparison); the
//! parser tries the condition reading first and backtracks, keeping the
//! error that got furthest.

use crate::ast::*;
use crate::diag::{ParseError, Span};
use crate::lexer::{lex, Token, TokenKind};
use mcapi::types::CmpOp;

/// Parse a full MCAPI-lite source file.
pub fn parse(src: &str) -> Result<File, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let file = p.file()?;
    p.expect_eof()?;
    Ok(file)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, expected: &str) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            span: t.span,
            expected: expected.to_string(),
            found: t.kind.describe(),
        })
    }

    fn expect(&mut self, kind: TokenKind, expected: &str) -> Result<Span, ParseError> {
        if self.peek().kind == kind {
            Ok(self.bump().span)
        } else {
            self.error(expected)
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            self.error("end of input")
        }
    }

    fn ident(&mut self, expected: &str) -> Result<Spanned<String>, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                Ok(Spanned::new(s, self.bump().span))
            }
            _ => self.error(expected),
        }
    }

    fn int(&mut self, expected: &str) -> Result<Spanned<i64>, ParseError> {
        match self.peek().kind {
            TokenKind::Int(n) => Ok(Spanned::new(n, self.bump().span)),
            _ => self.error(expected),
        }
    }

    /// A name position: bare identifier or string literal.
    fn name(&mut self) -> Result<Spanned<String>, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                Ok(Spanned::new(s, self.bump().span))
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                Ok(Spanned::new(s, self.bump().span))
            }
            _ => self.error("a name (identifier or string literal)"),
        }
    }

    fn file(&mut self) -> Result<File, ParseError> {
        self.expect(TokenKind::KwProgram, "`program`")?;
        let name = self.name()?;
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut threads = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                return self.error("`thread` or `}`");
            }
            threads.push(self.thread()?);
        }
        self.bump(); // `}`
        Ok(File { name, threads })
    }

    fn thread(&mut self) -> Result<ThreadDecl, ParseError> {
        self.expect(TokenKind::KwThread, "`thread`")?;
        let name = self.name()?;
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut ports = Vec::new();
        let mut vars = Vec::new();
        let mut reqs = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::KwPort => {
                    self.bump();
                    loop {
                        ports.push(self.int("a port number")?);
                        if self.peek().kind == TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semi, "`;`")?;
                }
                TokenKind::KwVar => {
                    self.bump();
                    self.ident_list(&mut vars, "a variable name")?;
                }
                TokenKind::KwReq => {
                    self.bump();
                    self.ident_list(&mut reqs, "a request name")?;
                }
                _ => break,
            }
        }
        let body = self.block_body()?;
        Ok(ThreadDecl {
            name,
            ports,
            vars,
            reqs,
            body,
        })
    }

    fn ident_list(&mut self, out: &mut Vec<Spanned<String>>, what: &str) -> Result<(), ParseError> {
        loop {
            out.push(self.ident(what)?);
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(())
    }

    /// Statements up to (and consuming) the closing `}`.
    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                return self.error("a statement or `}`");
            }
            body.push(self.stmt()?);
        }
        self.bump(); // `}`
        Ok(body)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        self.block_body()
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        let kind = match self.peek().kind.clone() {
            TokenKind::KwSend => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let dest = self.dest()?;
                self.expect(TokenKind::Comma, "`,`")?;
                let value = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::Semi, "`;`")?;
                StmtKind::Send { dest, value }
            }
            TokenKind::KwSendI => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let dest = self.dest()?;
                self.expect(TokenKind::Comma, "`,`")?;
                let value = self.expr()?;
                self.expect(TokenKind::Comma, "`,`")?;
                let req = self.ident("a request name")?;
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::Semi, "`;`")?;
                StmtKind::SendI { dest, value, req }
            }
            TokenKind::KwWait => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let req = self.ident("a request name")?;
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::Semi, "`;`")?;
                StmtKind::Wait { req }
            }
            TokenKind::KwAssert => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.cond()?;
                let message = if self.peek().kind == TokenKind::Comma {
                    self.bump();
                    match &self.peek().kind {
                        TokenKind::Str(s) => {
                            let s = s.clone();
                            Some(Spanned::new(s, self.bump().span))
                        }
                        _ => return self.error("a string literal (the assertion message)"),
                    }
                } else {
                    None
                };
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::Semi, "`;`")?;
                StmtKind::Assert { cond, message }
            }
            TokenKind::KwRepeat => {
                self.bump();
                let count = self.int("an iteration count")?;
                let body = self.block()?;
                StmtKind::Repeat { count, body }
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.cond()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let then_body = self.block()?;
                let else_body = if self.peek().kind == TokenKind::KwElse {
                    self.bump();
                    self.block()?
                } else {
                    Vec::new()
                };
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                }
            }
            TokenKind::Ident(_) => {
                let first = self.ident("a variable name")?;
                if self.peek().kind == TokenKind::Comma {
                    // `var, req = recv_i(port);`
                    self.bump();
                    let req = self.ident("a request name")?;
                    self.expect(TokenKind::Assign, "`=`")?;
                    self.expect(TokenKind::KwRecvI, "`recv_i`")?;
                    self.expect(TokenKind::LParen, "`(`")?;
                    let port = self.int("a port number")?;
                    self.expect(TokenKind::RParen, "`)`")?;
                    self.expect(TokenKind::Semi, "`;`")?;
                    StmtKind::RecvI {
                        var: first,
                        req,
                        port,
                    }
                } else {
                    self.expect(TokenKind::Assign, "`=` (or `,` for recv_i)")?;
                    if self.peek().kind == TokenKind::KwRecv {
                        self.bump();
                        self.expect(TokenKind::LParen, "`(`")?;
                        let port = self.int("a port number")?;
                        self.expect(TokenKind::RParen, "`)`")?;
                        self.expect(TokenKind::Semi, "`;`")?;
                        StmtKind::Recv { var: first, port }
                    } else {
                        let value = self.expr()?;
                        self.expect(TokenKind::Semi, "`;`")?;
                        StmtKind::Assign { var: first, value }
                    }
                }
            }
            _ => return self.error("a statement"),
        };
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Stmt {
            kind,
            span: start.to(end),
        })
    }

    fn dest(&mut self) -> Result<Dest, ParseError> {
        let thread = match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                DestThread::Name(Spanned::new(s, self.bump().span))
            }
            TokenKind::Int(n) => {
                let n = *n;
                DestThread::Index(Spanned::new(n, self.bump().span))
            }
            _ => return self.error("a destination (`thread:port`)"),
        };
        self.expect(TokenKind::Colon, "`:`")?;
        let port = self.int("a port number")?;
        Ok(Dest { thread, port })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            let negate = match self.peek().kind {
                TokenKind::Plus => false,
                TokenKind::Minus => true,
                _ => break,
            };
            self.bump();
            let c = self.int("an integer offset")?;
            let c = Spanned::new(if negate { -c.node } else { c.node }, c.span);
            e = Expr::Add(Box::new(e), c);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                let span = self.bump().span;
                Ok(Expr::Const(Spanned::new(n, span)))
            }
            TokenKind::Minus => {
                let start = self.bump().span;
                let c = self.int("an integer")?;
                Ok(Expr::Const(Spanned::new(-c.node, start.to(c.span))))
            }
            TokenKind::Ident(s) => {
                let span = self.bump().span;
                Ok(Expr::Var(Spanned::new(s, span)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            _ => self.error("an expression"),
        }
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek().kind {
            TokenKind::EqEq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn cond(&mut self) -> Result<Cond, ParseError> {
        let mut c = self.cond_and()?;
        while self.peek().kind == TokenKind::OrOr {
            self.bump();
            let rhs = self.cond_and()?;
            c = Cond::Or(Box::new(c), Box::new(rhs));
        }
        Ok(c)
    }

    fn cond_and(&mut self) -> Result<Cond, ParseError> {
        let mut c = self.cond_atom()?;
        while self.peek().kind == TokenKind::AndAnd {
            self.bump();
            let rhs = self.cond_atom()?;
            c = Cond::And(Box::new(c), Box::new(rhs));
        }
        Ok(c)
    }

    fn cond_atom(&mut self) -> Result<Cond, ParseError> {
        match self.peek().kind {
            TokenKind::KwTrue => {
                self.bump();
                Ok(Cond::True)
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Cond::False)
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Cond::Not(Box::new(self.cond_atom()?)))
            }
            TokenKind::LParen => {
                // Ambiguous: `(cond)` or a comparison whose left operand
                // is a parenthesised expression, e.g. `(v0 + 1) < 3`. Try
                // the condition reading first; on failure rewind and try
                // the comparison, keeping whichever error got furthest.
                let snapshot = self.pos;
                let as_cond: Result<Cond, ParseError> = (|| {
                    self.bump(); // `(`
                    let c = self.cond()?;
                    self.expect(TokenKind::RParen, "`)`")?;
                    Ok(c)
                })();
                match as_cond {
                    Ok(c) => Ok(c),
                    Err(e1) => {
                        self.pos = snapshot;
                        self.comparison().map_err(|e2| {
                            if e2.span.start >= e1.span.start {
                                e2
                            } else {
                                e1
                            }
                        })
                    }
                }
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Cond, ParseError> {
        let lhs = self.expr()?;
        let Some(op) = self.cmp_op() else {
            return self.error("a comparison operator (`==`, `!=`, `<`, `<=`, `>`, `>=`)");
        };
        let rhs = self.expr()?;
        Ok(Cond::Cmp(op, lhs, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> File {
        match parse(src) {
            Ok(f) => f,
            Err(e) => panic!("parse failed: {} at {:?}\n{src}", e.message(), e.span),
        }
    }

    #[test]
    fn minimal_program() {
        let f = parse_ok("program p { thread t0 { } }");
        assert_eq!(f.name.node, "p");
        assert_eq!(f.threads.len(), 1);
        assert_eq!(f.threads[0].name.node, "t0");
    }

    #[test]
    fn string_names_and_decls() {
        let f = parse_ok(
            r#"program "fig1-assert" {
                 thread "t 0" {
                   port 1, 2;
                   var a, b;
                   req r0;
                 }
               }"#,
        );
        assert_eq!(f.name.node, "fig1-assert");
        let t = &f.threads[0];
        assert_eq!(t.name.node, "t 0");
        assert_eq!(t.ports.iter().map(|p| p.node).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(t.vars.len(), 2);
        assert_eq!(t.reqs.len(), 1);
    }

    #[test]
    fn all_statement_forms() {
        let f = parse_ok(
            r#"program p {
                 thread t0 {
                   var a, b;
                   req r0, r1;
                   send(t1:0, 5);
                   send_i(1:2, a + 1, r0);
                   a = recv(0);
                   b, r1 = recv_i(3);
                   wait(r1);
                   b = a - 2;
                   assert(a == 5, "five");
                   assert(true);
                   if (a < b) { send(t1:0, -1); } else { b = 0; }
                 }
                 thread t1 { port 2; }
               }"#,
        );
        let body = &f.threads[0].body;
        assert_eq!(body.len(), 9);
        assert!(matches!(body[0].kind, StmtKind::Send { .. }));
        assert!(matches!(body[1].kind, StmtKind::SendI { .. }));
        assert!(matches!(body[2].kind, StmtKind::Recv { .. }));
        assert!(matches!(body[3].kind, StmtKind::RecvI { .. }));
        assert!(matches!(body[4].kind, StmtKind::Wait { .. }));
        assert!(matches!(body[5].kind, StmtKind::Assign { .. }));
        assert!(matches!(
            body[6].kind,
            StmtKind::Assert {
                message: Some(_),
                ..
            }
        ));
        assert!(matches!(
            body[7].kind,
            StmtKind::Assert { message: None, .. }
        ));
        let StmtKind::If {
            then_body,
            else_body,
            ..
        } = &body[8].kind
        else {
            panic!("expected if");
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn condition_precedence_and_parens() {
        let f = parse_ok(
            "program p { thread t0 { var a;
               assert(a == 0 && a != 1 || !(a < 2));
               assert((a == 0 || a == 1) && (a + 1) <= 5);
             } }",
        );
        let StmtKind::Assert { cond, .. } = &f.threads[0].body[0].kind else {
            panic!()
        };
        // `||` binds loosest: Or(And(..,..), Not(..)).
        assert!(matches!(cond, Cond::Or(lhs, rhs)
            if matches!(**lhs, Cond::And(..)) && matches!(**rhs, Cond::Not(..))));
        let StmtKind::Assert { cond, .. } = &f.threads[0].body[1].kind else {
            panic!()
        };
        assert!(matches!(cond, Cond::And(lhs, rhs)
            if matches!(**lhs, Cond::Or(..)) && matches!(**rhs, Cond::Cmp(..))));
    }

    #[test]
    fn parenthesised_expr_comparison_backtracks() {
        let f = parse_ok("program p { thread t0 { var a; assert((a - 1) < (a + 1)); } }");
        let StmtKind::Assert { cond, .. } = &f.threads[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(
            cond,
            Cond::Cmp(CmpOp::Lt, Expr::Add(..), Expr::Add(..))
        ));
    }

    #[test]
    fn repeat_statement_parses_and_nests() {
        let f = parse_ok(
            "program p { thread t0 { var a;
               repeat 3 {
                 a = a + 1;
                 repeat 2 { send(t0:0, a); }
                 if (a < 2) { a = 0; }
               }
             } }",
        );
        let StmtKind::Repeat { count, body } = &f.threads[0].body[0].kind else {
            panic!("expected repeat, got {:?}", f.threads[0].body[0].kind);
        };
        assert_eq!(count.node, 3);
        assert_eq!(body.len(), 3);
        assert!(matches!(body[1].kind, StmtKind::Repeat { .. }));
        assert!(matches!(body[2].kind, StmtKind::If { .. }));
    }

    #[test]
    fn repeat_needs_a_literal_count() {
        let e = parse("program p { thread t0 { var a; repeat a { } } }").unwrap_err();
        assert!(e.expected.contains("iteration count"), "{e:?}");
    }

    #[test]
    fn error_reports_expected_and_found() {
        let e = parse("program p { thread t0 { var a a; } }").unwrap_err();
        assert!(e.expected.contains("`;`"), "{e:?}");
        assert!(e.found.contains("identifier `a`"), "{e:?}");
    }

    #[test]
    fn error_on_missing_semicolon_points_at_brace() {
        let src = "program p { thread t0 { var x; x = recv(0) } }";
        let e = parse(src).unwrap_err();
        assert_eq!(&src[e.span.start..e.span.end], "}");
        assert!(e.expected.contains("`;`"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse("program p { thread t0 { } } extra").unwrap_err();
        assert_eq!(e.expected, "end of input");
    }

    #[test]
    fn bare_variable_is_not_a_condition() {
        let e = parse("program p { thread t0 { var a; assert(a); } }").unwrap_err();
        assert!(e.expected.contains("comparison operator"), "{e:?}");
    }
}
