//! Property-based tests of the runtime semantics: conservation laws,
//! delivery-model invariants, replay determinism, serialisation.

use mcapi::builder::ProgramBuilder;
use mcapi::program::Program;
use mcapi::runtime::{execute_random, replay};
use mcapi::trace::{EventKind, Trace};
use mcapi::types::DeliveryModel;
use proptest::prelude::*;

/// Build a random deadlock-free program directly (mirrors
/// workloads::random_program but kept local so this crate stays
/// dependency-light).
fn arb_program() -> impl Strategy<Value = Program> {
    (
        2usize..5,
        prop::collection::vec((0usize..4, 1i64..50), 1..8),
    )
        .prop_map(|(n, sends)| {
            let mut b = ProgramBuilder::new("prop");
            let tids: Vec<_> = (0..n).map(|i| b.thread(format!("t{i}"))).collect();
            let mut incoming = vec![0usize; n];
            // All sends first, from thread (i % n), to a different thread.
            for (i, &(to_raw, val)) in sends.iter().enumerate() {
                let from = i % n;
                let mut to = to_raw % n;
                if to == from {
                    to = (to + 1) % n;
                }
                b.send_const(tids[from], tids[to], 0, val);
                incoming[to] += 1;
            }
            for (t, &cnt) in incoming.iter().enumerate() {
                for _ in 0..cnt {
                    b.recv(tids[t], 0);
                }
            }
            b.build().expect("well-formed by construction")
        })
}

fn model_strategy() -> impl Strategy<Value = DeliveryModel> {
    prop_oneof![
        Just(DeliveryModel::Unordered),
        Just(DeliveryModel::PairwiseFifo),
        Just(DeliveryModel::ZeroDelay),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sends-before-receives programs always run to completion, and the
    /// message counts balance exactly.
    #[test]
    fn conservation_of_messages(p in arb_program(), seed in 0u64..1000, model in model_strategy()) {
        let out = execute_random(&p, model, seed);
        prop_assert!(out.trace.is_complete(), "deadlock in {:?}", out.trace);
        let sends = out.trace.sends().len();
        let recvs = out.trace.receives().len();
        prop_assert_eq!(sends, recvs);
        prop_assert!(out.final_state.in_flight.is_empty());
    }

    /// Every received value was actually sent to that endpoint, and every
    /// message is consumed at most once.
    #[test]
    fn receives_consume_real_messages_once(p in arb_program(), seed in 0u64..1000) {
        let out = execute_random(&p, DeliveryModel::Unordered, seed);
        let mut sent = std::collections::HashMap::new();
        for e in &out.trace.events {
            if let EventKind::Send { msg, value, .. } = &e.kind {
                sent.insert(*msg, *value);
            }
        }
        let mut consumed = std::collections::HashSet::new();
        for e in &out.trace.events {
            if let EventKind::Recv { msg, value, .. }
            | EventKind::WaitRecv { msg, value, .. } = &e.kind
            {
                prop_assert_eq!(sent.get(msg), Some(value), "value corrupted in transit");
                prop_assert!(consumed.insert(*msg), "message {msg:?} consumed twice");
            }
        }
    }

    /// Replaying the recorded action sequence reproduces the trace bit for
    /// bit (determinism of the semantics given a schedule).
    #[test]
    fn replay_is_deterministic(p in arb_program(), seed in 0u64..1000, model in model_strategy()) {
        let out = execute_random(&p, model, seed);
        let again = replay(&p, model, &out.actions).expect("own schedule must replay");
        prop_assert_eq!(out.trace, again.trace);
        prop_assert_eq!(out.final_state, again.final_state);
    }

    /// Pairwise FIFO invariant: two messages from the same source thread to
    /// the same endpoint are received in send order.
    #[test]
    fn pairwise_fifo_is_fifo(p in arb_program(), seed in 0u64..1000) {
        let out = execute_random(&p, DeliveryModel::PairwiseFifo, seed);
        // Per (source thread, destination endpoint): sequence numbers of
        // received messages must be increasing in receive order.
        let mut last_seq: std::collections::HashMap<(u16, (usize, u16)), u16> =
            std::collections::HashMap::new();
        for e in &out.trace.events {
            if let EventKind::Recv { msg, port, .. } | EventKind::WaitRecv { msg, port, .. } =
                &e.kind
            {
                let key = (msg.thread, (e.thread, *port));
                if let Some(prev) = last_seq.get(&key) {
                    prop_assert!(
                        msg.seq > *prev,
                        "FIFO violated: {msg:?} after seq {prev} at {key:?}"
                    );
                }
                last_seq.insert(key, msg.seq);
            }
        }
    }

    /// Zero-delay invariant: receives at one endpoint consume messages in
    /// global send order.
    #[test]
    fn zero_delay_is_globally_ordered(p in arb_program(), seed in 0u64..1000) {
        let out = execute_random(&p, DeliveryModel::ZeroDelay, seed);
        // Record the global send position of each message.
        let mut send_pos = std::collections::HashMap::new();
        let mut pos = 0usize;
        for e in &out.trace.events {
            if let EventKind::Send { msg, .. } = &e.kind {
                send_pos.insert(*msg, pos);
                pos += 1;
            }
        }
        // Receives per endpoint must be increasing in send position.
        let mut last: std::collections::HashMap<(usize, u16), usize> =
            std::collections::HashMap::new();
        for e in &out.trace.events {
            if let EventKind::Recv { msg, port, .. } | EventKind::WaitRecv { msg, port, .. } =
                &e.kind
            {
                let ep = (e.thread, *port);
                let sp = send_pos[msg];
                if let Some(prev) = last.get(&ep) {
                    prop_assert!(sp > *prev, "zero-delay order violated at {ep:?}");
                }
                last.insert(ep, sp);
            }
        }
    }

    /// Trace JSON serialisation round-trips.
    #[test]
    fn trace_json_roundtrip(p in arb_program(), seed in 0u64..200) {
        let out = execute_random(&p, DeliveryModel::Unordered, seed);
        let json = out.trace.to_json();
        let back = Trace::from_json(&json).expect("parse back");
        prop_assert_eq!(out.trace, back);
    }

    /// Branch outcomes recorded in the trace match a re-execution of the
    /// same schedule (they are schedule-determined).
    #[test]
    fn branch_outcomes_are_schedule_determined(seed in 0u64..500) {
        // A fixed branchy program exercised under random schedules.
        use mcapi::expr::{Cond, Expr};
        use mcapi::program::Op;
        use mcapi::types::CmpOp;
        let mut b = ProgramBuilder::new("branchy-prop");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let v = b.recv(t0, 0);
        b.push_op(t0, Op::If {
            cond: Cond::cmp(CmpOp::Ge, Expr::Var(v), Expr::Const(10)),
            then_ops: vec![Op::Assign { var: v, expr: Expr::Const(1) }],
            else_ops: vec![Op::Assign { var: v, expr: Expr::Const(0) }],
        });
        b.recv(t0, 0);
        b.send_const(t1, t0, 0, 5);
        b.send_const(t2, t0, 0, 15);
        let p = b.build().unwrap();
        let out = execute_random(&p, DeliveryModel::Unordered, seed);
        let again = replay(&p, DeliveryModel::Unordered, &out.actions).unwrap();
        prop_assert_eq!(
            out.trace.branch_outcomes(0),
            again.trace.branch_outcomes(0)
        );
    }
}
