//! Mazurkiewicz-trace canonicalization: the shared independence relation
//! and the lexicographic normal-form test.
//!
//! Two schedules that differ only by commuting *independent* actions are
//! the same Mazurkiewicz trace: they contain the same per-thread event
//! subsequences, consume the same messages at the same receives, and reach
//! the same terminal verdicts. Enumerating more than one linearisation per
//! class is pure waste — the redundancy every schedule enumerator in this
//! repo used to pay. This module centralises the two ingredients needed to
//! pay it only once:
//!
//! 1. **Independence** ([`independent`]): a conservative commutation
//!    relation on actions, extracted from the sleep-set explorer so every
//!    engine prunes against the same relation. Two actions commute iff
//!    they belong to different threads and do not conflict on an endpoint
//!    (send/receive or receive/receive on one endpoint are dependent;
//!    under [`DeliveryModel::ZeroDelay`] two sends to one endpoint are
//!    also dependent because global send order is semantic there).
//!
//! 2. **The normal-form test** ([`CanonTracker`]): a schedule prefix is
//!    *canonical* iff it is the lexicographically least word of its trace
//!    class under the thread-major order on [`Action`]. By the
//!    Anisimov–Knuth characterisation, a word `w` is lex-least iff there
//!    are no positions `i < j` such that `w[j]` is independent of every
//!    action in `w[i..j-1]` and `w[j] < w[i]` — i.e. no smaller action
//!    could have been scheduled earlier by commuting it backwards. The
//!    test is prefix-monotone, so a DFS can check it incrementally: when
//!    appending action `a`, scan backwards through the maximal suffix of
//!    independent actions and reject if any of them exceeds `a`.
//!
//! Independence is evaluated on per-action summaries ([`ActionSummary`]:
//! thread, touched endpoint, send-ness) computed at the state where the
//! action executes. The summary is a function of the action and its
//! thread's program counter, and commuting independent actions preserves
//! every thread's own subsequence — so the summaries, and therefore the
//! relation, are invariant across linearisations of one class, which is
//! what makes the suffix scan well-defined.

use crate::program::{Instr, Program};
use crate::state::{Action, ReqState, SysState};
use crate::types::{DeliveryModel, EndpointAddr, ThreadId};

/// The commutation-relevant footprint of one action: which thread it
/// advances, which endpoint it touches (destination for sends, receiving
/// endpoint for receives and binding waits), and whether it is a send.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ActionSummary {
    pub thread: ThreadId,
    pub endpoint: Option<EndpointAddr>,
    pub is_send: bool,
}

/// Compute `action`'s [`ActionSummary`] at the state it executes from.
pub fn summarize(program: &Program, state: &SysState, action: Action) -> ActionSummary {
    let thread = action.thread();
    let pc = state.threads[thread].pc;
    let instr = program.threads[thread].code.get(pc);
    let (endpoint, is_send) = match action {
        Action::Internal { .. } => match instr {
            Some(Instr::Send { to, .. }) | Some(Instr::SendI { to, .. }) => (Some(*to), true),
            _ => (None, false),
        },
        Action::Receive { .. } => match instr {
            Some(Instr::Recv { port, .. }) => (Some(EndpointAddr::new(thread, *port)), false),
            _ => (None, false),
        },
        Action::CompleteWait { .. } => match instr {
            // The pending receive's port.
            Some(Instr::Wait { req }) => match state.threads[thread].reqs[req.0 as usize] {
                ReqState::RecvPending { port, .. } => {
                    (Some(EndpointAddr::new(thread, port)), false)
                }
                _ => (None, false),
            },
            _ => (None, false),
        },
    };
    ActionSummary {
        thread,
        endpoint,
        is_send,
    }
}

/// Conservative independence: do two actions commute (same successor
/// state, and neither enables/disables the other) in every state where
/// both are enabled?
pub fn independent(model: DeliveryModel, a: &ActionSummary, b: &ActionSummary) -> bool {
    if a.thread == b.thread {
        return false;
    }
    match (a.endpoint, b.endpoint) {
        (Some(x), Some(y)) if x == y => {
            // Same endpoint: two sends commute except under ZeroDelay
            // (global order is semantic there); anything involving a
            // receive is dependent.
            a.is_send && b.is_send && model != DeliveryModel::ZeroDelay
        }
        _ => true,
    }
}

/// Incremental lexicographic-normal-form tester for one DFS branch: a
/// stack of `(action, summary)` pairs mirroring the executed prefix, with
/// an O(suffix) check per candidate extension.
#[derive(Clone, Debug)]
pub struct CanonTracker {
    model: DeliveryModel,
    stack: Vec<(Action, ActionSummary)>,
}

impl CanonTracker {
    pub fn new(model: DeliveryModel) -> Self {
        CanonTracker {
            model,
            stack: Vec::new(),
        }
    }

    /// Would appending `action` (with `summary`) keep the prefix in
    /// normal form? Scans backwards through the suffix of actions
    /// independent of `action`: if any of them is greater, the word
    /// `prefix·action` has a lex-smaller equivalent (obtained by
    /// commuting `action` before it) and is rejected. The scan stops at
    /// the first dependent action — nothing before it can be commuted
    /// past.
    pub fn is_canonical_extension(&self, action: Action, summary: &ActionSummary) -> bool {
        for (b, sb) in self.stack.iter().rev() {
            if !independent(self.model, summary, sb) {
                return true;
            }
            if action < *b {
                return false;
            }
        }
        true
    }

    /// Record `action` as executed (callers push/pop around recursion).
    pub fn push(&mut self, action: Action, summary: ActionSummary) {
        self.stack.push((action, summary));
    }

    pub fn pop(&mut self) {
        self.stack.pop();
    }

    pub fn len(&self) -> usize {
        self.stack.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// t1 and t2 each send to t0; t0 receives twice.
    fn race_program() -> Program {
        let mut b = ProgramBuilder::new("race");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        b.recv(t0, 0);
        b.recv(t0, 0);
        b.send_const(t1, t0, 0, 10);
        b.send_const(t2, t0, 0, 20);
        b.build().unwrap()
    }

    #[test]
    fn summaries_capture_sends_and_receives() {
        let p = race_program();
        let s = SysState::initial(&p);
        let send = summarize(&p, &s, Action::Internal { thread: 1 });
        assert!(send.is_send);
        assert_eq!(send.endpoint, Some(EndpointAddr::new(0, 0)));
        let (s2, _) = s.apply(&p, Action::Internal { thread: 1 }, DeliveryModel::Unordered);
        let recv = summarize(
            &p,
            &s2,
            Action::Receive {
                thread: 0,
                msg: crate::types::MsgId::new(1, 0),
            },
        );
        assert!(!recv.is_send);
        assert_eq!(recv.endpoint, Some(EndpointAddr::new(0, 0)));
    }

    #[test]
    fn same_endpoint_send_recv_is_dependent_sends_commute() {
        let p = race_program();
        let s = SysState::initial(&p);
        let s1 = summarize(&p, &s, Action::Internal { thread: 1 });
        let s2 = summarize(&p, &s, Action::Internal { thread: 2 });
        // Two sends to one endpoint: independent except under ZeroDelay.
        assert!(independent(DeliveryModel::Unordered, &s1, &s2));
        assert!(independent(DeliveryModel::PairwiseFifo, &s1, &s2));
        assert!(!independent(DeliveryModel::ZeroDelay, &s1, &s2));
        // Send vs the receive consuming on the same endpoint: dependent.
        let (after, _) = s.apply(&p, Action::Internal { thread: 1 }, DeliveryModel::Unordered);
        let recv = summarize(
            &p,
            &after,
            Action::Receive {
                thread: 0,
                msg: crate::types::MsgId::new(1, 0),
            },
        );
        assert!(!independent(DeliveryModel::Unordered, &s2, &recv));
        // Same thread never commutes with itself.
        assert!(!independent(DeliveryModel::Unordered, &s1, &s1));
    }

    #[test]
    fn tracker_keeps_only_the_lex_least_interleaving() {
        let p = race_program();
        let s = SysState::initial(&p);
        let a1 = Action::Internal { thread: 1 };
        let a2 = Action::Internal { thread: 2 };
        let (sum1, sum2) = (summarize(&p, &s, a1), summarize(&p, &s, a2));

        // Order 1·2: canonical at both steps.
        let mut t = CanonTracker::new(DeliveryModel::Unordered);
        assert!(t.is_canonical_extension(a1, &sum1));
        t.push(a1, sum1);
        assert!(t.is_canonical_extension(a2, &sum2));

        // Order 2·1: rejected — a1 commutes before a2 and is smaller.
        let mut t = CanonTracker::new(DeliveryModel::Unordered);
        t.push(a2, sum2);
        assert!(!t.is_canonical_extension(a1, &sum1));

        // Under ZeroDelay the sends are dependent, so both orders are
        // distinct classes and both survive.
        let mut t = CanonTracker::new(DeliveryModel::ZeroDelay);
        t.push(a2, sum2);
        assert!(t.is_canonical_extension(a1, &sum1));
    }

    #[test]
    fn dependent_barrier_stops_the_backward_scan() {
        // Word: send(t2) · recv(t0) — then appending send(t1).
        // send(t1) is dependent on recv(t0) (same endpoint), so the scan
        // stops there and never compares against send(t2): canonical.
        let p = race_program();
        let s = SysState::initial(&p);
        let a2 = Action::Internal { thread: 2 };
        let sum2 = summarize(&p, &s, a2);
        let (s_after, _) = s.apply(&p, a2, DeliveryModel::Unordered);
        let recv = Action::Receive {
            thread: 0,
            msg: crate::types::MsgId::new(2, 0),
        };
        let sum_recv = summarize(&p, &s_after, recv);
        let (s_after2, _) = s_after.apply(&p, recv, DeliveryModel::Unordered);
        let a1 = Action::Internal { thread: 1 };
        let sum1 = summarize(&p, &s_after2, a1);

        let mut t = CanonTracker::new(DeliveryModel::Unordered);
        t.push(a2, sum2);
        t.push(recv, sum_recv);
        assert!(t.is_canonical_extension(a1, &sum1));
        t.pop();
        assert!(!t.is_canonical_extension(a1, &sum1), "without the barrier");
    }

    #[test]
    fn action_order_is_thread_major() {
        use crate::types::MsgId;
        let i0 = Action::Internal { thread: 0 };
        let r0 = Action::Receive {
            thread: 0,
            msg: MsgId::new(1, 0),
        };
        let r0b = Action::Receive {
            thread: 0,
            msg: MsgId::new(1, 1),
        };
        let i1 = Action::Internal { thread: 1 };
        assert!(i0 < r0, "variant rank breaks same-thread ties");
        assert!(r0 < r0b, "message id breaks same-variant ties");
        assert!(r0b < i1, "thread dominates everything");
    }
}
