//! System state and the small-step transition relation.
//!
//! The semantics is factored as *enabled actions* + *apply*: at every state
//! the set of possible next steps is computed (one per runnable thread,
//! plus one per eligible message for each receive choice), a scheduler picks
//! one, and `apply` produces the successor state and the trace events. The
//! explicit-state explorers enumerate the same action sets exhaustively, so
//! random testing, replay and model checking all share one semantics.
//!
//! Message-delay non-determinism is modelled *lazily*: a send puts its
//! message in flight immediately, and the delivery discipline
//! ([`DeliveryModel`]) decides which in-flight messages a receive may
//! consume. `Unordered` lets a receive take any in-flight message to its
//! endpoint — precisely the arbitrary-transit-delay semantics whose absence
//! in MCC the paper criticises.

use crate::program::{Instr, Program};
use crate::trace::{Event, EventKind, Violation};
use crate::types::{DeliveryModel, EndpointAddr, MsgId, Port, ThreadId, Value, VarId};
use serde::{Deserialize, Serialize};

/// A message in transit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct InFlight {
    pub id: MsgId,
    /// Source endpoint. The DSL sends from a thread's implicit port-0
    /// endpoint; pairwise FIFO groups by this field.
    pub from: EndpointAddr,
    pub to: EndpointAddr,
    pub value: Value,
    /// Global send order; only meaningful (and only nonzero) under
    /// [`DeliveryModel::ZeroDelay`], so that states which differ solely in
    /// irrelevant send timestamps stay identical under the other models.
    pub send_seq: u32,
}

/// State of a non-blocking request handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ReqState {
    /// Never issued (or already consumed by a wait).
    Unused,
    /// A non-blocking send completed at issue (infinite buffering).
    SendDone,
    /// A posted non-blocking receive awaiting a message.
    RecvPending { port: Port, var: VarId },
    /// A receive request that a wait has already bound.
    RecvDone,
}

/// Per-thread state.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ThreadState {
    pub pc: usize,
    pub locals: Vec<Value>,
    pub reqs: Vec<ReqState>,
    /// Number of sends this thread has issued (for canonical [`MsgId`]s).
    pub sends_issued: u16,
}

/// A schedulable step.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Action {
    /// Deterministic instruction of one thread (send, assign, branch, …).
    Internal { thread: ThreadId },
    /// A blocking receive consuming a specific eligible message.
    Receive { thread: ThreadId, msg: MsgId },
    /// A wait binding its pending receive request to a specific message.
    CompleteWait { thread: ThreadId, msg: MsgId },
}

impl Action {
    pub fn thread(&self) -> ThreadId {
        match *self {
            Action::Internal { thread }
            | Action::Receive { thread, .. }
            | Action::CompleteWait { thread, .. } => thread,
        }
    }

    /// The message consumed by this action, if any.
    pub fn message(&self) -> Option<MsgId> {
        match *self {
            Action::Receive { msg, .. } | Action::CompleteWait { msg, .. } => Some(msg),
            Action::Internal { .. } => None,
        }
    }

    /// Variant rank for the thread-major total order.
    fn kind_rank(&self) -> u8 {
        match self {
            Action::Internal { .. } => 0,
            Action::Receive { .. } => 1,
            Action::CompleteWait { .. } => 2,
        }
    }
}

/// Thread-major total order on actions: `(thread, variant, message)`.
///
/// This is the alphabet order the Mazurkiewicz normal form
/// ([`crate::canon`]) is defined against. [`SysState::enabled_actions`]
/// returns actions ascending in exactly this order (threads in index
/// order, one action variant per thread, eligible messages ascending by
/// id), which the canonical-schedule DFS relies on: exploring children in
/// ascending order guarantees the lexicographically least word of every
/// trace class is walked before any equivalent word.
impl Ord for Action {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.thread(), self.kind_rank(), self.message()).cmp(&(
            other.thread(),
            other.kind_rank(),
            other.message(),
        ))
    }
}

impl PartialOrd for Action {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The complete system state. `Hash`/`Eq` give explicit-state explorers a
/// canonical key: in-flight messages are kept sorted by id.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct SysState {
    pub threads: Vec<ThreadState>,
    pub in_flight: Vec<InFlight>,
    pub next_send_seq: u32,
    pub violation: Option<Violation>,
}

impl SysState {
    /// The initial state of a compiled program (locals zeroed).
    pub fn initial(program: &Program) -> SysState {
        SysState {
            threads: program
                .threads
                .iter()
                .map(|t| ThreadState {
                    pc: 0,
                    locals: vec![0; t.num_vars],
                    reqs: vec![ReqState::Unused; t.num_reqs],
                    sends_issued: 0,
                })
                .collect(),
            in_flight: Vec::new(),
            next_send_seq: 1,
            violation: None,
        }
    }

    /// Has every thread run to completion?
    pub fn all_done(&self, program: &Program) -> bool {
        self.threads
            .iter()
            .zip(&program.threads)
            .all(|(ts, t)| ts.pc >= t.code.len())
    }

    /// Messages a receive on `dst` may consume under `model`.
    pub fn eligible_msgs(&self, dst: EndpointAddr, model: DeliveryModel) -> Vec<MsgId> {
        let candidates: Vec<&InFlight> = self.in_flight.iter().filter(|m| m.to == dst).collect();
        match model {
            DeliveryModel::Unordered => candidates.iter().map(|m| m.id).collect(),
            DeliveryModel::PairwiseFifo => candidates
                .iter()
                .filter(|m| {
                    // Oldest in-flight message from the same source endpoint.
                    !candidates
                        .iter()
                        .any(|m2| m2.from == m.from && m2.id.seq < m.id.seq)
                })
                .map(|m| m.id)
                .collect(),
            DeliveryModel::ZeroDelay => candidates
                .iter()
                .min_by_key(|m| m.send_seq)
                .map(|m| vec![m.id])
                .unwrap_or_default(),
        }
    }

    /// All actions schedulable from this state.
    pub fn enabled_actions(&self, program: &Program, model: DeliveryModel) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.violation.is_some() {
            return actions; // violations are terminal
        }
        for (tid, ts) in self.threads.iter().enumerate() {
            let code = &program.threads[tid].code;
            if ts.pc >= code.len() {
                continue;
            }
            match &code[ts.pc] {
                Instr::Recv { port, .. } => {
                    let dst = EndpointAddr::new(tid, *port);
                    for msg in self.eligible_msgs(dst, model) {
                        actions.push(Action::Receive { thread: tid, msg });
                    }
                    // No eligible message: the thread is blocked (no action).
                }
                Instr::Wait { req } => match ts.reqs[req.0 as usize] {
                    ReqState::RecvPending { port, .. } => {
                        let dst = EndpointAddr::new(tid, port);
                        for msg in self.eligible_msgs(dst, model) {
                            actions.push(Action::CompleteWait { thread: tid, msg });
                        }
                    }
                    _ => actions.push(Action::Internal { thread: tid }),
                },
                _ => actions.push(Action::Internal { thread: tid }),
            }
        }
        actions
    }

    /// Apply an action, producing the successor state and its trace events.
    ///
    /// Panics if the action is not enabled (callers must draw actions from
    /// [`SysState::enabled_actions`]).
    pub fn apply(
        &self,
        program: &Program,
        action: Action,
        model: DeliveryModel,
    ) -> (SysState, Vec<Event>) {
        let mut next = self.clone();
        let mut events = Vec::with_capacity(1);
        let tid = action.thread();
        let pc = next.threads[tid].pc;
        let instr = program.threads[tid].code[pc].clone();

        match (&instr, action) {
            (Instr::Send { to, value }, Action::Internal { .. }) => {
                let v = value.eval(&next.threads[tid].locals);
                let msg = next.push_message(tid, *to, v, model);
                events.push(Event {
                    thread: tid,
                    pc,
                    kind: EventKind::Send {
                        msg,
                        to: *to,
                        value: v,
                    },
                });
                next.threads[tid].pc += 1;
            }
            (Instr::SendI { to, value, req }, Action::Internal { .. }) => {
                let v = value.eval(&next.threads[tid].locals);
                let msg = next.push_message(tid, *to, v, model);
                next.threads[tid].reqs[req.0 as usize] = ReqState::SendDone;
                events.push(Event {
                    thread: tid,
                    pc,
                    kind: EventKind::Send {
                        msg,
                        to: *to,
                        value: v,
                    },
                });
                next.threads[tid].pc += 1;
            }
            (Instr::Recv { port, var }, Action::Receive { msg, .. }) => {
                let value = next.take_message(msg);
                next.threads[tid].locals[var.0 as usize] = value;
                events.push(Event {
                    thread: tid,
                    pc,
                    kind: EventKind::Recv {
                        port: *port,
                        var: *var,
                        value,
                        msg,
                    },
                });
                next.threads[tid].pc += 1;
            }
            (Instr::RecvI { port, var, req }, Action::Internal { .. }) => {
                next.threads[tid].reqs[req.0 as usize] = ReqState::RecvPending {
                    port: *port,
                    var: *var,
                };
                events.push(Event {
                    thread: tid,
                    pc,
                    kind: EventKind::RecvPost {
                        port: *port,
                        var: *var,
                        req: *req,
                    },
                });
                next.threads[tid].pc += 1;
            }
            (Instr::Wait { req }, Action::CompleteWait { msg, .. }) => {
                let ReqState::RecvPending { port, var } = next.threads[tid].reqs[req.0 as usize]
                else {
                    panic!("CompleteWait on a request that is not a pending receive");
                };
                let value = next.take_message(msg);
                next.threads[tid].locals[var.0 as usize] = value;
                next.threads[tid].reqs[req.0 as usize] = ReqState::RecvDone;
                events.push(Event {
                    thread: tid,
                    pc,
                    kind: EventKind::WaitRecv {
                        req: *req,
                        port,
                        var,
                        value,
                        msg,
                    },
                });
                next.threads[tid].pc += 1;
            }
            (Instr::Wait { req }, Action::Internal { .. }) => {
                events.push(Event {
                    thread: tid,
                    pc,
                    kind: EventKind::WaitNoop { req: *req },
                });
                next.threads[tid].pc += 1;
            }
            (Instr::Assign { var, expr }, Action::Internal { .. }) => {
                let v = expr.eval(&next.threads[tid].locals);
                next.threads[tid].locals[var.0 as usize] = v;
                events.push(Event {
                    thread: tid,
                    pc,
                    kind: EventKind::Assign {
                        var: *var,
                        value: v,
                    },
                });
                next.threads[tid].pc += 1;
            }
            (Instr::Assert { cond, message }, Action::Internal { .. }) => {
                if cond.eval(&next.threads[tid].locals) {
                    events.push(Event {
                        thread: tid,
                        pc,
                        kind: EventKind::AssertOk,
                    });
                    next.threads[tid].pc += 1;
                } else {
                    let violation = Violation {
                        thread: tid,
                        pc,
                        message: message.clone(),
                    };
                    events.push(Event {
                        thread: tid,
                        pc,
                        kind: EventKind::AssertFail {
                            message: message.clone(),
                        },
                    });
                    next.violation = Some(violation);
                    next.threads[tid].pc += 1;
                }
            }
            (Instr::Branch { cond, else_target }, Action::Internal { .. }) => {
                let taken = cond.eval(&next.threads[tid].locals);
                events.push(Event {
                    thread: tid,
                    pc,
                    kind: EventKind::Branch { taken },
                });
                next.threads[tid].pc = if taken { pc + 1 } else { *else_target };
            }
            (Instr::Jump { target }, Action::Internal { .. }) => {
                next.threads[tid].pc = *target;
            }
            (i, a) => panic!("action {a:?} does not match instruction {i:?}"),
        }
        (next, events)
    }

    /// Insert a message in flight (keeping the vector sorted by id).
    fn push_message(
        &mut self,
        tid: ThreadId,
        to: EndpointAddr,
        value: Value,
        model: DeliveryModel,
    ) -> MsgId {
        let seq = self.threads[tid].sends_issued;
        self.threads[tid].sends_issued += 1;
        let id = MsgId {
            thread: tid as u16,
            seq,
        };
        let send_seq = if model == DeliveryModel::ZeroDelay {
            let s = self.next_send_seq;
            self.next_send_seq += 1;
            s
        } else {
            0
        };
        let m = InFlight {
            id,
            from: EndpointAddr::new(tid, 0),
            to,
            value,
            send_seq,
        };
        let pos = self.in_flight.partition_point(|x| x.id < id);
        self.in_flight.insert(pos, m);
        id
    }

    /// Remove a message from flight, returning its value.
    fn take_message(&mut self, id: MsgId) -> Value {
        let pos = self
            .in_flight
            .iter()
            .position(|m| m.id == id)
            .expect("message not in flight");
        self.in_flight.remove(pos).value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Expr;

    /// t1 and t2 each send one message to t0; t0 receives twice.
    fn race_program() -> Program {
        let mut b = ProgramBuilder::new("race");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        b.recv(t0, 0);
        b.recv(t0, 0);
        b.send_const(t1, t0, 0, 10);
        b.send_const(t2, t0, 0, 20);
        b.build().unwrap()
    }

    #[test]
    fn initial_state_shape() {
        let p = race_program();
        let s = SysState::initial(&p);
        assert_eq!(s.threads.len(), 3);
        assert!(s.in_flight.is_empty());
        assert!(!s.all_done(&p));
    }

    #[test]
    fn receiver_blocks_until_send() {
        let p = race_program();
        let s = SysState::initial(&p);
        let actions = s.enabled_actions(&p, DeliveryModel::Unordered);
        // t0 is blocked on recv; only the two senders can step.
        assert_eq!(actions.len(), 2);
        assert!(actions.iter().all(|a| matches!(a, Action::Internal { .. })));
        let threads: Vec<_> = actions.iter().map(|a| a.thread()).collect();
        assert_eq!(threads, vec![1, 2]);
    }

    #[test]
    fn unordered_recv_offers_all_messages() {
        let p = race_program();
        let s = SysState::initial(&p);
        // Run both sends.
        let (s, _) = s.apply(&p, Action::Internal { thread: 1 }, DeliveryModel::Unordered);
        let (s, _) = s.apply(&p, Action::Internal { thread: 2 }, DeliveryModel::Unordered);
        assert_eq!(s.in_flight.len(), 2);
        let actions = s.enabled_actions(&p, DeliveryModel::Unordered);
        let recvs: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, Action::Receive { .. }))
            .collect();
        assert_eq!(
            recvs.len(),
            2,
            "both messages must be receivable: {actions:?}"
        );
    }

    #[test]
    fn zero_delay_recv_offers_only_oldest() {
        let p = race_program();
        let s = SysState::initial(&p);
        let (s, _) = s.apply(&p, Action::Internal { thread: 2 }, DeliveryModel::ZeroDelay);
        let (s, _) = s.apply(&p, Action::Internal { thread: 1 }, DeliveryModel::ZeroDelay);
        let actions = s.enabled_actions(&p, DeliveryModel::ZeroDelay);
        let recvs: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Receive { msg, .. } => Some(*msg),
                _ => None,
            })
            .collect();
        // t2 sent first: only its message is deliverable.
        assert_eq!(recvs, vec![MsgId::new(2, 0)]);
    }

    #[test]
    fn receive_sets_local_and_consumes() {
        let p = race_program();
        let s = SysState::initial(&p);
        let (s, _) = s.apply(&p, Action::Internal { thread: 1 }, DeliveryModel::Unordered);
        let msg = MsgId::new(1, 0);
        let (s, ev) = s.apply(
            &p,
            Action::Receive { thread: 0, msg },
            DeliveryModel::Unordered,
        );
        assert!(s.in_flight.is_empty());
        assert_eq!(s.threads[0].locals[0], 10);
        assert!(matches!(ev[0].kind, EventKind::Recv { value: 10, .. }));
    }

    /// Pairwise FIFO: two sends from one thread to one endpoint must be
    /// received in order; a send from another thread can interleave.
    #[test]
    fn pairwise_fifo_orders_same_source() {
        let mut b = ProgramBuilder::new("fifo");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        b.recv(t0, 0);
        b.recv(t0, 0);
        b.send_const(t1, t0, 0, 1);
        b.send_const(t1, t0, 0, 2);
        let p = b.build().unwrap();
        let s = SysState::initial(&p);
        let (s, _) = s.apply(
            &p,
            Action::Internal { thread: 1 },
            DeliveryModel::PairwiseFifo,
        );
        let (s, _) = s.apply(
            &p,
            Action::Internal { thread: 1 },
            DeliveryModel::PairwiseFifo,
        );
        let eligible = s.eligible_msgs(EndpointAddr::new(0, 0), DeliveryModel::PairwiseFifo);
        assert_eq!(
            eligible,
            vec![MsgId::new(1, 0)],
            "only the first send is eligible"
        );
        // Under Unordered, both would be eligible.
        let eligible = s.eligible_msgs(EndpointAddr::new(0, 0), DeliveryModel::Unordered);
        assert_eq!(eligible.len(), 2);
    }

    #[test]
    fn assert_failure_is_terminal() {
        let mut b = ProgramBuilder::new("assert");
        let t0 = b.thread("t0");
        b.assert_cond(t0, crate::expr::Cond::False, "boom");
        let p = b.build().unwrap();
        let s = SysState::initial(&p);
        let (s, ev) = s.apply(&p, Action::Internal { thread: 0 }, DeliveryModel::Unordered);
        assert!(s.violation.is_some());
        assert!(matches!(&ev[0].kind, EventKind::AssertFail { .. }));
        assert!(s.enabled_actions(&p, DeliveryModel::Unordered).is_empty());
    }

    #[test]
    fn branch_follows_condition() {
        use crate::expr::Cond;
        use crate::program::Op;
        let mut b = ProgramBuilder::new("branch");
        let t0 = b.thread("t0");
        let x = b.fresh_var(t0);
        b.assign(t0, x, Expr::Const(5));
        b.push_op(
            t0,
            Op::If {
                cond: Cond::eq(Expr::Var(x), Expr::Const(5)),
                then_ops: vec![Op::Assign {
                    var: x,
                    expr: Expr::Const(100),
                }],
                else_ops: vec![Op::Assign {
                    var: x,
                    expr: Expr::Const(200),
                }],
            },
        );
        let p = b.build().unwrap();
        let mut s = SysState::initial(&p);
        let mut all_events = vec![];
        while let Some(&a) = s.enabled_actions(&p, DeliveryModel::Unordered).first() {
            let (ns, ev) = s.apply(&p, a, DeliveryModel::Unordered);
            all_events.extend(ev);
            s = ns;
        }
        assert_eq!(s.threads[0].locals[0], 100);
        assert!(all_events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Branch { taken: true })));
    }

    #[test]
    fn recv_i_and_wait_bind_message() {
        let mut b = ProgramBuilder::new("nb");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let (var, req) = b.recv_i(t0, 0);
        b.wait(t0, req);
        b.send_const(t1, t0, 0, 99);
        let p = b.build().unwrap();
        let s = SysState::initial(&p);
        // Post the receive first: wait is then blocked until the send.
        let (s, ev) = s.apply(&p, Action::Internal { thread: 0 }, DeliveryModel::Unordered);
        assert!(matches!(ev[0].kind, EventKind::RecvPost { .. }));
        let blocked = s.enabled_actions(&p, DeliveryModel::Unordered);
        assert_eq!(blocked.iter().filter(|a| a.thread() == 0).count(), 0);
        let (s, _) = s.apply(&p, Action::Internal { thread: 1 }, DeliveryModel::Unordered);
        let acts = s.enabled_actions(&p, DeliveryModel::Unordered);
        let wait_act = acts
            .iter()
            .find(|a| matches!(a, Action::CompleteWait { .. }))
            .copied()
            .expect("wait must be completable");
        let (s, ev) = s.apply(&p, wait_act, DeliveryModel::Unordered);
        assert_eq!(s.threads[0].locals[var.0 as usize], 99);
        assert!(matches!(ev[0].kind, EventKind::WaitRecv { value: 99, .. }));
    }

    #[test]
    fn wait_on_send_request_is_noop() {
        let mut b = ProgramBuilder::new("nb-send");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        b.recv(t1, 0);
        let req = b.send_i_const(t0, t1, 0, 5);
        b.wait(t0, req);
        let p = b.build().unwrap();
        let s = SysState::initial(&p);
        let (s, _) = s.apply(&p, Action::Internal { thread: 0 }, DeliveryModel::Unordered);
        let acts = s.enabled_actions(&p, DeliveryModel::Unordered);
        let wait = acts.iter().find(|a| a.thread() == 0).copied().unwrap();
        assert!(matches!(wait, Action::Internal { .. }));
        let (_, ev) = s.apply(&p, wait, DeliveryModel::Unordered);
        assert!(matches!(ev[0].kind, EventKind::WaitNoop { .. }));
    }

    #[test]
    fn states_hash_canonically_across_interleavings() {
        use std::collections::HashSet;
        let p = race_program();
        let s0 = SysState::initial(&p);
        // send t1 then t2 vs t2 then t1 — same resulting state (Unordered).
        let (a, _) = s0.apply(&p, Action::Internal { thread: 1 }, DeliveryModel::Unordered);
        let (a, _) = a.apply(&p, Action::Internal { thread: 2 }, DeliveryModel::Unordered);
        let (b2, _) = s0.apply(&p, Action::Internal { thread: 2 }, DeliveryModel::Unordered);
        let (b2, _) = b2.apply(&p, Action::Internal { thread: 1 }, DeliveryModel::Unordered);
        assert_eq!(a, b2);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b2));
    }
}
