//! Schedulers: policies for resolving the action non-determinism, plus the
//! *directed* execution mode used by path exploration.
//!
//! The plain schedulers ([`RandomScheduler`], [`FirstScheduler`],
//! [`ScriptScheduler`], [`RoundRobinScheduler`]) pick one enabled action at
//! a time. [`execute_directed`] is different in kind: given a
//! [`BranchPlan`] prescribing every conditional branch outcome, it searches
//! *over* schedules (depth-first, with a visited set) for a concrete
//! execution whose branches follow the plan — and reports an infeasible
//! prefix when no schedule can realise it. Path-complete checking
//! (`symbolic::paths`) uses this to turn each feasible branch-outcome
//! vector into one trace for the per-execution symbolic checker.

use crate::program::{Instr, Program, Thread};
use crate::runtime::{replay, ExecOutcome};
use crate::state::{Action, SysState};
use crate::trace::EventKind;
use crate::types::DeliveryModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Instant;

/// A scheduling policy. `choose` returns the index of the selected action,
/// or `None` to abort the run (used by replay divergence).
pub trait Scheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize>;
}

/// Uniform random choice with a fixed seed (reproducible).
pub struct RandomScheduler {
    rng: SmallRng,
}

impl RandomScheduler {
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize> {
        if actions.is_empty() {
            None
        } else {
            Some(self.rng.gen_range(0..actions.len()))
        }
    }
}

/// Always the first enabled action: a deterministic, mostly-sequential
/// schedule (thread 0 runs as far as it can, etc.).
#[derive(Default)]
pub struct FirstScheduler;

impl Scheduler for FirstScheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize> {
        if actions.is_empty() {
            None
        } else {
            Some(0)
        }
    }
}

/// Replays a recorded action sequence exactly; `None` when the script is
/// exhausted or the scripted action is not currently enabled (divergence).
pub struct ScriptScheduler {
    script: Vec<Action>,
    pos: usize,
    diverged: bool,
}

impl ScriptScheduler {
    pub fn new(script: Vec<Action>) -> Self {
        ScriptScheduler {
            script,
            pos: 0,
            diverged: false,
        }
    }

    /// Did the replay fail to follow the script?
    pub fn diverged(&self) -> bool {
        self.diverged
    }

    /// Number of script entries consumed.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Scheduler for ScriptScheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize> {
        let Some(&want) = self.script.get(self.pos) else {
            return None; // script exhausted: stop (not a divergence)
        };
        match actions.iter().position(|&a| a == want) {
            Some(i) => {
                self.pos += 1;
                Some(i)
            }
            None => {
                self.diverged = true;
                None
            }
        }
    }
}

/// Round-robin over threads: picks the first action of the thread with the
/// lowest id strictly greater than the previously scheduled thread, wrapping
/// around. Gives fair interleavings for smoke tests.
#[derive(Default)]
pub struct RoundRobinScheduler {
    last_thread: Option<usize>,
}

impl Scheduler for RoundRobinScheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize> {
        if actions.is_empty() {
            return None;
        }
        let start = self.last_thread.map_or(0, |t| t + 1);
        // First action of the lowest thread >= start, else lowest overall.
        let best = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| a.thread() >= start)
            .min_by_key(|(_, a)| a.thread())
            .or_else(|| actions.iter().enumerate().min_by_key(|(_, a)| a.thread()))
            .map(|(i, _)| i);
        if let Some(i) = best {
            self.last_thread = Some(actions[i].thread());
        }
        best
    }
}

/// A prescribed control-flow path: one taken/not-taken vector per thread,
/// in that thread's branch-execution order. This is the unit the path
/// explorer enumerates — two executions with equal plans are the same
/// "path" for the trace-based symbolic encoding, whatever their
/// interleaving or message matching.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BranchPlan {
    /// `outcomes[t][i]` is the prescribed outcome of thread `t`'s `i`-th
    /// executed branch (`true` = then-direction).
    pub outcomes: Vec<Vec<bool>>,
}

impl BranchPlan {
    /// Total prescribed branch outcomes across all threads.
    pub fn len(&self) -> usize {
        self.outcomes.iter().map(Vec::len).sum()
    }

    /// Does the plan prescribe nothing (a branch-free program)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compact human-readable form naming each branching thread, e.g.
    /// `worker:F` or `consumer:TF gate:T` (branch-free threads omitted).
    pub fn render(&self, program: &Program) -> String {
        let parts: Vec<String> = self
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(t, v)| {
                let name = program
                    .threads
                    .get(t)
                    .map(|th| th.name.as_str())
                    .unwrap_or("?");
                let bits: String = v.iter().map(|&b| if b { 'T' } else { 'F' }).collect();
                format!("{name}:{bits}")
            })
            .collect();
        if parts.is_empty() {
            "(branch-free)".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Why the static path space of a program could not be enumerated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PathSpaceError {
    /// A thread's flat code contains a control-flow cycle (only possible
    /// for hand-written JSON programs; the structured DSL is loop-free).
    CyclicCode { thread: usize },
    /// A single thread admits more than the per-thread cap of paths.
    TooManyPaths { thread: usize, cap: usize },
}

impl std::fmt::Display for PathSpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathSpaceError::CyclicCode { thread } => {
                write!(f, "thread {thread} has cyclic control flow")
            }
            PathSpaceError::TooManyPaths { thread, cap } => {
                write!(f, "thread {thread} admits more than {cap} static paths")
            }
        }
    }
}

/// All branch-outcome sequences one thread's (loop-free) flat code admits,
/// in a deterministic order: the all-taken path first, flipping later
/// branches before earlier ones.
fn thread_paths(thread: &Thread, tid: usize, cap: usize) -> Result<Vec<Vec<bool>>, PathSpaceError> {
    let code = &thread.code;
    let mut done: Vec<Vec<bool>> = Vec::new();
    // Depth-first over (pc, outcomes-so-far); the stack order makes the
    // enumeration deterministic.
    let mut stack: Vec<(usize, Vec<bool>)> = vec![(0, Vec::new())];
    while let Some((mut pc, mut outcomes)) = stack.pop() {
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > code.len() + 1 {
                return Err(PathSpaceError::CyclicCode { thread: tid });
            }
            if pc >= code.len() {
                done.push(outcomes);
                if done.len() > cap {
                    return Err(PathSpaceError::TooManyPaths { thread: tid, cap });
                }
                break;
            }
            match &code[pc] {
                Instr::Branch { else_target, .. } => {
                    let mut not_taken = outcomes.clone();
                    not_taken.push(false);
                    stack.push((*else_target, not_taken));
                    outcomes.push(true);
                    pc += 1;
                }
                Instr::Jump { target } => {
                    if *target <= pc {
                        return Err(PathSpaceError::CyclicCode { thread: tid });
                    }
                    pc = *target;
                }
                _ => pc += 1,
            }
        }
    }
    Ok(done)
}

/// The static path space of a program: per thread, every branch-outcome
/// sequence its loop-free code admits. The program's paths are the cross
/// product; [`execute_directed`] decides which combinations are feasible.
pub fn program_paths(
    program: &Program,
    per_thread_cap: usize,
) -> Result<Vec<Vec<Vec<bool>>>, PathSpaceError> {
    program
        .threads
        .iter()
        .enumerate()
        .map(|(tid, t)| thread_paths(t, tid, per_thread_cap))
        .collect()
}

/// Budgets for one directed search.
#[derive(Clone, Copy, Debug)]
pub struct DirectedConfig {
    /// Visited-state cap; exceeding it yields [`DirectedOutcome::Exhausted`].
    pub max_states: usize,
    /// Transition (`apply`-call) cap — the search's *work* budget, as
    /// opposed to the *memory* budget above. State caching makes the two
    /// diverge: a non-canonical sweep re-derives the same states through
    /// many more transitions, so a work-bounded search can exhaust without
    /// canonical pruning yet resolve with it. `u64::MAX` = unbounded.
    pub max_transitions: u64,
    /// Absolute wall-clock deadline shared with the caller's whole check.
    pub deadline: Option<Instant>,
    /// Explore only the canonical (lexicographically least) linearisation
    /// of each Mazurkiewicz trace class (see [`crate::canon`]). Sound for
    /// every [`DirectedOutcome`] — plan compliance, completion, violation
    /// and deadlock are all invariant under commuting independent actions
    /// — and typically prunes the schedule space by an exponential factor.
    /// The `--no-canonical` escape hatch turns it off.
    pub canonical: bool,
}

impl Default for DirectedConfig {
    fn default() -> Self {
        DirectedConfig {
            max_states: 200_000,
            max_transitions: u64::MAX,
            deadline: None,
            canonical: true,
        }
    }
}

/// Search-effort counters for one directed search, for the
/// `schedules_canonical_skipped` observability surface and the perf gate.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectedStats {
    /// Distinct `(state, branch-index, depth)` nodes visited.
    pub states: usize,
    /// Schedule transitions executed (`apply` calls) — the search's real
    /// work measure. The canonical prune rejects extensions *before*
    /// applying them, so this is where one-representative-per-class shows
    /// up; the visited-set size alone would not (state caching already
    /// merges commuted interleavings into a DAG whose node count the
    /// prune cannot shrink).
    pub transitions: u64,
    /// Schedule extensions pruned by the canonical normal-form test.
    pub canonical_skipped: u64,
}

/// Result of searching for an execution that follows a [`BranchPlan`].
#[derive(Clone, Debug)]
pub enum DirectedOutcome {
    /// A complete, violation-free execution realises the full plan.
    Realized(ExecOutcome),
    /// An execution complying with the plan's prefix reaches a concrete
    /// assertion violation — a real counterexample on this path.
    Violating(ExecOutcome),
    /// The plan's realisable executions all stop in a deadlock; the
    /// deepest such prefix is returned for symbolic analysis.
    Deadlocked(ExecOutcome),
    /// No execution follows the plan: the search exhausted every schedule
    /// after matching at most `matched_branches` prescribed outcomes.
    Infeasible { matched_branches: usize },
    /// The state or time budget ran out before the search resolved —
    /// callers must degrade to an unknown verdict, never to safe.
    Exhausted { states: usize },
}

struct DirectedSearch<'a> {
    program: &'a Program,
    model: DeliveryModel,
    plan: &'a BranchPlan,
    /// Visited key: `(state, branch indices, schedule depth)`. The depth
    /// component is 0 in non-canonical mode (pure state caching). In
    /// canonical mode it keeps prefixes of different lengths from
    /// colliding, which together with the ascending child order makes the
    /// cache sound under normal-form pruning: within one depth, the first
    /// arrival at a node is via the lex-least canonical prefix, and every
    /// canonical completion extends that prefix.
    visited: HashSet<(SysState, Vec<u16>, usize)>,
    cfg: DirectedConfig,
    canon: crate::canon::CanonTracker,
    canonical_skipped: u64,
    transitions: u64,
    exhausted: bool,
    matched_best: usize,
    best_deadlock: Option<Vec<Action>>,
}

enum Found {
    Complete(Vec<Action>),
    Violation(Vec<Action>),
}

impl DirectedSearch<'_> {
    fn dfs(
        &mut self,
        state: &SysState,
        bidx: &mut Vec<u16>,
        matched: usize,
        actions: &mut Vec<Action>,
    ) -> Option<Found> {
        if self.exhausted {
            return None;
        }
        let depth = if self.cfg.canonical { actions.len() } else { 0 };
        if !self.visited.insert((state.clone(), bidx.clone(), depth)) {
            return None;
        }
        if self.visited.len() > self.cfg.max_states
            || (self.visited.len().is_multiple_of(256)
                && self.cfg.deadline.is_some_and(|d| Instant::now() >= d))
        {
            self.exhausted = true;
            return None;
        }
        self.matched_best = self.matched_best.max(matched);
        let enabled = state.enabled_actions(self.program, self.model);
        if enabled.is_empty() {
            if state.all_done(self.program) {
                // A complete execution realises the plan only if every
                // prescribed branch was actually executed.
                let full = bidx
                    .iter()
                    .zip(&self.plan.outcomes)
                    .all(|(&i, v)| i as usize == v.len());
                if full {
                    return Some(Found::Complete(actions.clone()));
                }
            } else if state.violation.is_none() {
                // Deadlock on a plan-compliant prefix: keep the deepest.
                if self
                    .best_deadlock
                    .as_ref()
                    .is_none_or(|b| b.len() < actions.len())
                {
                    self.best_deadlock = Some(actions.clone());
                }
            }
            return None;
        }
        for action in enabled {
            if self.exhausted {
                return None;
            }
            // Canonical prune first: it needs no successor state, only the
            // action's footprint at the current state.
            let summary = if self.cfg.canonical {
                let s = crate::canon::summarize(self.program, state, action);
                if !self.canon.is_canonical_extension(action, &s) {
                    self.canonical_skipped += 1;
                    continue;
                }
                Some(s)
            } else {
                None
            };
            self.transitions += 1;
            if self.transitions > self.cfg.max_transitions {
                self.exhausted = true;
                return None;
            }
            let (next, events) = state.apply(self.program, action, self.model);
            // Plan compliance: a branch event must follow the prescription.
            let mut matched_here = matched;
            let mut complies = true;
            if let Some(ev) = events.first() {
                if let EventKind::Branch { taken } = ev.kind {
                    let t = ev.thread;
                    let i = bidx[t] as usize;
                    match self.plan.outcomes[t].get(i) {
                        Some(&want) if want == taken => {
                            matched_here += 1;
                        }
                        _ => complies = false,
                    }
                    if complies {
                        bidx[t] += 1;
                    }
                }
            }
            if !complies {
                self.matched_best = self.matched_best.max(matched);
                continue;
            }
            actions.push(action);
            let found = if next.violation.is_some() {
                // Violations are terminal in the semantics; a compliant
                // prefix reaching one is a concrete counterexample.
                Some(Found::Violation(actions.clone()))
            } else {
                if let Some(s) = summary {
                    self.canon.push(action, s);
                }
                let f = self.dfs(&next, bidx, matched_here, actions);
                if summary.is_some() {
                    self.canon.pop();
                }
                f
            };
            actions.pop();
            if let Some(ev) = events.first() {
                if let EventKind::Branch { taken } = ev.kind {
                    let t = ev.thread;
                    let i = (bidx[t] as usize).wrapping_sub(1);
                    if self.plan.outcomes[t].get(i) == Some(&taken) {
                        bidx[t] -= 1;
                    }
                }
            }
            if found.is_some() {
                return found;
            }
        }
        None
    }
}

/// Search for a concrete execution whose branch outcomes follow `plan`
/// exactly, exploring schedules depth-first under `model`. See
/// [`DirectedOutcome`] for the possible results; the search is exhaustive
/// (up to the budget), so [`DirectedOutcome::Infeasible`] is definitive.
pub fn execute_directed(
    program: &Program,
    model: DeliveryModel,
    plan: &BranchPlan,
    cfg: DirectedConfig,
) -> DirectedOutcome {
    execute_directed_with_stats(program, model, plan, cfg).0
}

/// [`execute_directed`] plus its search-effort counters ([`DirectedStats`]).
pub fn execute_directed_with_stats(
    program: &Program,
    model: DeliveryModel,
    plan: &BranchPlan,
    cfg: DirectedConfig,
) -> (DirectedOutcome, DirectedStats) {
    assert_eq!(
        plan.outcomes.len(),
        program.threads.len(),
        "plan must prescribe one outcome vector per thread"
    );
    let mut search = DirectedSearch {
        program,
        model,
        plan,
        visited: HashSet::new(),
        cfg,
        canon: crate::canon::CanonTracker::new(model),
        canonical_skipped: 0,
        transitions: 0,
        exhausted: false,
        matched_best: 0,
        best_deadlock: None,
    };
    let init = SysState::initial(program);
    let mut bidx = vec![0u16; program.threads.len()];
    let mut actions = Vec::new();
    let found = search.dfs(&init, &mut bidx, 0, &mut actions);
    let stats = DirectedStats {
        states: search.visited.len(),
        transitions: search.transitions,
        canonical_skipped: search.canonical_skipped,
    };
    let rerun = |script: &[Action]| {
        replay(program, model, script).expect("directed search scripts replay exactly")
    };
    let outcome = match found {
        Some(Found::Violation(script)) => DirectedOutcome::Violating(rerun(&script)),
        Some(Found::Complete(script)) => DirectedOutcome::Realized(rerun(&script)),
        None if search.exhausted => DirectedOutcome::Exhausted {
            states: search.visited.len(),
        },
        None => match search.best_deadlock {
            Some(script) => DirectedOutcome::Deadlocked(rerun(&script)),
            None => DirectedOutcome::Infeasible {
                matched_branches: search.matched_best,
            },
        },
    };
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MsgId;

    fn acts() -> Vec<Action> {
        vec![
            Action::Internal { thread: 0 },
            Action::Internal { thread: 1 },
            Action::Receive {
                thread: 2,
                msg: MsgId::new(0, 0),
            },
        ]
    }

    #[test]
    fn random_is_reproducible() {
        let a = acts();
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..20).map(|_| s.choose(&a).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        // Different seeds usually differ (not guaranteed, but this seed pair does).
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_handles_empty() {
        let mut s = RandomScheduler::new(0);
        assert_eq!(s.choose(&[]), None);
    }

    #[test]
    fn first_always_zero() {
        let mut s = FirstScheduler;
        assert_eq!(s.choose(&acts()), Some(0));
        assert_eq!(s.choose(&[]), None);
    }

    #[test]
    fn script_follows_and_reports_divergence() {
        let a = acts();
        let mut s = ScriptScheduler::new(vec![a[2], a[0]]);
        assert_eq!(s.choose(&a), Some(2));
        assert_eq!(s.choose(&a), Some(0));
        assert!(!s.diverged());
        assert_eq!(s.consumed(), 2);
        // Script exhausted: None without divergence.
        assert_eq!(s.choose(&a), None);
        assert!(!s.diverged());
    }

    #[test]
    fn script_divergence_flag() {
        let a = acts();
        let missing = Action::Internal { thread: 9 };
        let mut s = ScriptScheduler::new(vec![missing]);
        assert_eq!(s.choose(&a), None);
        assert!(s.diverged());
    }

    #[test]
    fn round_robin_rotates_threads() {
        let a = acts();
        let mut s = RoundRobinScheduler::default();
        let t1 = a[s.choose(&a).unwrap()].thread();
        let t2 = a[s.choose(&a).unwrap()].thread();
        assert_ne!(t1, t2, "round robin should rotate");
    }

    use crate::builder::ProgramBuilder;
    use crate::expr::{Cond, Expr};
    use crate::program::{Op, Program};
    use crate::types::CmpOp;

    /// Two producers race one value into a consumer that branches on it.
    fn branchy_race() -> Program {
        let mut b = ProgramBuilder::new("branchy-race");
        let c = b.thread("consumer");
        let p1 = b.thread("p1");
        let p2 = b.thread("p2");
        let v = b.recv(c, 0);
        b.push_op(
            c,
            Op::If {
                cond: Cond::cmp(CmpOp::Ge, Expr::Var(v), Expr::Const(10)),
                then_ops: vec![Op::Assign {
                    var: v,
                    expr: Expr::Const(1),
                }],
                else_ops: vec![Op::Assert {
                    cond: Cond::cmp(CmpOp::Eq, Expr::Var(v), Expr::Const(0)),
                    message: "low value must be zero".into(),
                }],
            },
        );
        b.recv(c, 0);
        b.send_const(p1, c, 0, 5);
        b.send_const(p2, c, 0, 50);
        b.build().unwrap()
    }

    #[test]
    fn program_paths_enumerates_both_arms() {
        let p = branchy_race();
        let paths = program_paths(&p, 1024).unwrap();
        assert_eq!(paths[0], vec![vec![true], vec![false]]);
        assert_eq!(paths[1], vec![Vec::<bool>::new()]);
        assert_eq!(paths[2], vec![Vec::<bool>::new()]);
    }

    #[test]
    fn directed_search_realises_the_then_path() {
        let p = branchy_race();
        let plan = BranchPlan {
            outcomes: vec![vec![true], vec![], vec![]],
        };
        match execute_directed(
            &p,
            DeliveryModel::Unordered,
            &plan,
            DirectedConfig::default(),
        ) {
            DirectedOutcome::Realized(out) => {
                assert!(out.trace.is_complete());
                assert_eq!(out.trace.branch_outcomes(0), vec![true]);
                assert!(out.violation().is_none());
            }
            other => panic!("expected a realised path, got {other:?}"),
        }
    }

    #[test]
    fn directed_search_finds_the_concrete_violation_on_the_else_path() {
        let p = branchy_race();
        let plan = BranchPlan {
            outcomes: vec![vec![false], vec![], vec![]],
        };
        match execute_directed(
            &p,
            DeliveryModel::Unordered,
            &plan,
            DirectedConfig::default(),
        ) {
            DirectedOutcome::Violating(out) => {
                let v = out.violation().expect("violation recorded");
                assert!(v.message.contains("low value must be zero"));
                assert_eq!(out.trace.branch_outcomes(0), vec![false]);
            }
            other => panic!("expected a violating path, got {other:?}"),
        }
    }

    #[test]
    fn directed_search_reports_value_infeasible_plans() {
        // Single producer sends 5: the then-arm (v >= 10) is unreachable.
        let mut b = ProgramBuilder::new("infeasible");
        let c = b.thread("consumer");
        let p1 = b.thread("p1");
        let v = b.recv(c, 0);
        b.push_op(
            c,
            Op::If {
                cond: Cond::cmp(CmpOp::Ge, Expr::Var(v), Expr::Const(10)),
                then_ops: vec![],
                else_ops: vec![],
            },
        );
        b.send_const(p1, c, 0, 5);
        let p = b.build().unwrap();
        let plan = BranchPlan {
            outcomes: vec![vec![true], vec![]],
        };
        match execute_directed(
            &p,
            DeliveryModel::Unordered,
            &plan,
            DirectedConfig::default(),
        ) {
            DirectedOutcome::Infeasible { matched_branches } => {
                assert_eq!(matched_branches, 0);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn directed_search_surfaces_plan_compliant_deadlocks() {
        // The consumer's second receive never gets a message.
        let mut b = ProgramBuilder::new("deadlock-path");
        let c = b.thread("consumer");
        let p1 = b.thread("p1");
        b.recv(c, 0);
        b.recv(c, 0);
        b.send_const(p1, c, 0, 1);
        let p = b.build().unwrap();
        let plan = BranchPlan {
            outcomes: vec![vec![], vec![]],
        };
        match execute_directed(
            &p,
            DeliveryModel::Unordered,
            &plan,
            DirectedConfig::default(),
        ) {
            DirectedOutcome::Deadlocked(out) => {
                assert!(out.trace.deadlock);
                assert_eq!(out.trace.receives().len(), 1);
            }
            other => panic!("expected deadlocked, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_state_budget_is_reported_not_misclassified() {
        let p = branchy_race();
        let plan = BranchPlan {
            outcomes: vec![vec![true], vec![], vec![]],
        };
        let cfg = DirectedConfig {
            max_states: 1,
            ..DirectedConfig::default()
        };
        match execute_directed(&p, DeliveryModel::Unordered, &plan, cfg) {
            DirectedOutcome::Exhausted { .. } => {}
            other => panic!("expected exhausted, got {other:?}"),
        }
    }

    /// Outcome kinds must agree between canonical and full search: the
    /// properties the directed search reports (realisability, violation,
    /// deadlock, infeasibility) are all trace-class invariants.
    fn same_kind(a: &DirectedOutcome, b: &DirectedOutcome) -> bool {
        matches!(
            (a, b),
            (DirectedOutcome::Realized(_), DirectedOutcome::Realized(_))
                | (DirectedOutcome::Violating(_), DirectedOutcome::Violating(_))
                | (
                    DirectedOutcome::Deadlocked(_),
                    DirectedOutcome::Deadlocked(_)
                )
                | (
                    DirectedOutcome::Infeasible { .. },
                    DirectedOutcome::Infeasible { .. }
                )
                | (
                    DirectedOutcome::Exhausted { .. },
                    DirectedOutcome::Exhausted { .. }
                )
        )
    }

    #[test]
    fn canonical_search_agrees_and_prunes() {
        let p = branchy_race();
        for model in crate::types::DeliveryModel::ALL {
            for outcomes in [vec![vec![true]], vec![vec![false]]] {
                let plan = BranchPlan {
                    outcomes: [outcomes.clone(), vec![vec![], vec![]]].concat(),
                };
                let on = DirectedConfig::default();
                let off = DirectedConfig {
                    canonical: false,
                    ..DirectedConfig::default()
                };
                let (r_on, _s_on) = execute_directed_with_stats(&p, model, &plan, on);
                let (r_off, s_off) = execute_directed_with_stats(&p, model, &plan, off);
                assert!(
                    same_kind(&r_on, &r_off),
                    "model {model} plan {plan:?}: {r_on:?} vs {r_off:?}"
                );
                assert_eq!(s_off.canonical_skipped, 0);
            }
        }
    }

    #[test]
    fn canonical_search_prunes_exhaustive_sweeps() {
        // Many mutually-independent senders feeding a consumer that wants
        // one receive too many: every plan-compliant execution deadlocks,
        // so the search must sweep the entire schedule space — exactly
        // where one-representative-per-class pays off. A realised plan, by
        // contrast, can stop at the first found schedule.
        let mut b = ProgramBuilder::new("wide-deadlock");
        let c = b.thread("consumer");
        let senders: Vec<_> = (0..4).map(|i| b.thread(format!("s{i}"))).collect();
        for _ in 0..5 {
            b.recv(c, 0);
        }
        for (i, &s) in senders.iter().enumerate() {
            b.send_const(s, c, 0, i as i64);
        }
        let p = b.build().unwrap();
        let plan = BranchPlan {
            outcomes: vec![vec![]; p.threads.len()],
        };
        let (r_on, s_on) = execute_directed_with_stats(
            &p,
            DeliveryModel::Unordered,
            &plan,
            DirectedConfig::default(),
        );
        let (r_off, s_off) = execute_directed_with_stats(
            &p,
            DeliveryModel::Unordered,
            &plan,
            DirectedConfig {
                canonical: false,
                ..DirectedConfig::default()
            },
        );
        assert!(same_kind(&r_on, &r_off), "{r_on:?} vs {r_off:?}");
        let (DirectedOutcome::Deadlocked(on), DirectedOutcome::Deadlocked(off)) = (&r_on, &r_off)
        else {
            panic!("both must deadlock: {r_on:?} vs {r_off:?}");
        };
        assert_eq!(
            on.trace.receives().len(),
            off.trace.receives().len(),
            "deepest deadlock depth is a class invariant"
        );
        assert!(
            s_on.transitions < s_off.transitions,
            "canonical must shrink the explored transitions: {} vs {}",
            s_on.transitions,
            s_off.transitions
        );
        assert!(s_on.canonical_skipped > 0);
        assert_eq!(s_off.canonical_skipped, 0);
    }

    #[test]
    fn branch_plan_renders_compactly() {
        let p = branchy_race();
        let plan = BranchPlan {
            outcomes: vec![vec![true, false], vec![], vec![]],
        };
        assert_eq!(plan.render(&p), "consumer:TF");
        let empty = BranchPlan {
            outcomes: vec![vec![], vec![], vec![]],
        };
        assert_eq!(empty.render(&p), "(branch-free)");
    }
}
