//! Schedulers: policies for resolving the action non-determinism.

use crate::state::Action;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A scheduling policy. `choose` returns the index of the selected action,
/// or `None` to abort the run (used by replay divergence).
pub trait Scheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize>;
}

/// Uniform random choice with a fixed seed (reproducible).
pub struct RandomScheduler {
    rng: SmallRng,
}

impl RandomScheduler {
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize> {
        if actions.is_empty() {
            None
        } else {
            Some(self.rng.gen_range(0..actions.len()))
        }
    }
}

/// Always the first enabled action: a deterministic, mostly-sequential
/// schedule (thread 0 runs as far as it can, etc.).
#[derive(Default)]
pub struct FirstScheduler;

impl Scheduler for FirstScheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize> {
        if actions.is_empty() {
            None
        } else {
            Some(0)
        }
    }
}

/// Replays a recorded action sequence exactly; `None` when the script is
/// exhausted or the scripted action is not currently enabled (divergence).
pub struct ScriptScheduler {
    script: Vec<Action>,
    pos: usize,
    diverged: bool,
}

impl ScriptScheduler {
    pub fn new(script: Vec<Action>) -> Self {
        ScriptScheduler {
            script,
            pos: 0,
            diverged: false,
        }
    }

    /// Did the replay fail to follow the script?
    pub fn diverged(&self) -> bool {
        self.diverged
    }

    /// Number of script entries consumed.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Scheduler for ScriptScheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize> {
        let Some(&want) = self.script.get(self.pos) else {
            return None; // script exhausted: stop (not a divergence)
        };
        match actions.iter().position(|&a| a == want) {
            Some(i) => {
                self.pos += 1;
                Some(i)
            }
            None => {
                self.diverged = true;
                None
            }
        }
    }
}

/// Round-robin over threads: picks the first action of the thread with the
/// lowest id strictly greater than the previously scheduled thread, wrapping
/// around. Gives fair interleavings for smoke tests.
#[derive(Default)]
pub struct RoundRobinScheduler {
    last_thread: Option<usize>,
}

impl Scheduler for RoundRobinScheduler {
    fn choose(&mut self, actions: &[Action]) -> Option<usize> {
        if actions.is_empty() {
            return None;
        }
        let start = self.last_thread.map_or(0, |t| t + 1);
        // First action of the lowest thread >= start, else lowest overall.
        let best = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| a.thread() >= start)
            .min_by_key(|(_, a)| a.thread())
            .or_else(|| actions.iter().enumerate().min_by_key(|(_, a)| a.thread()))
            .map(|(i, _)| i);
        if let Some(i) = best {
            self.last_thread = Some(actions[i].thread());
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MsgId;

    fn acts() -> Vec<Action> {
        vec![
            Action::Internal { thread: 0 },
            Action::Internal { thread: 1 },
            Action::Receive {
                thread: 2,
                msg: MsgId::new(0, 0),
            },
        ]
    }

    #[test]
    fn random_is_reproducible() {
        let a = acts();
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..20).map(|_| s.choose(&a).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        // Different seeds usually differ (not guaranteed, but this seed pair does).
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_handles_empty() {
        let mut s = RandomScheduler::new(0);
        assert_eq!(s.choose(&[]), None);
    }

    #[test]
    fn first_always_zero() {
        let mut s = FirstScheduler;
        assert_eq!(s.choose(&acts()), Some(0));
        assert_eq!(s.choose(&[]), None);
    }

    #[test]
    fn script_follows_and_reports_divergence() {
        let a = acts();
        let mut s = ScriptScheduler::new(vec![a[2], a[0]]);
        assert_eq!(s.choose(&a), Some(2));
        assert_eq!(s.choose(&a), Some(0));
        assert!(!s.diverged());
        assert_eq!(s.consumed(), 2);
        // Script exhausted: None without divergence.
        assert_eq!(s.choose(&a), None);
        assert!(!s.diverged());
    }

    #[test]
    fn script_divergence_flag() {
        let a = acts();
        let missing = Action::Internal { thread: 9 };
        let mut s = ScriptScheduler::new(vec![missing]);
        assert_eq!(s.choose(&a), None);
        assert!(s.diverged());
    }

    #[test]
    fn round_robin_rotates_threads() {
        let a = acts();
        let mut s = RoundRobinScheduler::default();
        let t1 = a[s.choose(&a).unwrap()].thread();
        let t2 = a[s.choose(&a).unwrap()].thread();
        assert_ne!(t1, t2, "round robin should rotate");
    }
}
