//! Fluent construction of MCAPI programs.
//!
//! ```
//! use mcapi::builder::ProgramBuilder;
//! use mcapi::expr::{Cond, Expr};
//! use mcapi::types::CmpOp;
//!
//! let mut b = ProgramBuilder::new("demo");
//! let server = b.thread("server");
//! let client = b.thread("client");
//! let req = b.recv(server, 0);
//! b.send_expr(server, client, 0, Expr::Var(req).plus(1));
//! b.send_const(client, server, 0, 41);
//! let reply = b.recv(client, 0);
//! b.assert_cond(client, Cond::cmp(CmpOp::Eq, Expr::Var(reply), Expr::Const(42)), "ping+1");
//! let program = b.build().unwrap();
//! assert_eq!(program.threads.len(), 2);
//! ```

use crate::error::McapiError;
use crate::expr::{Cond, Expr};
use crate::program::{Op, Program, Thread, UnrollConfig};
use crate::types::{EndpointAddr, Port, ReqId, ThreadId, Value, VarId};

/// Builder for [`Program`].
pub struct ProgramBuilder {
    name: String,
    threads: Vec<ThreadDraft>,
}

struct ThreadDraft {
    name: String,
    ops: Vec<Op>,
    num_vars: usize,
    num_reqs: usize,
    ports: Vec<Port>,
}

impl ProgramBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            threads: Vec::new(),
        }
    }

    /// Declare a thread (= MCAPI node). Port 0 is declared automatically.
    pub fn thread(&mut self, name: impl Into<String>) -> ThreadId {
        let id = self.threads.len();
        self.threads.push(ThreadDraft {
            name: name.into(),
            ops: Vec::new(),
            num_vars: 0,
            num_reqs: 0,
            ports: vec![0],
        });
        id
    }

    /// Declare an additional receive port on a thread.
    pub fn port(&mut self, thread: ThreadId, port: Port) {
        let t = &mut self.threads[thread];
        if !t.ports.contains(&port) {
            t.ports.push(port);
        }
    }

    /// Allocate a fresh local variable slot.
    pub fn fresh_var(&mut self, thread: ThreadId) -> VarId {
        let t = &mut self.threads[thread];
        let v = VarId(t.num_vars as u16);
        t.num_vars += 1;
        v
    }

    /// Allocate a fresh request handle (used by `send_i`/`recv_i` helpers
    /// and by frontends that lower explicit request declarations).
    pub fn fresh_req(&mut self, thread: ThreadId) -> ReqId {
        let t = &mut self.threads[thread];
        let r = ReqId(t.num_reqs as u16);
        t.num_reqs += 1;
        r
    }

    /// Append a raw op (escape hatch for `If` bodies etc.).
    pub fn push_op(&mut self, thread: ThreadId, op: Op) {
        self.threads[thread].ops.push(op);
    }

    /// Blocking receive on `port` into a fresh variable; returns the var.
    pub fn recv(&mut self, thread: ThreadId, port: Port) -> VarId {
        let var = self.fresh_var(thread);
        self.port(thread, port);
        self.push_op(thread, Op::Recv { port, var });
        var
    }

    /// Blocking receive into an existing variable.
    pub fn recv_into(&mut self, thread: ThreadId, port: Port, var: VarId) {
        self.port(thread, port);
        self.push_op(thread, Op::Recv { port, var });
    }

    /// Non-blocking receive; returns (destination var, request handle).
    pub fn recv_i(&mut self, thread: ThreadId, port: Port) -> (VarId, ReqId) {
        let var = self.fresh_var(thread);
        let req = self.fresh_req(thread);
        self.port(thread, port);
        self.push_op(thread, Op::RecvI { port, var, req });
        (var, req)
    }

    /// Blocking send of a constant to `(to_thread, port)`.
    pub fn send_const(&mut self, thread: ThreadId, to_thread: ThreadId, port: Port, value: Value) {
        self.send_expr(thread, to_thread, port, Expr::Const(value));
    }

    /// Blocking send of an expression.
    pub fn send_expr(&mut self, thread: ThreadId, to_thread: ThreadId, port: Port, value: Expr) {
        self.push_op(
            thread,
            Op::Send {
                to: EndpointAddr::new(to_thread, port),
                value,
            },
        );
    }

    /// Blocking send of a local variable's value.
    pub fn send_var(&mut self, thread: ThreadId, to_thread: ThreadId, port: Port, var: VarId) {
        self.send_expr(thread, to_thread, port, Expr::Var(var));
    }

    /// Non-blocking send of a constant; returns the request handle.
    pub fn send_i_const(
        &mut self,
        thread: ThreadId,
        to_thread: ThreadId,
        port: Port,
        value: Value,
    ) -> ReqId {
        let req = self.fresh_req(thread);
        self.push_op(
            thread,
            Op::SendI {
                to: EndpointAddr::new(to_thread, port),
                value: Expr::Const(value),
                req,
            },
        );
        req
    }

    /// Block on a request.
    pub fn wait(&mut self, thread: ThreadId, req: ReqId) {
        self.push_op(thread, Op::Wait { req });
    }

    /// Local assignment.
    pub fn assign(&mut self, thread: ThreadId, var: VarId, expr: Expr) {
        self.push_op(thread, Op::Assign { var, expr });
    }

    /// Safety assertion.
    pub fn assert_cond(&mut self, thread: ThreadId, cond: Cond, message: impl Into<String>) {
        self.push_op(
            thread,
            Op::Assert {
                cond,
                message: message.into(),
            },
        );
    }

    /// Structured conditional. The closures receive a [`BranchBuilder`]
    /// scoped to the same thread.
    pub fn if_else(
        &mut self,
        thread: ThreadId,
        cond: Cond,
        build_then: impl FnOnce(&mut BranchBuilder<'_>),
        build_else: impl FnOnce(&mut BranchBuilder<'_>),
    ) {
        let mut then_ops = Vec::new();
        {
            let mut bb = BranchBuilder {
                parent: self,
                thread,
                ops: &mut then_ops,
            };
            build_then(&mut bb);
        }
        let mut else_ops = Vec::new();
        {
            let mut bb = BranchBuilder {
                parent: self,
                thread,
                ops: &mut else_ops,
            };
            build_else(&mut bb);
        }
        self.push_op(
            thread,
            Op::If {
                cond,
                then_ops,
                else_ops,
            },
        );
    }

    /// Bounded loop: the closure builds the body, which `build` unrolls
    /// `count` times at compile time (see [`Op::Repeat`]). Variables and
    /// requests allocated inside the body belong to the thread as usual.
    pub fn repeat(
        &mut self,
        thread: ThreadId,
        count: usize,
        build_body: impl FnOnce(&mut BranchBuilder<'_>),
    ) {
        let mut body = Vec::new();
        {
            let mut bb = BranchBuilder {
                parent: self,
                thread,
                ops: &mut body,
            };
            build_body(&mut bb);
        }
        self.push_op(thread, Op::Repeat { count, body });
    }

    /// Compile and validate under the default [`UnrollConfig`].
    pub fn build(self) -> Result<Program, McapiError> {
        self.build_with(&UnrollConfig::default())
    }

    /// Compile and validate with explicit loop-unroll bounds.
    pub fn build_with(self, unroll: &UnrollConfig) -> Result<Program, McapiError> {
        if self.threads.is_empty() {
            return Err(McapiError::Builder("program has no threads".into()));
        }
        Program {
            name: self.name,
            threads: self
                .threads
                .into_iter()
                .map(|t| Thread {
                    name: t.name,
                    ops: t.ops,
                    num_vars: t.num_vars,
                    num_reqs: t.num_reqs,
                    ports: t.ports,
                    code: vec![],
                    origins: vec![],
                })
                .collect(),
        }
        .compile_with(unroll)
    }
}

/// Scoped builder for one branch of an `if`: collects ops into the branch
/// while still allocating variables/requests from the parent thread.
pub struct BranchBuilder<'a> {
    parent: &'a mut ProgramBuilder,
    thread: ThreadId,
    ops: &'a mut Vec<Op>,
}

impl BranchBuilder<'_> {
    pub fn fresh_var(&mut self) -> VarId {
        self.parent.fresh_var(self.thread)
    }

    pub fn recv(&mut self, port: Port) -> VarId {
        let var = self.parent.fresh_var(self.thread);
        self.parent.port(self.thread, port);
        self.ops.push(Op::Recv { port, var });
        var
    }

    pub fn send_const(&mut self, to_thread: ThreadId, port: Port, value: Value) {
        self.ops.push(Op::Send {
            to: EndpointAddr::new(to_thread, port),
            value: Expr::Const(value),
        });
    }

    pub fn send_expr(&mut self, to_thread: ThreadId, port: Port, value: Expr) {
        self.ops.push(Op::Send {
            to: EndpointAddr::new(to_thread, port),
            value,
        });
    }

    pub fn assign(&mut self, var: VarId, expr: Expr) {
        self.ops.push(Op::Assign { var, expr });
    }

    pub fn assert_cond(&mut self, cond: Cond, message: impl Into<String>) {
        self.ops.push(Op::Assert {
            cond,
            message: message.into(),
        });
    }

    pub fn push_op(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Nested bounded loop inside a branch or loop body.
    pub fn repeat(&mut self, count: usize, build_body: impl FnOnce(&mut BranchBuilder<'_>)) {
        let mut body = Vec::new();
        {
            let mut bb = BranchBuilder {
                parent: &mut *self.parent,
                thread: self.thread,
                ops: &mut body,
            };
            build_body(&mut bb);
        }
        self.ops.push(Op::Repeat { count, body });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::execute_random;
    use crate::types::{CmpOp, DeliveryModel};

    #[test]
    fn empty_program_rejected() {
        let b = ProgramBuilder::new("empty");
        assert!(matches!(b.build(), Err(McapiError::Builder(_))));
    }

    #[test]
    fn fresh_vars_are_sequential_per_thread() {
        let mut b = ProgramBuilder::new("p");
        let t0 = b.thread("a");
        let t1 = b.thread("b");
        assert_eq!(b.fresh_var(t0), VarId(0));
        assert_eq!(b.fresh_var(t0), VarId(1));
        assert_eq!(b.fresh_var(t1), VarId(0));
    }

    #[test]
    fn recv_declares_port_and_var() {
        let mut b = ProgramBuilder::new("p");
        let t0 = b.thread("a");
        let t1 = b.thread("b");
        let v = b.recv(t0, 3);
        b.send_const(t1, t0, 3, 1);
        let p = b.build().unwrap();
        assert!(p.threads[0].ports.contains(&3));
        assert_eq!(v, VarId(0));
        assert_eq!(p.threads[0].num_vars, 1);
    }

    #[test]
    fn if_else_builder_produces_structured_op() {
        let mut b = ProgramBuilder::new("p");
        let t0 = b.thread("a");
        let x = b.fresh_var(t0);
        b.assign(t0, x, Expr::Const(1));
        b.if_else(
            t0,
            Cond::cmp(CmpOp::Eq, Expr::Var(x), Expr::Const(1)),
            |bb| bb.assign(x, Expr::Const(10)),
            |bb| bb.assign(x, Expr::Const(20)),
        );
        let p = b.build().unwrap();
        let out = execute_random(&p, DeliveryModel::Unordered, 0);
        assert_eq!(out.final_state.threads[0].locals[0], 10);
    }

    #[test]
    fn branch_builder_allocates_from_parent() {
        let mut b = ProgramBuilder::new("p");
        let t0 = b.thread("a");
        let t1 = b.thread("b");
        let x = b.recv(t0, 0);
        let mut inner_var = None;
        b.if_else(
            t0,
            Cond::cmp(CmpOp::Gt, Expr::Var(x), Expr::Const(0)),
            |bb| {
                let v = bb.fresh_var();
                bb.assign(v, Expr::Const(5));
                inner_var = Some(v);
            },
            |_| {},
        );
        b.send_const(t1, t0, 0, 1);
        let p = b.build().unwrap();
        assert_eq!(p.threads[0].num_vars, 2);
        assert_eq!(inner_var, Some(VarId(1)));
    }

    #[test]
    fn doc_example_runs_clean() {
        // Mirrors the module doc example, checked end-to-end.
        let mut b = ProgramBuilder::new("demo");
        let server = b.thread("server");
        let client = b.thread("client");
        let req = b.recv(server, 0);
        b.send_expr(server, client, 0, Expr::Var(req).plus(1));
        b.send_const(client, server, 0, 41);
        let reply = b.recv(client, 0);
        b.assert_cond(
            client,
            Cond::cmp(CmpOp::Eq, Expr::Var(reply), Expr::Const(42)),
            "ping+1",
        );
        let p = b.build().unwrap();
        for seed in 0..20 {
            let out = execute_random(&p, DeliveryModel::Unordered, seed);
            assert!(out.trace.is_complete());
            assert!(out.violation().is_none(), "seed {seed}");
        }
    }
}
