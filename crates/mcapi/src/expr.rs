//! The DSL's expression and condition language.
//!
//! Expressions are deliberately restricted to the `variable + constant`
//! fragment: that is what keeps the paper's `PEvents` conjunct inside
//! integer difference logic (see `crates/smt`). Conditions are Boolean
//! combinations of comparisons between such expressions.

use crate::types::{CmpOp, Value, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An integer expression over thread-local variables.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// Current value of a local variable.
    Var(VarId),
    /// `e + c` — constant offset (the only arithmetic in the fragment).
    AddConst(Box<Expr>, Value),
}

impl Expr {
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    pub fn constant(c: Value) -> Expr {
        Expr::Const(c)
    }

    /// `self + c`, folding constants.
    pub fn plus(self, c: Value) -> Expr {
        match self {
            Expr::Const(k) => Expr::Const(k + c),
            Expr::AddConst(e, k) => Expr::AddConst(e, k + c),
            e => Expr::AddConst(Box::new(e), c),
        }
    }

    /// Evaluate under a local-variable environment.
    pub fn eval(&self, locals: &[Value]) -> Value {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => locals[v.0 as usize],
            Expr::AddConst(e, c) => e.eval(locals) + c,
        }
    }

    /// Variables read by this expression.
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::AddConst(e, _) => e.vars(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v:?}"),
            Expr::AddConst(e, c) if *c >= 0 => write!(f, "({e} + {c})"),
            Expr::AddConst(e, c) => write!(f, "({e} - {})", -c),
        }
    }
}

/// A Boolean condition over expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Cond {
    True,
    False,
    Cmp(CmpOp, Expr, Expr),
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
}

impl Cond {
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Cond {
        Cond::Cmp(op, a, b)
    }

    pub fn eq(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Eq, a, b)
    }

    pub fn ne(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Ne, a, b)
    }

    pub fn lt(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Lt, a, b)
    }

    pub fn le(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Le, a, b)
    }

    pub fn and(a: Cond, b: Cond) -> Cond {
        Cond::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: Cond, b: Cond) -> Cond {
        Cond::Or(Box::new(a), Box::new(b))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(c: Cond) -> Cond {
        Cond::Not(Box::new(c))
    }

    /// Evaluate under a local-variable environment.
    pub fn eval(&self, locals: &[Value]) -> bool {
        match self {
            Cond::True => true,
            Cond::False => false,
            Cond::Cmp(op, a, b) => op.eval(a.eval(locals), b.eval(locals)),
            Cond::And(a, b) => a.eval(locals) && b.eval(locals),
            Cond::Or(a, b) => a.eval(locals) || b.eval(locals),
            Cond::Not(c) => !c.eval(locals),
        }
    }

    /// Variables read by this condition.
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Cond::True | Cond::False => {}
            Cond::Cmp(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Cond::Not(c) => c.vars(out),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "true"),
            Cond::False => write!(f, "false"),
            Cond::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Cond::And(a, b) => write!(f, "({a} && {b})"),
            Cond::Or(a, b) => write!(f, "({a} || {b})"),
            Cond::Not(c) => write!(f, "!({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u16) -> VarId {
        VarId(i)
    }

    #[test]
    fn expr_eval() {
        let locals = vec![10, 20];
        assert_eq!(Expr::Const(5).eval(&locals), 5);
        assert_eq!(Expr::Var(v(1)).eval(&locals), 20);
        assert_eq!(Expr::Var(v(0)).plus(7).eval(&locals), 17);
    }

    #[test]
    fn plus_folds() {
        assert_eq!(Expr::Const(3).plus(4), Expr::Const(7));
        let e = Expr::Var(v(0)).plus(1).plus(2);
        assert_eq!(e, Expr::AddConst(Box::new(Expr::Var(v(0))), 3));
    }

    #[test]
    fn cond_eval_all_shapes() {
        let locals = vec![1, 2];
        let a = Expr::Var(v(0));
        let b = Expr::Var(v(1));
        assert!(Cond::lt(a.clone(), b.clone()).eval(&locals));
        assert!(!Cond::eq(a.clone(), b.clone()).eval(&locals));
        assert!(Cond::and(Cond::True, Cond::ne(a.clone(), b.clone())).eval(&locals));
        assert!(Cond::or(Cond::False, Cond::le(a.clone(), b.clone())).eval(&locals));
        assert!(Cond::not(Cond::eq(a, b)).eval(&locals));
        assert!(!Cond::False.eval(&locals));
    }

    #[test]
    fn vars_collection() {
        let mut out = vec![];
        let c = Cond::and(
            Cond::lt(Expr::Var(v(0)), Expr::Const(3)),
            Cond::eq(Expr::Var(v(2)).plus(1), Expr::Var(v(1))),
        );
        c.vars(&mut out);
        out.sort();
        assert_eq!(out, vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn display_readable() {
        let c = Cond::lt(Expr::Var(v(0)).plus(-1), Expr::Const(3));
        assert_eq!(c.to_string(), "(var0 - 1) < 3");
    }

    #[test]
    fn serde_roundtrip() {
        let c = Cond::or(
            Cond::eq(Expr::Var(v(0)), Expr::Const(1)),
            Cond::not(Cond::lt(Expr::Var(v(1)), Expr::Var(v(0)).plus(5))),
        );
        let j = serde_json::to_string(&c).unwrap();
        let back: Cond = serde_json::from_str(&j).unwrap();
        assert_eq!(c, back);
    }
}
