//! The DSL's expression and condition language.
//!
//! Expressions are deliberately restricted to the `variable + constant`
//! fragment: that is what keeps the paper's `PEvents` conjunct inside
//! integer difference logic (see `crates/smt`). Conditions are Boolean
//! combinations of comparisons between such expressions.

use crate::types::{CmpOp, Value, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Largest constant magnitude admitted in the value domain: every literal
/// and folded constant offset must satisfy `|c| <= MAX_CONST_MAGNITUDE`
/// (enforced by [`crate::program::Program::validate`]).
///
/// The bound does double duty: it keeps `Expr::eval`/`Expr::plus` sums far
/// from `i64` overflow (an execution is bounded by the flattened code
/// size, so accumulated offsets stay below `2^40 * 2^22 < 2^63`), and it
/// keeps source-program constants well clear of the IDL solver's
/// `i64::MAX / 4` infinity sentinel (`crates/smt/src/idl.rs`), where
/// distance arithmetic would otherwise wrap.
pub const MAX_CONST_MAGNITUDE: i64 = 1 << 40;

/// An integer expression over thread-local variables.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// Current value of a local variable.
    Var(VarId),
    /// `e + c` — constant offset (the only arithmetic in the fragment).
    AddConst(Box<Expr>, Value),
}

impl Expr {
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    pub fn constant(c: Value) -> Expr {
        Expr::Const(c)
    }

    /// `self + c`, folding constants. Folding is overflow-safe: when the
    /// fold would wrap `i64`, the offset is kept unfolded instead (the
    /// out-of-domain constant is then rejected by validation, not by a
    /// panic or a silent wrap).
    pub fn plus(self, c: Value) -> Expr {
        match self {
            Expr::Const(k) => match k.checked_add(c) {
                Some(s) => Expr::Const(s),
                None => Expr::AddConst(Box::new(Expr::Const(k)), c),
            },
            Expr::AddConst(e, k) => match k.checked_add(c) {
                Some(s) => Expr::AddConst(e, s),
                None => Expr::AddConst(Box::new(Expr::AddConst(e, k)), c),
            },
            e => Expr::AddConst(Box::new(e), c),
        }
    }

    /// Evaluate under a local-variable environment.
    ///
    /// Addition saturates instead of wrapping. For validated programs
    /// (`|c| <= 2^40`, loop-free flat code) saturation is unreachable —
    /// the headroom argument is on [`MAX_CONST_MAGNITUDE`] — so this is a
    /// defensive guarantee for expressions that bypass validation.
    pub fn eval(&self, locals: &[Value]) -> Value {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => locals[v.0 as usize],
            Expr::AddConst(e, c) => e.eval(locals).saturating_add(*c),
        }
    }

    /// Largest constant magnitude appearing in this expression (as a
    /// `u64`, so `i64::MIN` is representable). Validation rejects
    /// expressions where this exceeds [`MAX_CONST_MAGNITUDE`].
    pub fn max_abs_const(&self) -> u64 {
        match self {
            Expr::Const(c) => c.unsigned_abs(),
            Expr::Var(_) => 0,
            Expr::AddConst(e, c) => e.max_abs_const().max(c.unsigned_abs()),
        }
    }

    /// Variables read by this expression.
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::AddConst(e, _) => e.vars(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v:?}"),
            Expr::AddConst(e, c) if *c >= 0 => write!(f, "({e} + {c})"),
            // `unsigned_abs`, not `-c`: negating `i64::MIN` panics.
            Expr::AddConst(e, c) => write!(f, "({e} - {})", c.unsigned_abs()),
        }
    }
}

/// A Boolean condition over expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Cond {
    True,
    False,
    Cmp(CmpOp, Expr, Expr),
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
}

impl Cond {
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Cond {
        Cond::Cmp(op, a, b)
    }

    pub fn eq(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Eq, a, b)
    }

    pub fn ne(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Ne, a, b)
    }

    pub fn lt(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Lt, a, b)
    }

    pub fn le(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(CmpOp::Le, a, b)
    }

    pub fn and(a: Cond, b: Cond) -> Cond {
        Cond::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: Cond, b: Cond) -> Cond {
        Cond::Or(Box::new(a), Box::new(b))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(c: Cond) -> Cond {
        Cond::Not(Box::new(c))
    }

    /// Evaluate under a local-variable environment.
    pub fn eval(&self, locals: &[Value]) -> bool {
        match self {
            Cond::True => true,
            Cond::False => false,
            Cond::Cmp(op, a, b) => op.eval(a.eval(locals), b.eval(locals)),
            Cond::And(a, b) => a.eval(locals) && b.eval(locals),
            Cond::Or(a, b) => a.eval(locals) || b.eval(locals),
            Cond::Not(c) => !c.eval(locals),
        }
    }

    /// Variables read by this condition.
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Cond::True | Cond::False => {}
            Cond::Cmp(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Cond::Not(c) => c.vars(out),
        }
    }

    /// Largest constant magnitude appearing in this condition (see
    /// [`Expr::max_abs_const`]).
    pub fn max_abs_const(&self) -> u64 {
        match self {
            Cond::True | Cond::False => 0,
            Cond::Cmp(_, a, b) => a.max_abs_const().max(b.max_abs_const()),
            Cond::And(a, b) | Cond::Or(a, b) => a.max_abs_const().max(b.max_abs_const()),
            Cond::Not(c) => c.max_abs_const(),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "true"),
            Cond::False => write!(f, "false"),
            Cond::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Cond::And(a, b) => write!(f, "({a} && {b})"),
            Cond::Or(a, b) => write!(f, "({a} || {b})"),
            Cond::Not(c) => write!(f, "!({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u16) -> VarId {
        VarId(i)
    }

    #[test]
    fn expr_eval() {
        let locals = vec![10, 20];
        assert_eq!(Expr::Const(5).eval(&locals), 5);
        assert_eq!(Expr::Var(v(1)).eval(&locals), 20);
        assert_eq!(Expr::Var(v(0)).plus(7).eval(&locals), 17);
    }

    #[test]
    fn plus_folds() {
        assert_eq!(Expr::Const(3).plus(4), Expr::Const(7));
        let e = Expr::Var(v(0)).plus(1).plus(2);
        assert_eq!(e, Expr::AddConst(Box::new(Expr::Var(v(0))), 3));
    }

    #[test]
    fn cond_eval_all_shapes() {
        let locals = vec![1, 2];
        let a = Expr::Var(v(0));
        let b = Expr::Var(v(1));
        assert!(Cond::lt(a.clone(), b.clone()).eval(&locals));
        assert!(!Cond::eq(a.clone(), b.clone()).eval(&locals));
        assert!(Cond::and(Cond::True, Cond::ne(a.clone(), b.clone())).eval(&locals));
        assert!(Cond::or(Cond::False, Cond::le(a.clone(), b.clone())).eval(&locals));
        assert!(Cond::not(Cond::eq(a, b)).eval(&locals));
        assert!(!Cond::False.eval(&locals));
    }

    #[test]
    fn vars_collection() {
        let mut out = vec![];
        let c = Cond::and(
            Cond::lt(Expr::Var(v(0)), Expr::Const(3)),
            Cond::eq(Expr::Var(v(2)).plus(1), Expr::Var(v(1))),
        );
        c.vars(&mut out);
        out.sort();
        assert_eq!(out, vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn display_readable() {
        let c = Cond::lt(Expr::Var(v(0)).plus(-1), Expr::Const(3));
        assert_eq!(c.to_string(), "(var0 - 1) < 3");
    }

    #[test]
    fn plus_never_panics_or_wraps_at_the_i64_edges() {
        // Overflowing folds stay unfolded instead of panicking (debug) or
        // wrapping (release).
        let e = Expr::Const(i64::MAX).plus(1);
        assert_eq!(e, Expr::AddConst(Box::new(Expr::Const(i64::MAX)), 1));
        let e = Expr::Const(i64::MIN).plus(-1);
        assert_eq!(e, Expr::AddConst(Box::new(Expr::Const(i64::MIN)), -1));
        let e = Expr::Var(v(0)).plus(i64::MAX).plus(i64::MAX);
        // Inner fold overflows: the second offset nests instead.
        assert_eq!(
            e,
            Expr::AddConst(
                Box::new(Expr::AddConst(Box::new(Expr::Var(v(0))), i64::MAX)),
                i64::MAX
            )
        );
        // In-range folds still fold.
        assert_eq!(Expr::Const(3).plus(4), Expr::Const(7));
    }

    #[test]
    fn eval_saturates_instead_of_overflowing() {
        let locals = vec![i64::MAX, i64::MIN];
        assert_eq!(Expr::Var(v(0)).plus(1).eval(&locals), i64::MAX);
        assert_eq!(Expr::Var(v(1)).plus(-1).eval(&locals), i64::MIN);
        assert_eq!(Expr::Var(v(0)).plus(-1).eval(&locals), i64::MAX - 1);
    }

    #[test]
    fn display_handles_i64_min_offsets() {
        // `-c` on i64::MIN used to panic in debug builds.
        let e = Expr::AddConst(Box::new(Expr::Var(v(0))), i64::MIN);
        assert_eq!(e.to_string(), "(var0 - 9223372036854775808)");
        let c = Cond::lt(e, Expr::Const(i64::MIN));
        assert_eq!(
            c.to_string(),
            "(var0 - 9223372036854775808) < -9223372036854775808"
        );
    }

    #[test]
    fn max_abs_const_covers_every_shape() {
        assert_eq!(Expr::Var(v(0)).max_abs_const(), 0);
        assert_eq!(Expr::Const(i64::MIN).max_abs_const(), 1u64 << 63);
        assert_eq!(Expr::Var(v(0)).plus(-7).max_abs_const(), 7);
        let c = Cond::not(Cond::and(
            Cond::lt(Expr::Var(v(0)).plus(-9), Expr::Const(3)),
            Cond::or(
                Cond::eq(Expr::Const(-20), Expr::Var(v(1))),
                Cond::ne(Expr::Var(v(1)), Expr::Const(5)),
            ),
        ));
        assert_eq!(c.max_abs_const(), 20);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Cond::or(
            Cond::eq(Expr::Var(v(0)), Expr::Const(1)),
            Cond::not(Cond::lt(Expr::Var(v(1)), Expr::Var(v(0)).plus(5))),
        );
        let j = serde_json::to_string(&c).unwrap();
        let back: Cond = serde_json::from_str(&j).unwrap();
        assert_eq!(c, back);
    }
}
