//! # mcapi — executable semantics of the MCAPI connectionless-message subset
//!
//! The Multicore Communications API (MCAPI) is the Multicore Association's
//! message-passing interface for heterogeneous embedded systems. The PPoPP'11
//! paper *Symbolically Modeling Concurrent MCAPI Executions* verifies
//! programs that use the **connectionless message** portion of the API:
//! endpoints (`node`,`port` pairs), blocking `msg_send`/`msg_recv`,
//! non-blocking `msg_send_i`/`msg_recv_i`, and `wait`.
//!
//! This crate is the runtime substrate for that paper: an executable
//! small-step operational semantics (the role PLT Redex plays for the
//! authors) with
//!
//! * a program DSL ([`program::Program`]) compiled to a flat instruction
//!   form, including conditionals whose outcomes are recorded in traces,
//! * a simulated transit network whose delivery discipline is an explicit
//!   parameter ([`types::DeliveryModel`]): `Unordered` (the paper's
//!   arbitrary-delay network), `PairwiseFifo` (MCAPI's per-endpoint-pair
//!   ordering guarantee), and `ZeroDelay` (the instant-delivery model that
//!   MCC and Elwakil&Yang implicitly assume — the model the paper shows is
//!   incomplete),
//! * a scheduler interface with seeded-random, scripted, and deterministic
//!   implementations, and
//! * trace capture ([`trace::Trace`]): per-thread program order, branch
//!   outcomes, send/receive/wait events and assertion results — exactly the
//!   input the paper's symbolic encoding consumes.
//!
//! ## Quick example
//!
//! ```
//! use mcapi::builder::ProgramBuilder;
//! use mcapi::runtime::execute_random;
//! use mcapi::types::DeliveryModel;
//!
//! // Two producers race to one consumer (the shape of the paper's Fig. 1).
//! let mut b = ProgramBuilder::new("race");
//! let t0 = b.thread("consumer");
//! let t1 = b.thread("p1");
//! let t2 = b.thread("p2");
//! let a = b.recv(t0, 0);          // recv(A)
//! let bb = b.recv(t0, 0);         // recv(B)
//! let _ = (a, bb);
//! b.send_const(t1, t0, 0, 1);     // send(X=1) : t0
//! b.send_const(t2, t0, 0, 2);     // send(Y=2) : t0
//! let program = b.build().unwrap();
//! let outcome = execute_random(&program, DeliveryModel::Unordered, 42);
//! assert!(outcome.trace.is_complete());
//! ```

pub mod builder;
pub mod canon;
pub mod error;
pub mod expr;
pub mod program;
pub mod runtime;
pub mod sched;
pub mod state;
pub mod trace;
pub mod types;

pub use builder::ProgramBuilder;
pub use canon::{independent, summarize, ActionSummary, CanonTracker};
pub use error::McapiError;
pub use expr::{Cond, Expr, MAX_CONST_MAGNITUDE};
pub use program::{Instr, Op, Program, Thread, UnrollConfig};
pub use runtime::{execute, execute_random, ExecOutcome};
pub use sched::{FirstScheduler, RandomScheduler, Scheduler, ScriptScheduler};
pub use state::{Action, SysState};
pub use trace::{Event, EventKind, Trace, Violation};
pub use types::{
    CmpOp, DeliveryModel, EndpointAddr, Matching, MsgId, Port, RecvKey, ReqId, ThreadId, Value,
    VarId,
};
