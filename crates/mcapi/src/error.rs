//! Error types for program construction and execution.

use std::fmt;

/// Errors from program validation or replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McapiError {
    /// A static validation failure in a compiled program.
    Validation {
        thread: usize,
        pc: usize,
        message: String,
    },
    /// A scripted replay diverged from the recorded schedule.
    ReplayDiverged { step: usize, message: String },
    /// Builder misuse (e.g. referencing a thread that does not exist).
    Builder(String),
}

impl fmt::Display for McapiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McapiError::Validation {
                thread,
                pc,
                message,
            } => {
                write!(f, "invalid program at thread {thread}, pc {pc}: {message}")
            }
            McapiError::ReplayDiverged { step, message } => {
                write!(f, "replay diverged at step {step}: {message}")
            }
            McapiError::Builder(m) => write!(f, "builder error: {m}"),
        }
    }
}

impl std::error::Error for McapiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_location() {
        let e = McapiError::Validation {
            thread: 1,
            pc: 3,
            message: "bad port".into(),
        };
        let s = e.to_string();
        assert!(s.contains("thread 1"));
        assert!(s.contains("pc 3"));
        assert!(s.contains("bad port"));
    }
}
