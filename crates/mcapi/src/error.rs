//! Error types for program construction and execution.

use std::fmt;

/// A source-located diagnostic produced by the MCAPI-lite textual
/// frontend (`crates/frontend`). Kept here — rather than in the frontend
/// crate — so parse failures travel the same [`McapiError`] path as
/// validation failures without inverting the dependency between the two
/// crates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceDiagnostic {
    /// 1-based source line of the error.
    pub line: usize,
    /// 1-based column (in characters) within that line.
    pub col: usize,
    /// One-line summary, e.g. ``expected `;`, found `}```.
    pub message: String,
    /// Full multi-line rendering: summary, location, source line, caret.
    pub rendered: String,
}

impl fmt::Display for SourceDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rendered.is_empty() {
            write!(f, "{}:{}: {}", self.line, self.col, self.message)
        } else {
            f.write_str(&self.rendered)
        }
    }
}

/// Errors from program validation or replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McapiError {
    /// A static validation failure in a compiled program.
    Validation {
        thread: usize,
        pc: usize,
        message: String,
    },
    /// A scripted replay diverged from the recorded schedule.
    ReplayDiverged { step: usize, message: String },
    /// Builder misuse (e.g. referencing a thread that does not exist).
    Builder(String),
    /// A syntax or lowering error from the MCAPI-lite textual frontend.
    Parse(SourceDiagnostic),
}

impl fmt::Display for McapiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McapiError::Validation {
                thread,
                pc,
                message,
            } => {
                write!(f, "invalid program at thread {thread}, pc {pc}: {message}")
            }
            McapiError::ReplayDiverged { step, message } => {
                write!(f, "replay diverged at step {step}: {message}")
            }
            McapiError::Builder(m) => write!(f, "builder error: {m}"),
            McapiError::Parse(d) => d.fmt(f),
        }
    }
}

impl std::error::Error for McapiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_variant_displays_rendering_and_stays_an_error() {
        let d = SourceDiagnostic {
            line: 3,
            col: 7,
            message: "expected `;`, found `}`".into(),
            rendered: String::new(),
        };
        let e = McapiError::Parse(d.clone());
        assert_eq!(e.to_string(), "3:7: expected `;`, found `}`");
        let rendered = McapiError::Parse(SourceDiagnostic {
            rendered: "error: expected `;`\n --> line 3".into(),
            ..d
        });
        assert!(rendered.to_string().contains(" --> line 3"));
        // The std::error::Error impl must survive the new variant.
        let _: &dyn std::error::Error = &rendered;
    }

    #[test]
    fn display_contains_location() {
        let e = McapiError::Validation {
            thread: 1,
            pc: 3,
            message: "bad port".into(),
        };
        let s = e.to_string();
        assert!(s.contains("thread 1"));
        assert!(s.contains("pc 3"));
        assert!(s.contains("bad port"));
    }
}
