//! Identifiers and enums shared across the MCAPI runtime.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Message payloads. MCAPI messages carry opaque byte buffers; the paper's
/// analysis only ever constrains the *value* flowing through a message, so
/// we model payloads as integers (one machine word), which keeps the
/// symbolic encoding in difference logic.
pub type Value = i64;

/// Index of a thread (one MCAPI node per thread, as in the paper's Fig. 1).
pub type ThreadId = usize;

/// An MCAPI port number within a node.
pub type Port = u16;

/// A thread-local variable slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u16);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "var{}", self.0)
    }
}

/// A thread-local non-blocking request handle (`mcapi_request_t`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqId(pub u16);

impl fmt::Debug for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// An MCAPI endpoint: a (node, port) pair. Nodes are identified with
/// threads in this model (the paper does the same).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndpointAddr {
    pub node: u16,
    pub port: Port,
}

impl EndpointAddr {
    pub fn new(node: usize, port: Port) -> Self {
        EndpointAddr {
            node: node as u16,
            port,
        }
    }
}

impl fmt::Debug for EndpointAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep({}:{})", self.node, self.port)
    }
}

impl fmt::Display for EndpointAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// Canonical message identity: the `seq`-th send issued by `thread`.
///
/// Using (thread, per-thread send index) — rather than a global counter —
/// makes message identity independent of the interleaving, which both the
/// explicit-state explorers (state hashing) and the symbolic encoding
/// (stable send identifiers, as required by Fig. 2 of the paper) rely on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    pub thread: u16,
    pub seq: u16,
}

impl MsgId {
    pub fn new(thread: usize, seq: usize) -> Self {
        MsgId {
            thread: thread as u16,
            seq: seq as u16,
        }
    }
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}.{}", self.thread, self.seq)
    }
}

/// Identity of a receive *completion*: the `index`-th receive completed by
/// `thread` (blocking receives and binding waits both count).
///
/// This is interleaving-independent, so matchings produced by the explicit
/// explorers and by the symbolic encoding are directly comparable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecvKey {
    pub thread: u16,
    pub index: u16,
}

impl RecvKey {
    pub fn new(thread: usize, index: usize) -> Self {
        RecvKey {
            thread: thread as u16,
            index: index as u16,
        }
    }
}

impl fmt::Debug for RecvKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.r{}", self.thread, self.index)
    }
}

/// A complete send/receive pairing of one terminated execution, kept sorted
/// by receive key — the objects enumerated in the paper's Fig. 4.
pub type Matching = Vec<(RecvKey, MsgId)>;

/// The network's delivery discipline — the crux of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DeliveryModel {
    /// Arbitrary per-message transit delays: a receive may match *any*
    /// in-flight message addressed to its endpoint. This is the model the
    /// PPoPP'11 encoding captures (both pairings of the paper's Fig. 4).
    Unordered,
    /// MCAPI-spec ordering: messages between one (source endpoint,
    /// destination endpoint) pair arrive in send order; messages from
    /// different sources still race.
    PairwiseFifo,
    /// Instant delivery in global send order: the endpoint queue is FIFO by
    /// send time. This reproduces the MCC / Elwakil&Yang network model that
    /// the paper shows misses behaviours (it can only produce Fig. 4a).
    ZeroDelay,
}

impl DeliveryModel {
    /// All models, for parameter sweeps.
    pub const ALL: [DeliveryModel; 3] = [
        DeliveryModel::Unordered,
        DeliveryModel::PairwiseFifo,
        DeliveryModel::ZeroDelay,
    ];
}

impl fmt::Display for DeliveryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeliveryModel::Unordered => "unordered",
            DeliveryModel::PairwiseFifo => "pairwise-fifo",
            DeliveryModel::ZeroDelay => "zero-delay",
        };
        f.write_str(s)
    }
}

/// Comparison operators for the DSL condition language.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, a: Value, b: Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msgid_is_canonical_per_thread() {
        let a = MsgId::new(1, 0);
        let b = MsgId::new(1, 0);
        assert_eq!(a, b);
        assert_ne!(a, MsgId::new(1, 1));
        assert_ne!(a, MsgId::new(2, 0));
    }

    #[test]
    fn cmpop_eval_and_negate_are_complementary() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for a in -2..3 {
                for b in -2..3 {
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
                }
            }
        }
    }

    #[test]
    fn endpoint_display() {
        let e = EndpointAddr::new(2, 7);
        assert_eq!(e.to_string(), "2:7");
        assert_eq!(format!("{e:?}"), "ep(2:7)");
    }

    #[test]
    fn delivery_model_all_covers_three() {
        assert_eq!(DeliveryModel::ALL.len(), 3);
        assert_eq!(DeliveryModel::Unordered.to_string(), "unordered");
    }

    #[test]
    fn serde_roundtrip() {
        let e = EndpointAddr::new(1, 2);
        let j = serde_json::to_string(&e).unwrap();
        let back: EndpointAddr = serde_json::from_str(&j).unwrap();
        assert_eq!(e, back);
        let m = MsgId::new(3, 4);
        let j = serde_json::to_string(&m).unwrap();
        let back: MsgId = serde_json::from_str(&j).unwrap();
        assert_eq!(m, back);
    }
}
