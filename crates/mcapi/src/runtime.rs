//! The execution driver: runs a program to completion under a scheduler,
//! recording the trace and the action sequence (for exact replay).

use crate::error::McapiError;
use crate::program::Program;
use crate::sched::{RandomScheduler, Scheduler, ScriptScheduler};
use crate::state::{Action, SysState};
use crate::trace::{Trace, Violation};
use crate::types::DeliveryModel;

/// Result of one concrete execution.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    pub trace: Trace,
    pub final_state: SysState,
    /// The exact schedule taken (replayable with [`replay`]).
    pub actions: Vec<Action>,
}

impl ExecOutcome {
    pub fn violation(&self) -> Option<&Violation> {
        self.trace.violation.as_ref()
    }
}

/// Execute `program` under `scheduler` with the given delivery model.
pub fn execute(
    program: &Program,
    model: DeliveryModel,
    scheduler: &mut dyn Scheduler,
) -> ExecOutcome {
    let mut state = SysState::initial(program);
    let mut events = Vec::new();
    let mut actions = Vec::new();
    loop {
        let enabled = state.enabled_actions(program, model);
        if enabled.is_empty() {
            break;
        }
        let Some(i) = scheduler.choose(&enabled) else {
            break;
        };
        let action = enabled[i];
        let (next, ev) = state.apply(program, action, model);
        events.extend(ev);
        actions.push(action);
        state = next;
    }
    let complete = state.all_done(program);
    let violation = state.violation.clone();
    let deadlock = !complete && violation.is_none();
    ExecOutcome {
        trace: Trace {
            program_name: program.name.clone(),
            delivery: model,
            events,
            complete,
            deadlock,
            violation,
        },
        final_state: state,
        actions,
    }
}

/// Execute under a seeded random scheduler.
pub fn execute_random(program: &Program, model: DeliveryModel, seed: u64) -> ExecOutcome {
    let mut sched = RandomScheduler::new(seed);
    execute(program, model, &mut sched)
}

/// Replay an exact action sequence. Errors if the script diverges from the
/// enabled actions at some step (e.g. the schedule came from a different
/// delivery model or a spurious SMT witness).
pub fn replay(
    program: &Program,
    model: DeliveryModel,
    script: &[Action],
) -> Result<ExecOutcome, McapiError> {
    let mut sched = ScriptScheduler::new(script.to_vec());
    let outcome = execute(program, model, &mut sched);
    if sched.diverged() {
        return Err(McapiError::ReplayDiverged {
            step: sched.consumed(),
            message: format!(
                "scripted action {:?} not enabled",
                script.get(sched.consumed())
            ),
        });
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::{Cond, Expr};
    use crate::trace::EventKind;
    use crate::types::CmpOp;

    fn fig1_like() -> Program {
        // The paper's Fig. 1: t0 recv A, recv B; t1 recv C, send X->t0;
        // t2 send Y->t0, send Z->t1.
        let mut b = ProgramBuilder::new("fig1");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        b.recv(t0, 0); // A
        b.recv(t0, 0); // B
        b.recv(t1, 0); // C
        b.send_const(t1, t0, 0, 100); // X
        b.send_const(t2, t0, 0, 200); // Y
        b.send_const(t2, t1, 0, 300); // Z
        b.build().unwrap()
    }

    #[test]
    fn fig1_completes_under_random_schedules() {
        let p = fig1_like();
        for seed in 0..50 {
            let out = execute_random(&p, DeliveryModel::Unordered, seed);
            assert!(out.trace.is_complete(), "seed {seed}: {:?}", out.trace);
            assert!(out.violation().is_none());
            assert_eq!(out.trace.sends().len(), 3);
            assert_eq!(out.trace.receives().len(), 3);
        }
    }

    #[test]
    fn fig1_shows_both_pairings_across_seeds() {
        // Under the Unordered model, recv(A) must sometimes get Y (from t2)
        // and sometimes X (from t1) — the two pairings of the paper's Fig 4.
        let p = fig1_like();
        let mut first_recv_sources = std::collections::HashSet::new();
        for seed in 0..200 {
            let out = execute_random(&p, DeliveryModel::Unordered, seed);
            let matching = out.trace.concrete_matching();
            // First receive of thread 0.
            let first = out
                .trace
                .events
                .iter()
                .enumerate()
                .find(|(_, e)| e.thread == 0)
                .map(|(i, _)| i)
                .unwrap();
            let (_, msg) = matching.iter().find(|(i, _)| *i >= first).unwrap();
            first_recv_sources.insert(msg.thread);
        }
        assert!(
            first_recv_sources.contains(&1) && first_recv_sources.contains(&2),
            "random testing under Unordered should exhibit both Fig-4 pairings, got {first_recv_sources:?}"
        );
    }

    #[test]
    fn zero_delay_restricts_first_recv() {
        // Under ZeroDelay, recv(A) always gets the globally-first send to
        // t0; with FirstScheduler t1 runs before t2 only after its recv(C)
        // unblocks, so drive randomly and check the invariant instead:
        // the received message is the oldest in-flight at that moment.
        let p = fig1_like();
        for seed in 0..100 {
            let out = execute_random(&p, DeliveryModel::ZeroDelay, seed);
            assert!(out.trace.is_complete());
        }
    }

    #[test]
    fn replay_reproduces_trace_exactly() {
        let p = fig1_like();
        let out = execute_random(&p, DeliveryModel::Unordered, 1234);
        let replayed = replay(&p, DeliveryModel::Unordered, &out.actions).unwrap();
        assert_eq!(out.trace, replayed.trace);
        assert_eq!(out.final_state, replayed.final_state);
    }

    #[test]
    fn replay_divergence_detected() {
        let p = fig1_like();
        // A script that immediately asks thread 0 to receive (no message
        // is in flight yet) must diverge.
        let bogus = vec![Action::Receive {
            thread: 0,
            msg: crate::types::MsgId::new(1, 0),
        }];
        let r = replay(&p, DeliveryModel::Unordered, &bogus);
        assert!(matches!(r, Err(McapiError::ReplayDiverged { step: 0, .. })));
    }

    #[test]
    fn deadlock_detected() {
        // t0 receives but nobody sends.
        let mut b = ProgramBuilder::new("deadlock");
        let t0 = b.thread("t0");
        b.recv(t0, 0);
        let p = b.build().unwrap();
        let out = execute_random(&p, DeliveryModel::Unordered, 0);
        assert!(out.trace.deadlock);
        assert!(!out.trace.is_complete());
    }

    #[test]
    fn violation_recorded_in_trace() {
        let mut b = ProgramBuilder::new("violate");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let v = b.recv(t0, 0);
        b.assert_cond(
            t0,
            Cond::cmp(CmpOp::Eq, Expr::Var(v), Expr::Const(42)),
            "expected 42",
        );
        b.send_const(t1, t0, 0, 7);
        let p = b.build().unwrap();
        let out = execute_random(&p, DeliveryModel::Unordered, 0);
        let v = out.violation().expect("assertion must fail");
        assert_eq!(v.thread, 0);
        assert!(v.message.contains("expected 42"));
        assert!(out
            .trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::AssertFail { .. })));
    }

    #[test]
    fn branchy_program_records_outcomes() {
        use crate::program::Op;
        let mut b = ProgramBuilder::new("branchy");
        let t0 = b.thread("t0");
        let t1 = b.thread("t1");
        let v = b.recv(t0, 0);
        b.push_op(
            t0,
            Op::If {
                cond: Cond::cmp(CmpOp::Ge, Expr::Var(v), Expr::Const(10)),
                then_ops: vec![Op::Assign {
                    var: v,
                    expr: Expr::Const(1),
                }],
                else_ops: vec![Op::Assign {
                    var: v,
                    expr: Expr::Const(0),
                }],
            },
        );
        b.send_const(t1, t0, 0, 50);
        let p = b.build().unwrap();
        let out = execute_random(&p, DeliveryModel::Unordered, 0);
        assert_eq!(out.trace.branch_outcomes(0), vec![true]);
        assert_eq!(out.final_state.threads[0].locals[0], 1);
    }
}
