//! Program representation: a structured DSL (`Op`) compiled to a flat
//! instruction form (`Instr`) that the interpreter, the explicit-state
//! explorers and the symbolic encoder all consume.
//!
//! One `Thread` corresponds to one MCAPI node (the paper's `t0/t1/t2`). A
//! thread owns local variable slots, request handles, and receives on its
//! own (node, port) endpoints.

use crate::error::McapiError;
use crate::expr::{Cond, Expr};
use crate::types::{EndpointAddr, Port, ReqId, VarId};
use serde::{Deserialize, Serialize};

/// Structured operations (builder-level form).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Op {
    /// Blocking `mcapi_msg_send` of `value` to endpoint `to`.
    Send { to: EndpointAddr, value: Expr },
    /// Non-blocking `mcapi_msg_send_i`; completes immediately in this model
    /// (infinite send buffers), the request exists for `wait` symmetry.
    SendI {
        to: EndpointAddr,
        value: Expr,
        req: ReqId,
    },
    /// Blocking `mcapi_msg_recv` on this thread's `port` into `var`.
    Recv { port: Port, var: VarId },
    /// Non-blocking `mcapi_msg_recv_i`: posts a receive request; the message
    /// is bound no later than the matching `wait`.
    RecvI { port: Port, var: VarId, req: ReqId },
    /// Block until request `req` completes.
    Wait { req: ReqId },
    /// Local assignment.
    Assign { var: VarId, expr: Expr },
    /// Safety assertion (the checked property).
    Assert { cond: Cond, message: String },
    /// Conditional with recorded outcome.
    If {
        cond: Cond,
        then_ops: Vec<Op>,
        else_ops: Vec<Op>,
    },
}

/// Flat instruction form. `Branch`/`Jump` encode structured control flow;
/// targets are indices into the thread's instruction vector.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Instr {
    Send {
        to: EndpointAddr,
        value: Expr,
    },
    SendI {
        to: EndpointAddr,
        value: Expr,
        req: ReqId,
    },
    Recv {
        port: Port,
        var: VarId,
    },
    RecvI {
        port: Port,
        var: VarId,
        req: ReqId,
    },
    Wait {
        req: ReqId,
    },
    Assign {
        var: VarId,
        expr: Expr,
    },
    Assert {
        cond: Cond,
        message: String,
    },
    /// Evaluate `cond`; fall through when true, jump to `else_target` when
    /// false. The taken direction is recorded in the trace.
    Branch {
        cond: Cond,
        else_target: usize,
    },
    Jump {
        target: usize,
    },
}

/// A single MCAPI node/thread.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Thread {
    pub name: String,
    pub ops: Vec<Op>,
    /// Number of local variable slots.
    pub num_vars: usize,
    /// Number of request handles.
    pub num_reqs: usize,
    /// Ports this thread receives on.
    pub ports: Vec<Port>,
    /// Compiled form (filled by `Program::compile`).
    #[serde(default)]
    pub code: Vec<Instr>,
}

/// A complete MCAPI program.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Program {
    pub name: String,
    pub threads: Vec<Thread>,
}

impl Program {
    /// Compile every thread's structured ops to flat code and validate.
    pub fn compile(mut self) -> Result<Program, McapiError> {
        for t in &mut self.threads {
            let mut code = Vec::new();
            flatten(&t.ops, &mut code);
            t.code = code;
        }
        self.validate()?;
        Ok(self)
    }

    /// Static sanity checks: endpoint references resolve, request handles
    /// and variables are in range, waits refer to issued requests.
    pub fn validate(&self) -> Result<(), McapiError> {
        for (tid, t) in self.threads.iter().enumerate() {
            for (pc, ins) in t.code.iter().enumerate() {
                let err = |msg: String| {
                    Err(McapiError::Validation {
                        thread: tid,
                        pc,
                        message: msg,
                    })
                };
                match ins {
                    Instr::Send { to, value } | Instr::SendI { to, value, .. } => {
                        let Some(dst) = self.threads.get(to.node as usize) else {
                            return err(format!("send to unknown node {}", to.node));
                        };
                        if !dst.ports.contains(&to.port) {
                            return err(format!(
                                "send to {}:{} but that node has ports {:?}",
                                to.node, to.port, dst.ports
                            ));
                        }
                        let mut vs = vec![];
                        value.vars(&mut vs);
                        if let Some(v) = vs.iter().find(|v| v.0 as usize >= t.num_vars) {
                            return err(format!("expression reads unknown {v:?}"));
                        }
                        if let Instr::SendI { req, .. } = ins {
                            if req.0 as usize >= t.num_reqs {
                                return err(format!("unknown request handle {req:?}"));
                            }
                        }
                    }
                    Instr::Recv { port, var } | Instr::RecvI { port, var, .. } => {
                        if !t.ports.contains(port) {
                            return err(format!("recv on undeclared port {port}"));
                        }
                        if var.0 as usize >= t.num_vars {
                            return err(format!("recv into unknown {var:?}"));
                        }
                        if let Instr::RecvI { req, .. } = ins {
                            if req.0 as usize >= t.num_reqs {
                                return err(format!("unknown request handle {req:?}"));
                            }
                        }
                    }
                    Instr::Wait { req } => {
                        if req.0 as usize >= t.num_reqs {
                            return err(format!("wait on unknown {req:?}"));
                        }
                    }
                    Instr::Assign { var, expr } => {
                        if var.0 as usize >= t.num_vars {
                            return err(format!("assign to unknown {var:?}"));
                        }
                        let mut vs = vec![];
                        expr.vars(&mut vs);
                        if let Some(v) = vs.iter().find(|v| v.0 as usize >= t.num_vars) {
                            return err(format!("expression reads unknown {v:?}"));
                        }
                    }
                    Instr::Assert { cond, .. } | Instr::Branch { cond, .. } => {
                        let mut vs = vec![];
                        cond.vars(&mut vs);
                        if let Some(v) = vs.iter().find(|v| v.0 as usize >= t.num_vars) {
                            return err(format!("condition reads unknown {v:?}"));
                        }
                        if let Instr::Branch { else_target, .. } = ins {
                            if *else_target > t.code.len() {
                                return err(format!("branch target {else_target} out of range"));
                            }
                        }
                    }
                    Instr::Jump { target } => {
                        if *target > t.code.len() {
                            return err(format!("jump target {target} out of range"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Total number of send instructions (static, not per-execution).
    pub fn num_static_sends(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.code.iter())
            .filter(|i| matches!(i, Instr::Send { .. } | Instr::SendI { .. }))
            .count()
    }

    /// Total number of receive instructions (static).
    pub fn num_static_recvs(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.code.iter())
            .filter(|i| matches!(i, Instr::Recv { .. } | Instr::RecvI { .. }))
            .count()
    }

    /// Total compiled instruction count.
    pub fn code_size(&self) -> usize {
        self.threads.iter().map(|t| t.code.len()).sum()
    }

    /// Does any thread contain a conditional branch? Branch-free programs
    /// have exactly one control-flow path, so the trace-pinned and
    /// path-complete symbolic engines coincide on them.
    pub fn has_branches(&self) -> bool {
        self.threads
            .iter()
            .flat_map(|t| t.code.iter())
            .any(|i| matches!(i, Instr::Branch { .. }))
    }

    /// Human-readable listing (one column per thread, Fig. 1 style).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "program `{}`:", self.name);
        for (tid, t) in self.threads.iter().enumerate() {
            let _ = writeln!(out, "  thread {tid} ({}):", t.name);
            for (pc, ins) in t.code.iter().enumerate() {
                let _ = writeln!(out, "    {pc:3}: {}", render_instr(ins));
            }
        }
        out
    }
}

fn render_instr(ins: &Instr) -> String {
    match ins {
        Instr::Send { to, value } => format!("send {value} -> {to}"),
        Instr::SendI { to, value, req } => format!("send_i {value} -> {to} ({req:?})"),
        Instr::Recv { port, var } => format!("recv port {port} -> {var:?}"),
        Instr::RecvI { port, var, req } => format!("recv_i port {port} -> {var:?} ({req:?})"),
        Instr::Wait { req } => format!("wait {req:?}"),
        Instr::Assign { var, expr } => format!("{var:?} := {expr}"),
        Instr::Assert { cond, message } => format!("assert {cond} \"{message}\""),
        Instr::Branch { cond, else_target } => format!("if !({cond}) goto {else_target}"),
        Instr::Jump { target } => format!("goto {target}"),
    }
}

/// Flatten structured ops into instructions with branch targets patched.
fn flatten(ops: &[Op], code: &mut Vec<Instr>) {
    for op in ops {
        match op {
            Op::Send { to, value } => code.push(Instr::Send {
                to: *to,
                value: value.clone(),
            }),
            Op::SendI { to, value, req } => code.push(Instr::SendI {
                to: *to,
                value: value.clone(),
                req: *req,
            }),
            Op::Recv { port, var } => code.push(Instr::Recv {
                port: *port,
                var: *var,
            }),
            Op::RecvI { port, var, req } => code.push(Instr::RecvI {
                port: *port,
                var: *var,
                req: *req,
            }),
            Op::Wait { req } => code.push(Instr::Wait { req: *req }),
            Op::Assign { var, expr } => code.push(Instr::Assign {
                var: *var,
                expr: expr.clone(),
            }),
            Op::Assert { cond, message } => code.push(Instr::Assert {
                cond: cond.clone(),
                message: message.clone(),
            }),
            Op::If {
                cond,
                then_ops,
                else_ops,
            } => {
                let branch_at = code.len();
                code.push(Instr::Branch {
                    cond: cond.clone(),
                    else_target: 0,
                });
                flatten(then_ops, code);
                if else_ops.is_empty() {
                    let end = code.len();
                    if let Instr::Branch { else_target, .. } = &mut code[branch_at] {
                        *else_target = end;
                    }
                } else {
                    let jump_at = code.len();
                    code.push(Instr::Jump { target: 0 });
                    let else_start = code.len();
                    if let Instr::Branch { else_target, .. } = &mut code[branch_at] {
                        *else_target = else_start;
                    }
                    flatten(else_ops, code);
                    let end = code.len();
                    if let Instr::Jump { target } = &mut code[jump_at] {
                        *target = end;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CmpOp;

    fn thread_with(ops: Vec<Op>, num_vars: usize, num_reqs: usize, ports: Vec<Port>) -> Thread {
        Thread {
            name: "t".into(),
            ops,
            num_vars,
            num_reqs,
            ports,
            code: vec![],
        }
    }

    #[test]
    fn flatten_linear_ops() {
        let ops = vec![
            Op::Assign {
                var: VarId(0),
                expr: Expr::Const(1),
            },
            Op::Send {
                to: EndpointAddr::new(0, 0),
                value: Expr::Var(VarId(0)),
            },
        ];
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 1, 0, vec![0])],
        }
        .compile()
        .unwrap();
        assert_eq!(p.threads[0].code.len(), 2);
    }

    #[test]
    fn flatten_if_without_else() {
        let ops = vec![
            Op::If {
                cond: Cond::cmp(CmpOp::Eq, Expr::Var(VarId(0)), Expr::Const(1)),
                then_ops: vec![Op::Assign {
                    var: VarId(0),
                    expr: Expr::Const(2),
                }],
                else_ops: vec![],
            },
            Op::Assign {
                var: VarId(0),
                expr: Expr::Const(3),
            },
        ];
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 1, 0, vec![])],
        }
        .compile()
        .unwrap();
        let code = &p.threads[0].code;
        // Branch, then-assign, final assign.
        assert_eq!(code.len(), 3);
        match &code[0] {
            Instr::Branch { else_target, .. } => assert_eq!(*else_target, 2),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn flatten_if_with_else_patches_both_targets() {
        let ops = vec![Op::If {
            cond: Cond::True,
            then_ops: vec![Op::Assign {
                var: VarId(0),
                expr: Expr::Const(1),
            }],
            else_ops: vec![
                Op::Assign {
                    var: VarId(0),
                    expr: Expr::Const(2),
                },
                Op::Assign {
                    var: VarId(0),
                    expr: Expr::Const(3),
                },
            ],
        }];
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 1, 0, vec![])],
        }
        .compile()
        .unwrap();
        let code = &p.threads[0].code;
        // branch, then(1), jump, else(2) = 5 instrs.
        assert_eq!(code.len(), 5);
        match &code[0] {
            Instr::Branch { else_target, .. } => assert_eq!(*else_target, 3),
            other => panic!("{other:?}"),
        }
        match &code[2] {
            Instr::Jump { target } => assert_eq!(*target, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_ifs_flatten() {
        let inner = Op::If {
            cond: Cond::True,
            then_ops: vec![Op::Assign {
                var: VarId(0),
                expr: Expr::Const(1),
            }],
            else_ops: vec![Op::Assign {
                var: VarId(0),
                expr: Expr::Const(2),
            }],
        };
        let outer = Op::If {
            cond: Cond::False,
            then_ops: vec![inner],
            else_ops: vec![],
        };
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(vec![outer], 1, 0, vec![])],
        }
        .compile()
        .unwrap();
        // Outer branch + (inner branch, then, jump, else) = 5.
        assert_eq!(p.threads[0].code.len(), 5);
    }

    #[test]
    fn validation_rejects_unknown_node() {
        let ops = vec![Op::Send {
            to: EndpointAddr::new(9, 0),
            value: Expr::Const(1),
        }];
        let r = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 0, 0, vec![])],
        }
        .compile();
        assert!(matches!(r, Err(McapiError::Validation { .. })));
    }

    #[test]
    fn validation_rejects_undeclared_port() {
        let t0 = thread_with(
            vec![Op::Recv {
                port: 3,
                var: VarId(0),
            }],
            1,
            0,
            vec![0],
        );
        let r = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile();
        assert!(matches!(r, Err(McapiError::Validation { .. })));
    }

    #[test]
    fn validation_rejects_out_of_range_var() {
        let t0 = thread_with(
            vec![Op::Assign {
                var: VarId(5),
                expr: Expr::Const(0),
            }],
            1,
            0,
            vec![],
        );
        let r = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile();
        assert!(matches!(r, Err(McapiError::Validation { .. })));
    }

    #[test]
    fn validation_rejects_unknown_request() {
        let t0 = thread_with(vec![Op::Wait { req: ReqId(2) }], 0, 1, vec![]);
        let r = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile();
        assert!(matches!(r, Err(McapiError::Validation { .. })));
    }

    #[test]
    fn render_lists_every_thread_and_instruction() {
        let t0 = thread_with(
            vec![
                Op::Send {
                    to: EndpointAddr::new(0, 0),
                    value: Expr::Const(1),
                },
                Op::Recv {
                    port: 0,
                    var: VarId(0),
                },
                Op::Assert {
                    cond: Cond::True,
                    message: "ok".into(),
                },
            ],
            1,
            0,
            vec![0],
        );
        let p = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile()
        .unwrap();
        let r = p.render();
        assert!(r.contains("program `p`"), "{r}");
        assert!(r.contains("send 1 -> 0:0"), "{r}");
        assert!(r.contains("recv port 0"), "{r}");
        assert!(r.contains("assert"), "{r}");
    }

    #[test]
    fn static_counters() {
        let t0 = thread_with(
            vec![
                Op::Send {
                    to: EndpointAddr::new(0, 0),
                    value: Expr::Const(1),
                },
                Op::Recv {
                    port: 0,
                    var: VarId(0),
                },
            ],
            1,
            0,
            vec![0],
        );
        let p = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile()
        .unwrap();
        assert_eq!(p.num_static_sends(), 1);
        assert_eq!(p.num_static_recvs(), 1);
        assert_eq!(p.code_size(), 2);
    }
}
