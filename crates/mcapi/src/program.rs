//! Program representation: a structured DSL (`Op`) compiled to a flat
//! instruction form (`Instr`) that the interpreter, the explicit-state
//! explorers and the symbolic encoder all consume.
//!
//! One `Thread` corresponds to one MCAPI node (the paper's `t0/t1/t2`). A
//! thread owns local variable slots, request handles, and receives on its
//! own (node, port) endpoints.

use crate::error::McapiError;
use crate::expr::{Cond, Expr, MAX_CONST_MAGNITUDE};
use crate::types::{EndpointAddr, Port, ReqId, VarId};
use serde::{Deserialize, Serialize};

/// Bounds on compile-time loop unrolling (see [`Op::Repeat`]).
///
/// Both limits are safety valves against code blowup, not semantic
/// restrictions: `repeat` counts are exact, so unrolling never truncates
/// behaviour. A program that exceeds a bound is *rejected* (a
/// [`McapiError::Validation`]), never silently clipped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnrollConfig {
    /// Largest iteration count a single `repeat` may prescribe.
    pub max_count: usize,
    /// Largest flattened instruction count per thread after unrolling.
    pub max_code: usize,
}

impl Default for UnrollConfig {
    fn default() -> Self {
        UnrollConfig {
            max_count: 64,
            max_code: 4096,
        }
    }
}

impl UnrollConfig {
    /// A config whose iteration cap is `n` (the CLI's `--unroll N` and the
    /// `// unroll:` header directive). The per-thread code cap scales with
    /// the requested count so raising one bound does not silently trip the
    /// other.
    pub fn with_max_count(n: usize) -> UnrollConfig {
        let dflt = UnrollConfig::default();
        UnrollConfig {
            max_count: n,
            max_code: dflt.max_code.max(n.saturating_mul(64)),
        }
    }
}

/// Structured operations (builder-level form).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Op {
    /// Blocking `mcapi_msg_send` of `value` to endpoint `to`.
    Send { to: EndpointAddr, value: Expr },
    /// Non-blocking `mcapi_msg_send_i`; completes immediately in this model
    /// (infinite send buffers), the request exists for `wait` symmetry.
    SendI {
        to: EndpointAddr,
        value: Expr,
        req: ReqId,
    },
    /// Blocking `mcapi_msg_recv` on this thread's `port` into `var`.
    Recv { port: Port, var: VarId },
    /// Non-blocking `mcapi_msg_recv_i`: posts a receive request; the message
    /// is bound no later than the matching `wait`.
    RecvI { port: Port, var: VarId, req: ReqId },
    /// Block until request `req` completes.
    Wait { req: ReqId },
    /// Local assignment.
    Assign { var: VarId, expr: Expr },
    /// Safety assertion (the checked property).
    Assert { cond: Cond, message: String },
    /// Conditional with recorded outcome.
    If {
        cond: Cond,
        then_ops: Vec<Op>,
        else_ops: Vec<Op>,
    },
    /// Bounded loop: execute `body` exactly `count` times. Compiled away
    /// by [`Program::compile`] via unrolling — downstream consumers (the
    /// interpreter, the explicit explorers, the symbolic encoder, path
    /// enumeration) only ever see flat loop-free code. The unrolled size
    /// is bounded by [`UnrollConfig`].
    Repeat { count: usize, body: Vec<Op> },
}

/// Flat instruction form. `Branch`/`Jump` encode structured control flow;
/// targets are indices into the thread's instruction vector.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Instr {
    Send {
        to: EndpointAddr,
        value: Expr,
    },
    SendI {
        to: EndpointAddr,
        value: Expr,
        req: ReqId,
    },
    Recv {
        port: Port,
        var: VarId,
    },
    RecvI {
        port: Port,
        var: VarId,
        req: ReqId,
    },
    Wait {
        req: ReqId,
    },
    Assign {
        var: VarId,
        expr: Expr,
    },
    Assert {
        cond: Cond,
        message: String,
    },
    /// Evaluate `cond`; fall through when true, jump to `else_target` when
    /// false. The taken direction is recorded in the trace.
    Branch {
        cond: Cond,
        else_target: usize,
    },
    Jump {
        target: usize,
    },
}

/// A single MCAPI node/thread.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Thread {
    pub name: String,
    pub ops: Vec<Op>,
    /// Number of local variable slots.
    pub num_vars: usize,
    /// Number of request handles.
    pub num_reqs: usize,
    /// Ports this thread receives on.
    pub ports: Vec<Port>,
    /// Compiled form (filled by `Program::compile`).
    #[serde(default)]
    pub code: Vec<Instr>,
    /// Per-instruction origin: `origins[pc]` is the pre-order ordinal of
    /// the structured [`Op`] that `code[pc]` was flattened from (an `If`'s
    /// branch and join jump both map to the `If`; every unrolled `repeat`
    /// iteration maps back to the one body). Parallel to `code`, filled by
    /// `Program::compile`; frontends use it to map compiled sites back to
    /// source spans. Empty for hand-written JSON programs that carry flat
    /// code but never went through `compile`.
    #[serde(default)]
    pub origins: Vec<u32>,
}

/// A complete MCAPI program.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Program {
    pub name: String,
    pub threads: Vec<Thread>,
}

impl Program {
    /// Compile every thread's structured ops to flat code and validate,
    /// under the default [`UnrollConfig`] bounds.
    pub fn compile(self) -> Result<Program, McapiError> {
        self.compile_with(&UnrollConfig::default())
    }

    /// [`Program::compile`] with explicit unroll bounds (the CLI's
    /// `--unroll N` and the frontend's `// unroll:` header route through
    /// here). `repeat` loops are unrolled into flat loop-free code; a
    /// loop whose count or unrolled size exceeds `unroll`'s bounds is a
    /// validation error.
    pub fn compile_with(mut self, unroll: &UnrollConfig) -> Result<Program, McapiError> {
        for (tid, t) in self.threads.iter_mut().enumerate() {
            let mut code = Vec::new();
            let mut origins = Vec::new();
            flatten(&t.ops, &mut code, &mut origins, 0, unroll).map_err(|(op, message)| {
                McapiError::Validation {
                    thread: tid,
                    pc: code.len(),
                    message: format!("thread `{}` op {op}: {message}", t.name),
                }
            })?;
            if code.len() > unroll.max_code {
                return Err(McapiError::Validation {
                    thread: tid,
                    pc: 0,
                    message: format!(
                        "thread `{}` op 0: thread unrolls to {} instructions, exceeding \
                         the {} cap (raise it with --unroll)",
                        t.name,
                        code.len(),
                        unroll.max_code
                    ),
                });
            }
            debug_assert_eq!(code.len(), origins.len());
            t.code = code;
            t.origins = origins;
        }
        self.validate()?;
        Ok(self)
    }

    /// Static sanity checks: endpoint references resolve, request handles
    /// and variables are in range, waits refer to issued requests, and
    /// every constant sits inside the value domain
    /// (`|c| <= `[`MAX_CONST_MAGNITUDE`]).
    pub fn validate(&self) -> Result<(), McapiError> {
        for (tid, t) in self.threads.iter().enumerate() {
            for (pc, ins) in t.code.iter().enumerate() {
                // Every validation message names the offending thread and
                // structured-op index itself, so the diagnostic survives
                // intact even when only the message string is surfaced.
                let err = |msg: String| {
                    let site = match t.origins.get(pc) {
                        Some(op) => format!("thread `{}` op {op}", t.name),
                        None => format!("thread `{}` pc {pc}", t.name),
                    };
                    Err(McapiError::Validation {
                        thread: tid,
                        pc,
                        message: format!("{site}: {msg}"),
                    })
                };
                // The value-domain bound: constants anywhere near i64's
                // edges would wrap under +const arithmetic and collide
                // with the IDL solver's i64::MAX/4 infinity sentinel.
                let max_abs = match ins {
                    Instr::Send { value, .. } | Instr::SendI { value, .. } => value.max_abs_const(),
                    Instr::Assign { expr, .. } => expr.max_abs_const(),
                    Instr::Assert { cond, .. } | Instr::Branch { cond, .. } => cond.max_abs_const(),
                    _ => 0,
                };
                if max_abs > MAX_CONST_MAGNITUDE as u64 {
                    return err(format!(
                        "constant magnitude {max_abs} outside the value domain \
                         (|c| <= 2^40 = {MAX_CONST_MAGNITUDE}; larger constants \
                         approach the difference-logic solver's infinity sentinel)"
                    ));
                }
                match ins {
                    Instr::Send { to, value } | Instr::SendI { to, value, .. } => {
                        let Some(dst) = self.threads.get(to.node as usize) else {
                            return err(format!("send to unknown node {}", to.node));
                        };
                        if !dst.ports.contains(&to.port) {
                            return err(format!(
                                "send to {}:{} but that node has ports {:?}",
                                to.node, to.port, dst.ports
                            ));
                        }
                        let mut vs = vec![];
                        value.vars(&mut vs);
                        if let Some(v) = vs.iter().find(|v| v.0 as usize >= t.num_vars) {
                            return err(format!("expression reads unknown {v:?}"));
                        }
                        if let Instr::SendI { req, .. } = ins {
                            if req.0 as usize >= t.num_reqs {
                                return err(format!("unknown request handle {req:?}"));
                            }
                        }
                    }
                    Instr::Recv { port, var } | Instr::RecvI { port, var, .. } => {
                        if !t.ports.contains(port) {
                            return err(format!("recv on undeclared port {port}"));
                        }
                        if var.0 as usize >= t.num_vars {
                            return err(format!("recv into unknown {var:?}"));
                        }
                        if let Instr::RecvI { req, .. } = ins {
                            if req.0 as usize >= t.num_reqs {
                                return err(format!("unknown request handle {req:?}"));
                            }
                        }
                    }
                    Instr::Wait { req } => {
                        if req.0 as usize >= t.num_reqs {
                            return err(format!("wait on unknown {req:?}"));
                        }
                    }
                    Instr::Assign { var, expr } => {
                        if var.0 as usize >= t.num_vars {
                            return err(format!("assign to unknown {var:?}"));
                        }
                        let mut vs = vec![];
                        expr.vars(&mut vs);
                        if let Some(v) = vs.iter().find(|v| v.0 as usize >= t.num_vars) {
                            return err(format!("expression reads unknown {v:?}"));
                        }
                    }
                    Instr::Assert { cond, .. } | Instr::Branch { cond, .. } => {
                        let mut vs = vec![];
                        cond.vars(&mut vs);
                        if let Some(v) = vs.iter().find(|v| v.0 as usize >= t.num_vars) {
                            return err(format!("condition reads unknown {v:?}"));
                        }
                        if let Instr::Branch { else_target, .. } = ins {
                            if *else_target > t.code.len() {
                                return err(format!("branch target {else_target} out of range"));
                            }
                        }
                    }
                    Instr::Jump { target } => {
                        if *target > t.code.len() {
                            return err(format!("jump target {target} out of range"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Total number of send instructions (static, not per-execution).
    pub fn num_static_sends(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.code.iter())
            .filter(|i| matches!(i, Instr::Send { .. } | Instr::SendI { .. }))
            .count()
    }

    /// Total number of receive instructions (static).
    pub fn num_static_recvs(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.code.iter())
            .filter(|i| matches!(i, Instr::Recv { .. } | Instr::RecvI { .. }))
            .count()
    }

    /// Total compiled instruction count.
    pub fn code_size(&self) -> usize {
        self.threads.iter().map(|t| t.code.len()).sum()
    }

    /// Does any thread contain a conditional branch? Branch-free programs
    /// have exactly one control-flow path, so the trace-pinned and
    /// path-complete symbolic engines coincide on them.
    pub fn has_branches(&self) -> bool {
        self.threads
            .iter()
            .flat_map(|t| t.code.iter())
            .any(|i| matches!(i, Instr::Branch { .. }))
    }

    /// Human-readable listing (one column per thread, Fig. 1 style).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "program `{}`:", self.name);
        for (tid, t) in self.threads.iter().enumerate() {
            let _ = writeln!(out, "  thread {tid} ({}):", t.name);
            for (pc, ins) in t.code.iter().enumerate() {
                let _ = writeln!(out, "    {pc:3}: {}", render_instr(ins));
            }
        }
        out
    }
}

fn render_instr(ins: &Instr) -> String {
    match ins {
        Instr::Send { to, value } => format!("send {value} -> {to}"),
        Instr::SendI { to, value, req } => format!("send_i {value} -> {to} ({req:?})"),
        Instr::Recv { port, var } => format!("recv port {port} -> {var:?}"),
        Instr::RecvI { port, var, req } => format!("recv_i port {port} -> {var:?} ({req:?})"),
        Instr::Wait { req } => format!("wait {req:?}"),
        Instr::Assign { var, expr } => format!("{var:?} := {expr}"),
        Instr::Assert { cond, message } => format!("assert {cond} \"{message}\""),
        Instr::Branch { cond, else_target } => format!("if !({cond}) goto {else_target}"),
        Instr::Jump { target } => format!("goto {target}"),
    }
}

/// Number of structured ops in a pre-order walk of `ops` (each `If` and
/// `Repeat` counts itself plus its bodies once). This is the ordinal
/// space [`Thread::origins`] indexes into.
pub fn count_ops(ops: &[Op]) -> u32 {
    ops.iter()
        .map(|op| match op {
            Op::If {
                then_ops, else_ops, ..
            } => 1 + count_ops(then_ops) + count_ops(else_ops),
            Op::Repeat { body, .. } => 1 + count_ops(body),
            _ => 1,
        })
        .sum()
}

/// Flatten structured ops into instructions with branch targets patched
/// and `repeat` loops unrolled `count` times, recording each emitted
/// instruction's pre-order op ordinal (starting at `base`) in `origins`.
/// Errors — `(op ordinal, message)` pairs surfaced as
/// [`McapiError::Validation`] — abort the expansion as soon as a loop's
/// count or the accumulating code size exceeds the bounds, so a hostile
/// count can never allocate an unbounded instruction vector.
fn flatten(
    ops: &[Op],
    code: &mut Vec<Instr>,
    origins: &mut Vec<u32>,
    base: u32,
    unroll: &UnrollConfig,
) -> Result<(), (u32, String)> {
    fn emit(code: &mut Vec<Instr>, origins: &mut Vec<u32>, here: u32, instr: Instr) {
        code.push(instr);
        origins.push(here);
    }
    let mut ord = base;
    for op in ops {
        let here = ord;
        ord += 1;
        match op {
            Op::Send { to, value } => emit(
                code,
                origins,
                here,
                Instr::Send {
                    to: *to,
                    value: value.clone(),
                },
            ),
            Op::SendI { to, value, req } => emit(
                code,
                origins,
                here,
                Instr::SendI {
                    to: *to,
                    value: value.clone(),
                    req: *req,
                },
            ),
            Op::Recv { port, var } => emit(
                code,
                origins,
                here,
                Instr::Recv {
                    port: *port,
                    var: *var,
                },
            ),
            Op::RecvI { port, var, req } => emit(
                code,
                origins,
                here,
                Instr::RecvI {
                    port: *port,
                    var: *var,
                    req: *req,
                },
            ),
            Op::Wait { req } => emit(code, origins, here, Instr::Wait { req: *req }),
            Op::Assign { var, expr } => emit(
                code,
                origins,
                here,
                Instr::Assign {
                    var: *var,
                    expr: expr.clone(),
                },
            ),
            Op::Assert { cond, message } => emit(
                code,
                origins,
                here,
                Instr::Assert {
                    cond: cond.clone(),
                    message: message.clone(),
                },
            ),
            Op::If {
                cond,
                then_ops,
                else_ops,
            } => {
                let branch_at = code.len();
                emit(
                    code,
                    origins,
                    here,
                    Instr::Branch {
                        cond: cond.clone(),
                        else_target: 0,
                    },
                );
                flatten(then_ops, code, origins, ord, unroll)?;
                ord += count_ops(then_ops);
                if else_ops.is_empty() {
                    let end = code.len();
                    if let Instr::Branch { else_target, .. } = &mut code[branch_at] {
                        *else_target = end;
                    }
                } else {
                    let jump_at = code.len();
                    code.push(Instr::Jump { target: 0 });
                    origins.push(here);
                    let else_start = code.len();
                    if let Instr::Branch { else_target, .. } = &mut code[branch_at] {
                        *else_target = else_start;
                    }
                    flatten(else_ops, code, origins, ord, unroll)?;
                    ord += count_ops(else_ops);
                    let end = code.len();
                    if let Instr::Jump { target } = &mut code[jump_at] {
                        *target = end;
                    }
                }
            }
            Op::Repeat { count, body } => {
                if *count > unroll.max_count {
                    return Err((
                        here,
                        format!(
                            "repeat count {count} exceeds the unroll bound {} \
                             (raise it with --unroll or a `// unroll:` header)",
                            unroll.max_count
                        ),
                    ));
                }
                for _ in 0..*count {
                    // Every iteration re-uses the body's ordinals, so each
                    // unrolled copy maps back to the one source loop body.
                    flatten(body, code, origins, ord, unroll)?;
                    if code.len() > unroll.max_code {
                        return Err((
                            here,
                            format!(
                                "unrolled code exceeds {} instructions \
                                 (raise the cap with --unroll)",
                                unroll.max_code
                            ),
                        ));
                    }
                }
                ord += count_ops(body);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CmpOp;

    fn thread_with(ops: Vec<Op>, num_vars: usize, num_reqs: usize, ports: Vec<Port>) -> Thread {
        Thread {
            name: "t".into(),
            ops,
            num_vars,
            num_reqs,
            ports,
            code: vec![],
            origins: vec![],
        }
    }

    #[test]
    fn flatten_linear_ops() {
        let ops = vec![
            Op::Assign {
                var: VarId(0),
                expr: Expr::Const(1),
            },
            Op::Send {
                to: EndpointAddr::new(0, 0),
                value: Expr::Var(VarId(0)),
            },
        ];
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 1, 0, vec![0])],
        }
        .compile()
        .unwrap();
        assert_eq!(p.threads[0].code.len(), 2);
    }

    #[test]
    fn flatten_if_without_else() {
        let ops = vec![
            Op::If {
                cond: Cond::cmp(CmpOp::Eq, Expr::Var(VarId(0)), Expr::Const(1)),
                then_ops: vec![Op::Assign {
                    var: VarId(0),
                    expr: Expr::Const(2),
                }],
                else_ops: vec![],
            },
            Op::Assign {
                var: VarId(0),
                expr: Expr::Const(3),
            },
        ];
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 1, 0, vec![])],
        }
        .compile()
        .unwrap();
        let code = &p.threads[0].code;
        // Branch, then-assign, final assign.
        assert_eq!(code.len(), 3);
        match &code[0] {
            Instr::Branch { else_target, .. } => assert_eq!(*else_target, 2),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn flatten_if_with_else_patches_both_targets() {
        let ops = vec![Op::If {
            cond: Cond::True,
            then_ops: vec![Op::Assign {
                var: VarId(0),
                expr: Expr::Const(1),
            }],
            else_ops: vec![
                Op::Assign {
                    var: VarId(0),
                    expr: Expr::Const(2),
                },
                Op::Assign {
                    var: VarId(0),
                    expr: Expr::Const(3),
                },
            ],
        }];
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 1, 0, vec![])],
        }
        .compile()
        .unwrap();
        let code = &p.threads[0].code;
        // branch, then(1), jump, else(2) = 5 instrs.
        assert_eq!(code.len(), 5);
        match &code[0] {
            Instr::Branch { else_target, .. } => assert_eq!(*else_target, 3),
            other => panic!("{other:?}"),
        }
        match &code[2] {
            Instr::Jump { target } => assert_eq!(*target, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_ifs_flatten() {
        let inner = Op::If {
            cond: Cond::True,
            then_ops: vec![Op::Assign {
                var: VarId(0),
                expr: Expr::Const(1),
            }],
            else_ops: vec![Op::Assign {
                var: VarId(0),
                expr: Expr::Const(2),
            }],
        };
        let outer = Op::If {
            cond: Cond::False,
            then_ops: vec![inner],
            else_ops: vec![],
        };
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(vec![outer], 1, 0, vec![])],
        }
        .compile()
        .unwrap();
        // Outer branch + (inner branch, then, jump, else) = 5.
        assert_eq!(p.threads[0].code.len(), 5);
    }

    #[test]
    fn repeat_unrolls_at_compile_time() {
        let body = vec![
            Op::Assign {
                var: VarId(0),
                expr: Expr::Var(VarId(0)).plus(1),
            },
            Op::Send {
                to: EndpointAddr::new(0, 0),
                value: Expr::Var(VarId(0)),
            },
        ];
        let ops = vec![
            Op::Assign {
                var: VarId(0),
                expr: Expr::Const(0),
            },
            Op::Repeat { count: 3, body },
        ];
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 1, 0, vec![0])],
        }
        .compile()
        .unwrap();
        // init + 3 * (assign, send) = 7 flat instructions, no jumps.
        assert_eq!(p.threads[0].code.len(), 7);
        assert!(!p.threads[0]
            .code
            .iter()
            .any(|i| matches!(i, Instr::Jump { .. } | Instr::Branch { .. })));
        assert_eq!(p.num_static_sends(), 3);
    }

    #[test]
    fn nested_repeat_and_branch_in_loop_unroll_with_correct_targets() {
        let inner = Op::Repeat {
            count: 2,
            body: vec![Op::If {
                cond: Cond::cmp(CmpOp::Eq, Expr::Var(VarId(0)), Expr::Const(0)),
                then_ops: vec![Op::Assign {
                    var: VarId(0),
                    expr: Expr::Const(1),
                }],
                else_ops: vec![],
            }],
        };
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(
                vec![Op::Repeat {
                    count: 2,
                    body: vec![inner],
                }],
                1,
                0,
                vec![],
            )],
        }
        .compile()
        .unwrap();
        // 2 * 2 * (branch, assign) = 8 instructions, 4 branches, all
        // targets forward and in range (validate would reject otherwise).
        let code = &p.threads[0].code;
        assert_eq!(code.len(), 8);
        let branches: Vec<usize> = code
            .iter()
            .enumerate()
            .filter_map(|(pc, i)| match i {
                Instr::Branch { else_target, .. } => Some((pc, *else_target)),
                _ => None,
            })
            .map(|(pc, t)| {
                assert!(t > pc, "unrolled branch targets must stay forward");
                t
            })
            .collect();
        assert_eq!(branches.len(), 4);
    }

    #[test]
    fn repeat_zero_unrolls_to_nothing() {
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(
                vec![Op::Repeat {
                    count: 0,
                    body: vec![Op::Assign {
                        var: VarId(9),
                        expr: Expr::Const(1),
                    }],
                }],
                0,
                0,
                vec![],
            )],
        }
        .compile()
        .unwrap();
        // The body never materialises, so its out-of-range var is moot.
        assert!(p.threads[0].code.is_empty());
    }

    #[test]
    fn repeat_count_over_the_bound_is_rejected_and_unlocked_by_config() {
        let mk = || Program {
            name: "p".into(),
            threads: vec![thread_with(
                vec![Op::Repeat {
                    count: 100,
                    body: vec![Op::Assign {
                        var: VarId(0),
                        expr: Expr::Const(1),
                    }],
                }],
                1,
                0,
                vec![],
            )],
        };
        let err = mk().compile().unwrap_err();
        let McapiError::Validation { message, .. } = &err else {
            panic!("{err:?}");
        };
        assert!(message.contains("unroll bound"), "{message}");
        let p = mk()
            .compile_with(&UnrollConfig::with_max_count(128))
            .unwrap();
        assert_eq!(p.threads[0].code.len(), 100);
    }

    #[test]
    fn unrolled_code_size_is_capped() {
        // 64 iterations x 100-op body = 6400 > the 4096 default cap.
        let body: Vec<Op> = (0..100)
            .map(|_| Op::Assign {
                var: VarId(0),
                expr: Expr::Const(1),
            })
            .collect();
        let r = Program {
            name: "p".into(),
            threads: vec![thread_with(
                vec![Op::Repeat { count: 64, body }],
                1,
                0,
                vec![],
            )],
        }
        .compile();
        let Err(McapiError::Validation { message, .. }) = r else {
            panic!("expected a validation error, got {r:?}");
        };
        assert!(message.contains("unrolled code exceeds"), "{message}");
    }

    #[test]
    fn validation_rejects_out_of_domain_constants() {
        use crate::expr::MAX_CONST_MAGNITUDE;
        let huge = |c: i64| {
            Program {
                name: "p".into(),
                threads: vec![thread_with(
                    vec![Op::Assign {
                        var: VarId(0),
                        expr: Expr::Const(c),
                    }],
                    1,
                    0,
                    vec![],
                )],
            }
            .compile()
        };
        assert!(huge(MAX_CONST_MAGNITUDE).is_ok());
        assert!(huge(-MAX_CONST_MAGNITUDE).is_ok());
        for c in [
            MAX_CONST_MAGNITUDE + 1,
            -MAX_CONST_MAGNITUDE - 1,
            i64::MAX,
            i64::MIN,
        ] {
            let r = huge(c);
            let Err(McapiError::Validation { message, .. }) = r else {
                panic!("constant {c} must be rejected, got {r:?}");
            };
            assert!(message.contains("value domain"), "{message}");
        }
        // The bound applies to condition constants too.
        let r = Program {
            name: "p".into(),
            threads: vec![thread_with(
                vec![Op::Assert {
                    cond: Cond::cmp(CmpOp::Lt, Expr::Var(VarId(0)), Expr::Const(i64::MIN)),
                    message: "m".into(),
                }],
                1,
                0,
                vec![],
            )],
        }
        .compile();
        assert!(matches!(r, Err(McapiError::Validation { .. })));
    }

    #[test]
    fn validation_rejects_unknown_node() {
        let ops = vec![Op::Send {
            to: EndpointAddr::new(9, 0),
            value: Expr::Const(1),
        }];
        let r = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 0, 0, vec![])],
        }
        .compile();
        assert!(matches!(r, Err(McapiError::Validation { .. })));
    }

    #[test]
    fn validation_rejects_undeclared_port() {
        let t0 = thread_with(
            vec![Op::Recv {
                port: 3,
                var: VarId(0),
            }],
            1,
            0,
            vec![0],
        );
        let r = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile();
        assert!(matches!(r, Err(McapiError::Validation { .. })));
    }

    #[test]
    fn validation_rejects_out_of_range_var() {
        let t0 = thread_with(
            vec![Op::Assign {
                var: VarId(5),
                expr: Expr::Const(0),
            }],
            1,
            0,
            vec![],
        );
        let r = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile();
        assert!(matches!(r, Err(McapiError::Validation { .. })));
    }

    #[test]
    fn validation_rejects_unknown_request() {
        let t0 = thread_with(vec![Op::Wait { req: ReqId(2) }], 0, 1, vec![]);
        let r = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile();
        assert!(matches!(r, Err(McapiError::Validation { .. })));
    }

    #[test]
    fn render_lists_every_thread_and_instruction() {
        let t0 = thread_with(
            vec![
                Op::Send {
                    to: EndpointAddr::new(0, 0),
                    value: Expr::Const(1),
                },
                Op::Recv {
                    port: 0,
                    var: VarId(0),
                },
                Op::Assert {
                    cond: Cond::True,
                    message: "ok".into(),
                },
            ],
            1,
            0,
            vec![0],
        );
        let p = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile()
        .unwrap();
        let r = p.render();
        assert!(r.contains("program `p`"), "{r}");
        assert!(r.contains("send 1 -> 0:0"), "{r}");
        assert!(r.contains("recv port 0"), "{r}");
        assert!(r.contains("assert"), "{r}");
    }

    #[test]
    fn origins_are_parallel_to_code_and_reuse_loop_body_ordinals() {
        // if (then: assign) else (assign, assign) followed by a repeat
        // whose body is one send: the branch and its join jump share the
        // If's ordinal, and every unrolled iteration maps back to the one
        // body op.
        let ops = vec![
            Op::If {
                cond: Cond::cmp(CmpOp::Eq, Expr::Var(VarId(0)), Expr::Const(1)),
                then_ops: vec![Op::Assign {
                    var: VarId(0),
                    expr: Expr::Const(2),
                }],
                else_ops: vec![
                    Op::Assign {
                        var: VarId(0),
                        expr: Expr::Const(3),
                    },
                    Op::Assign {
                        var: VarId(0),
                        expr: Expr::Const(4),
                    },
                ],
            },
            Op::Repeat {
                count: 3,
                body: vec![Op::Send {
                    to: EndpointAddr::new(0, 0),
                    value: Expr::Var(VarId(0)),
                }],
            },
        ];
        // Pre-order ordinals: If=0, then-assign=1, else-assigns=2,3,
        // Repeat=4, body send=5.
        assert_eq!(count_ops(&ops), 6);
        let p = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 1, 0, vec![0])],
        }
        .compile()
        .unwrap();
        let t = &p.threads[0];
        assert_eq!(t.origins.len(), t.code.len());
        // branch, then-assign, jump, else-assign, else-assign, 3x send.
        assert_eq!(t.origins, vec![0, 1, 0, 2, 3, 5, 5, 5]);
    }

    #[test]
    fn validation_messages_name_the_thread_and_op() {
        let ops = vec![Op::Send {
            to: EndpointAddr::new(9, 0),
            value: Expr::Const(1),
        }];
        let err = Program {
            name: "p".into(),
            threads: vec![thread_with(ops, 0, 0, vec![])],
        }
        .compile()
        .unwrap_err();
        let McapiError::Validation { message, .. } = &err else {
            panic!("{err:?}");
        };
        assert!(message.contains("thread `t` op 0"), "{message}");
        // The unroll-bound rejection names its site the same way.
        let err = Program {
            name: "p".into(),
            threads: vec![thread_with(
                vec![
                    Op::Assign {
                        var: VarId(0),
                        expr: Expr::Const(0),
                    },
                    Op::Repeat {
                        count: 100,
                        body: vec![Op::Assign {
                            var: VarId(0),
                            expr: Expr::Const(1),
                        }],
                    },
                ],
                1,
                0,
                vec![],
            )],
        }
        .compile()
        .unwrap_err();
        let McapiError::Validation { message, .. } = &err else {
            panic!("{err:?}");
        };
        assert!(message.contains("thread `t` op 1"), "{message}");
    }

    #[test]
    fn static_counters() {
        let t0 = thread_with(
            vec![
                Op::Send {
                    to: EndpointAddr::new(0, 0),
                    value: Expr::Const(1),
                },
                Op::Recv {
                    port: 0,
                    var: VarId(0),
                },
            ],
            1,
            0,
            vec![0],
        );
        let p = Program {
            name: "p".into(),
            threads: vec![t0],
        }
        .compile()
        .unwrap();
        assert_eq!(p.num_static_sends(), 1);
        assert_eq!(p.num_static_recvs(), 1);
        assert_eq!(p.code_size(), 2);
    }
}
